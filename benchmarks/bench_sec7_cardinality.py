"""E10 — §7.3: declared join cardinalities.

Applications avoid uniqueness constraints (§4.5); declared cardinalities
give the optimizer the same UAJ leverage without the constraint overhead.
The benchmark shows (1) without constraint or declaration the join stays,
(2) with the declaration it is eliminated, (3) the verification tool
confirms or refutes declarations against the data.
"""

import time

from repro.algebra.ops import Join
from repro.bench import write_report
from repro.tools import verify_join_cardinalities
from conftest import run_exec

UNDECLARED = (
    "select s.so_id, s.price from salesorderitem s "
    "left outer join businessplace p on s.place_id = p.place_id"
)
DECLARED = (
    "select s.so_id, s.price from salesorderitem s "
    "left outer many to one join businessplace p on s.place_id = p.place_id"
)
WRONG_DECLARATION = (
    "select s.so_id from salesorderitem s "
    "left outer many to one join exchangerate e on s.currency = e.fromcurr"
)


def joins_in(db, sql):
    return sum(1 for n in db.plan_for(sql).walk() if isinstance(n, Join))


def test_undeclared_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(UNDECLARED)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_declared_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(DECLARED)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_cardinality_verification_tool(sales_bench_db, benchmark):
    report = benchmark(lambda: verify_join_cardinalities(sales_bench_db, DECLARED))
    assert report.ok


def test_cardinality_report(sales_bench_db, benchmark):
    def measure():
        timings = {}
        for label, sql in (("undeclared", UNDECLARED), ("declared", DECLARED)):
            plan = sales_bench_db.plan_for(sql)
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                run_exec(sales_bench_db, plan)
                samples.append(time.perf_counter() - start)
            timings[label] = sorted(samples)[2]
        good = verify_join_cardinalities(sales_bench_db, DECLARED)
        bad = verify_join_cardinalities(sales_bench_db, WRONG_DECLARATION)
        return timings, good, bad

    timings, good, bad = benchmark.pedantic(measure, rounds=1, iterations=1)
    undeclared_joins = joins_in(sales_bench_db, UNDECLARED)
    declared_joins = joins_in(sales_bench_db, DECLARED)
    speedup = timings["undeclared"] / timings["declared"]
    write_report(
        "sec7_cardinality",
        "§7.3 — declared join cardinality (businessplace has NO constraints)\n\n"
        f"plain left outer join    : {undeclared_joins} join(s) remain, "
        f"{timings['undeclared']*1000:7.1f} ms\n"
        f"... many to one join     : {declared_joins} join(s) remain, "
        f"{timings['declared']*1000:7.1f} ms\n"
        f"speedup from the declaration alone : {speedup:5.1f}x\n\n"
        "verification tool on the correct declaration:\n"
        f"  {good.summary()}\n"
        "verification tool on a WRONG declaration (currency -> exchangerate\n"
        "has many rows per currency):\n"
        f"  {bad.summary()}\n",
    )
    assert undeclared_joins == 1 and declared_joins == 0
    assert good.ok and not bad.ok
    assert speedup > 2

"""E5 — Figures 3-4: VDM plan complexity and its collapse.

Regenerates the structural statistics of the JournalEntryItemBrowser plan
(paper: 47 table instances / 62 unshared, 49 joins, a five-way Union All, a
GROUP BY, a DISTINCT) and the optimized ``count(*)`` plan (the fact table
plus exactly the two DAC-protected joins), and times both the optimization
and the execution payoff.
"""

from repro.algebra.ops import Join, Scan
from repro.bench import write_report
from repro.vdm.journal import FIG3_EXPECTED
from conftest import run_exec

SELECT_STAR = "select * from journalentryitembrowser"
COUNT_STAR = "select count(*) from journalentryitembrowser"


def test_fig3_structure(journal_bench, benchmark):
    db, model = journal_bench
    stats = benchmark(lambda: db.plan_statistics(SELECT_STAR, optimize=False))
    observed = {
        "shared_tables": stats.shared_table_instances,
        "unshared_tables": stats.table_instances,
        "shared_joins": stats.shared_joins,
        "union_alls": stats.union_alls,
        "union_children": stats.union_all_children,
        "group_bys": stats.group_bys,
        "distincts": stats.distincts,
    }
    lines = [
        "Fig. 3 — unoptimized plan of 'select * from JournalEntryItemBrowser'",
        "",
        f"{'metric':<16}{'measured':>10}{'paper':>8}",
    ]
    for key, want in FIG3_EXPECTED.items():
        lines.append(f"{key:<16}{observed[key]:>10}{want:>8}")
    lines.append("")
    lines.append(f"VDM nesting depth of the consumption view: "
                 f"{model.vdm.nesting_depth(model.consumption_view)} (paper: 6)")
    match = observed == FIG3_EXPECTED
    lines.append("RESULT: " + ("all structural statistics match the paper"
                               if match else "DEVIATION from the paper"))
    write_report("fig3_plan_structure", "\n".join(lines))
    assert match


def test_fig4_optimized_count_plan(journal_bench, benchmark):
    db, _ = journal_bench
    plan = benchmark(lambda: db.plan_for(COUNT_STAR))
    scans = sorted(
        n.schema.name for n in plan.walk() if isinstance(n, Scan)
    )
    joins = sum(1 for n in plan.walk() if isinstance(n, Join))
    report = (
        "Fig. 4 — optimized plan of 'select count(*) from JournalEntryItemBrowser'\n\n"
        f"surviving table instances : {scans}\n"
        f"surviving joins           : {joins}\n\n"
        "Paper: only the two many-to-one left outer joins used by the DAC\n"
        "filters (LFA1 supplier data, KNA1 customer data) are retained;\n"
        "every other join, the five-way Union All, the GROUP BY and the\n"
        "DISTINCT are pruned."
    )
    write_report("fig4_optimized_plan", report)
    assert scans == ["acdoca", "kna1", "lfa1"]
    assert joins == 2


def test_count_star_execution_optimized(journal_bench, benchmark):
    db, _ = journal_bench
    plan = db.plan_for(COUNT_STAR, optimize=True)
    result = benchmark(lambda: run_exec(db, plan))


def test_count_star_execution_unoptimized(journal_bench, benchmark):
    db, _ = journal_bench
    plan = db.plan_for(COUNT_STAR, optimize=False)
    benchmark(lambda: run_exec(db, plan))


def test_count_star_equivalence_and_speedup(journal_bench, benchmark):
    import time

    db, _ = journal_bench

    def measure():
        optimized_plan = db.plan_for(COUNT_STAR, optimize=True)
        unoptimized_plan = db.plan_for(COUNT_STAR, optimize=False)
        times = {}
        values = {}
        for label, plan in (("optimized", optimized_plan),
                            ("unoptimized", unoptimized_plan)):
            samples = []
            for _ in range(3):
                start = time.perf_counter()
                result = run_exec(db, plan)
                samples.append(time.perf_counter() - start)
            times[label] = sorted(samples)[1]
            values[label] = result.rows[0][0]
        return times, values

    times, values = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert values["optimized"] == values["unoptimized"]
    speedup = times["unoptimized"] / times["optimized"]
    write_report(
        "fig4_count_speedup",
        "Fig. 3 -> Fig. 4 execution payoff (count(*), 5000 journal rows)\n\n"
        f"optimized plan   : {times['optimized']*1000:8.1f} ms\n"
        f"unoptimized plan : {times['unoptimized']*1000:8.1f} ms\n"
        f"speedup          : {speedup:8.1f}x\n"
        f"count(*) value   : {values['optimized']} (identical)",
    )
    assert speedup > 1.5


def test_paging_on_browser(journal_bench, benchmark):
    db, _ = journal_bench
    plan = db.plan_for("select * from journalentryitembrowser limit 10")
    result = benchmark(lambda: run_exec(db, plan))

"""Plan-feedback observability overhead: enabled vs. disabled.

Every query records per-operator est/actual/Q-error feedback rows when
``plan_feedback`` is on (the default).  The accounting is deliberately
cheap — estimate stamping is one walk of the physical tree, memory
accounting samples eight rows per buffered column, and the feedback rows
land in bounded rings — but it is not free, so ``plan_feedback=False``
must short-circuit *all* of it: no collector, no estimate stamping, no
memory tracking, no ring appends.

The gate test interleaves paired rounds over identical databases (so
clock drift, GC pauses, and cache warmth hit both sides equally) and
asserts the disabled path is at most 5% slower than the enabled one —
i.e. turning the feature off really does shed its cost, within noise.
"""

import time

import pytest

from repro.bench import write_report
from conftest import _make_db

ROWS = 3000
GROUPS = 40

WORKLOAD = [
    ("filter", f"select v from obs where v > {ROWS // 2}"),
    ("sort", "select v from obs order by v desc limit 50"),
    ("aggregate", "select grp, count(*), sum(v) from obs group by grp"),
    ("join", "select a.id, b.v from obs a join obsdim b on a.grp = b.id"),
]


def _bench_db(**kwargs):
    db = _make_db(wal_enabled=False, **kwargs)
    db.execute(
        "create table obs (id int primary key, v int, grp int not null)"
    )
    db.execute("create table obsdim (id int primary key, v int)")
    db.bulk_load("obs", [(i, i * 7 % ROWS, i % GROUPS) for i in range(ROWS)])
    db.bulk_load("obsdim", [(i, i * 11) for i in range(GROUPS)])
    return db


@pytest.fixture(scope="module")
def feedback_db():
    return _bench_db()


@pytest.fixture(scope="module")
def no_feedback_db():
    return _bench_db(plan_feedback=False)


def _run_workload(db) -> int:
    total = 0
    for _name, sql in WORKLOAD:
        total += len(db.query(sql).rows)
    return total


def test_workload_with_feedback(feedback_db, benchmark):
    rows = benchmark(lambda: _run_workload(feedback_db))
    assert rows > 0
    assert feedback_db.query_log.feedback_rows()  # accounting is live


def test_workload_without_feedback(no_feedback_db, benchmark):
    rows = benchmark(lambda: _run_workload(no_feedback_db))
    assert rows > 0
    assert no_feedback_db.query_log.feedback_rows() == []  # fully off


def test_disabled_path_sheds_the_overhead(feedback_db, no_feedback_db, benchmark):
    # Functional halves of the claim first: the flag really gates the
    # whole surface, not just the sys.* view.
    _run_workload(feedback_db)
    _run_workload(no_feedback_db)
    assert feedback_db.query_log.feedback_rows()
    assert feedback_db.query_log.operator_rows()
    assert no_feedback_db.query_log.feedback_rows() == []
    assert no_feedback_db.query_log.operator_rows() == []

    def measure():
        # Paired, interleaved rounds: both sides see the same machine
        # conditions, so the ratio is stable even when absolute times
        # are not.
        enabled, disabled = [], []
        for _ in range(3):  # warm both paths
            _run_workload(feedback_db)
            _run_workload(no_feedback_db)
        for _ in range(30):
            start = time.perf_counter()
            _run_workload(feedback_db)
            enabled.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_workload(no_feedback_db)
            disabled.append(time.perf_counter() - start)
        return (
            sorted(enabled)[len(enabled) // 2] * 1000,
            sorted(disabled)[len(disabled) // 2] * 1000,
        )

    enabled_ms, disabled_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = enabled_ms / disabled_ms - 1.0
    lines = [
        "Plan-feedback observability overhead (enabled vs. disabled)",
        f"({ROWS}-row workload: " + ", ".join(name for name, _ in WORKLOAD) + ")",
        "",
        f"{'mode':<24}{'median ms / round':>18}",
        f"{'plan_feedback=True':<24}{enabled_ms:>18.3f}",
        f"{'plan_feedback=False':<24}{disabled_ms:>18.3f}",
        "",
        f"feedback accounting overhead: {overhead:+.1%}",
        "",
        "Expected shape: the enabled path pays a tree walk for estimate",
        "stamping, per-chunk size sampling in blocking operators, and two",
        "ring appends per query; disabled must shed all of it (the gate",
        "asserts disabled <= 1.05x enabled).",
    ]
    write_report("observability_overhead", "\n".join(lines))
    # The disabled path does strictly less work; 5% headroom is noise.
    assert disabled_ms <= 1.05 * enabled_ms

"""E9 — §7.2: expression macros for non-additive calculations.

Reproduces the paper's TPC-H margin example: the formula
``1 - sum(ps_supplycost)/sum(l_extendedprice*(1-l_discount))`` is defined
once on a view and reused at several aggregation levels.  The benchmark
verifies the macro equals the handwritten SQL and costs the same.
"""

import time

import pytest

from repro.bench import write_report
from conftest import run_exec

VIEW_SQL = (
    "create view vlineitem as "
    "select * from lineitem join partsupp on l_partkey = ps_partkey "
    "and l_suppkey = ps_suppkey "
    "with expression macros "
    "(1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin)"
)

MACRO_BY_FLAG = (
    "select l_returnflag, expression_macro(margin) as margin "
    "from vlineitem group by l_returnflag"
)
HAND_BY_FLAG = (
    "select l_returnflag, "
    "1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin "
    "from lineitem join partsupp on l_partkey = ps_partkey and l_suppkey = ps_suppkey "
    "group by l_returnflag"
)
MACRO_GLOBAL = "select expression_macro(margin) as margin from vlineitem"


@pytest.fixture(scope="module")
def macro_db(tpch_bench_db):
    if not tpch_bench_db.catalog.has_view("vlineitem"):
        tpch_bench_db.execute(VIEW_SQL)
    return tpch_bench_db


def test_macro_query_execution(macro_db, benchmark):
    plan = macro_db.plan_for(MACRO_BY_FLAG)
    benchmark(lambda: run_exec(macro_db, plan))


def test_handwritten_query_execution(macro_db, benchmark):
    plan = macro_db.plan_for(HAND_BY_FLAG)
    benchmark(lambda: run_exec(macro_db, plan))


def test_macro_report(macro_db, benchmark):
    def measure():
        macro_rows = sorted(macro_db.query(MACRO_BY_FLAG).rows)
        hand_rows = sorted(macro_db.query(HAND_BY_FLAG).rows)
        global_margin = macro_db.query(MACRO_GLOBAL).scalar()
        timings = {}
        for label, sql in (("macro", MACRO_BY_FLAG), ("handwritten", HAND_BY_FLAG)):
            plan = macro_db.plan_for(sql)
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                run_exec(macro_db, plan)
                samples.append(time.perf_counter() - start)
            timings[label] = sorted(samples)[2]
        return macro_rows, hand_rows, global_margin, timings

    macro_rows, hand_rows, global_margin, timings = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lines = [
        "§7.2 — expression macros (TPC-H margin, defined once, reused)",
        "",
        f"{'returnflag':>10} {'margin via macro':>22} {'handwritten':>22}",
    ]
    for (f1, m1), (f2, m2) in zip(macro_rows, hand_rows):
        lines.append(f"{f1:>10} {str(m1)[:20]:>22} {str(m2)[:20]:>22}")
    lines += [
        "",
        f"global margin via the same macro : {str(global_margin)[:20]}",
        f"macro query        : {timings['macro']*1000:7.1f} ms",
        f"handwritten query  : {timings['handwritten']*1000:7.1f} ms",
        "",
        "Expected shape: identical results, identical cost — the macro is a\n"
        "zero-overhead reuse mechanism for non-additive aggregate formulas.",
    ]
    write_report("sec7_macros", "\n".join(lines))
    assert macro_rows == hand_rows
    assert timings["macro"] < timings["handwritten"] * 1.5

"""E-WAL — durable write-ahead log overhead and recovery throughput.

Quantifies the §2.2 durability story: what each fsync policy costs per
committed transaction, what the disarmed fault-injection plumbing costs
on the in-memory fast path (expected: nothing measurable), and how fast
checkpoint-less recovery replays a committed history.
"""

import pytest

from repro.database import Database

ROWS = 200


def _dml_workload(db):
    for i in range(ROWS):
        db.execute(f"insert into t values ({i}, {i * 3})")
    db.execute(f"delete from t where id < {ROWS // 4}")


def _fresh(tmp_path_factory, fsync):
    wal_dir = tmp_path_factory.mktemp(f"wal-{fsync}")
    db = Database(wal_dir=str(wal_dir), fsync=fsync)
    db.execute("create table t (id int primary key, v int)")
    return db, wal_dir


@pytest.mark.parametrize("fsync", ["never", "commit"])
def test_durable_dml_by_policy(benchmark, tmp_path_factory, fsync):
    """Per-commit durability cost; `always` is omitted from CI timing
    because its cost is the device's fsync latency, not engine work."""

    def run():
        db, _ = _fresh(tmp_path_factory, fsync)
        _dml_workload(db)
        db.close()
        return db

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_in_memory_wal_baseline(benchmark, tmp_path_factory):
    """The seed configuration: in-memory WAL, faults wired but disarmed.
    Guards the no-regression acceptance bar for the robustness plumbing."""

    def run():
        db = Database()
        db.execute("create table t (id int primary key, v int)")
        _dml_workload(db)
        return db

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_recovery_replay(benchmark, tmp_path_factory):
    db, wal_dir = _fresh(tmp_path_factory, "never")
    _dml_workload(db)
    db.close()

    def recover():
        # checkpoint_after=False so every round replays the same log
        # instead of the first round truncating it.
        recovered = Database.recover(str(wal_dir), checkpoint_after=False)
        recovered.close()
        return recovered

    recovered = benchmark.pedantic(recover, rounds=3, iterations=1)


def test_checkpoint_write(benchmark, tmp_path_factory):
    db, _ = _fresh(tmp_path_factory, "never")
    db.bulk_load("t", [(i, i) for i in range(5000)])

    def checkpoint():
        return db.checkpoint()

    benchmark.pedantic(checkpoint, rounds=3, iterations=1)
    db.close()

"""Serving-layer benchmarks: closed-loop multi-threaded load.

Measures what the concurrent serving layer costs and sustains:

- closed-loop QPS and per-query latency percentiles for W worker threads
  running a mixed OLTP/OLAP statement stream through ``Session`` objects
  (admission, tenant accounting, and the engine all on the hot path);
- the admission controller's uncontended acquire/release overhead, which
  every statement pays even on an idle server.

QPS and P50/P95 land in ``BENCH_history.json`` via ``extra_info``, so
``python -m repro bench-diff`` tracks throughput drift alongside the
wall-clock medians.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro import Database
from repro.serving import AdmissionController, SessionManager

WORKERS = 4
QUERIES_PER_WORKER = 30


def _build_db() -> Database:
    db = Database()
    db.execute("create table orders (id int primary key, cust int, total int)")
    db.execute("create table lines (id int primary key, oid int, qty int)")
    db.bulk_load("orders", [(i, i % 40, i * 7 % 1000) for i in range(2000)])
    db.bulk_load("lines", [(i, i % 2000, i % 9 + 1) for i in range(6000)])
    return db


#: One worker's statement mix: point lookup, analytical join aggregate,
#: and a write — the HTAP blend the serving layer exists to arbitrate.
def _statements(worker: int, index: int) -> list[str]:
    key = (worker * QUERIES_PER_WORKER + index) % 2000
    return [
        f"select total from orders where id = {key}",
        "select o.cust, sum(l.qty) from orders o "
        "join lines l on l.oid = o.id "
        f"where o.cust = {index % 40} group by o.cust",
        f"insert into orders values ({10_000 + worker * 1000 + index}, "
        f"{worker}, {index})",
    ]


def test_closed_loop_session_throughput(benchmark):
    """W threads, each running its statement mix closed-loop through a
    Session; reports QPS and P50/P95 per-statement latency."""
    db = _build_db()
    manager = SessionManager(db, max_concurrent=WORKERS, max_queue=64)
    latencies: list[float] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        session = manager.session(f"w{index}")
        local: list[float] = []
        for query_no in range(QUERIES_PER_WORKER):
            for sql in _statements(index, query_no):
                started = time.perf_counter()
                session.execute(sql)
                local.append(time.perf_counter() - started)
        session.close()
        with lock:
            latencies.extend(local)

    def run() -> None:
        db.execute("delete from orders where id >= 10000")
        latencies.clear()
        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        benchmark.extra_info["qps"] = round(len(latencies) / elapsed, 1)
        benchmark.extra_info["p50_ms"] = round(
            statistics.median(latencies) * 1e3, 3
        )
        benchmark.extra_info["p95_ms"] = round(
            statistics.quantiles(latencies, n=20)[-1] * 1e3, 3
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert manager.shutdown() is True
    snapshot = db.metrics.snapshot()
    assert snapshot["serving.shed"] == 0, "a 64-deep queue must not shed here"
    db.close()


def test_single_thread_session_vs_direct(benchmark):
    """The serving layer's per-statement tax on an idle server: the same
    statement stream through one Session (admission + tenant bookkeeping
    on every call) vs. the direct Database API baseline in
    bench_streaming_exec.py."""
    db = _build_db()
    manager = SessionManager(db, max_concurrent=2)
    session = manager.session()

    def run() -> None:
        for query_no in range(QUERIES_PER_WORKER):
            session.query(
                f"select total from orders where id = {query_no}"
            )

    benchmark.pedantic(run, rounds=3, iterations=1)
    manager.shutdown()
    db.close()


def test_admission_acquire_release_overhead(benchmark):
    """The uncontended fast path every admitted statement pays."""
    controller = AdmissionController(max_concurrent=8, max_queue=32)

    def run() -> None:
        for _ in range(1000):
            controller.acquire()
            controller.release(0.001)

    benchmark.pedantic(run, rounds=5, iterations=1)

"""Streaming batch execution vs. materializing execution.

The physical executor streams fixed-size batches through non-blocking
operators, so LIMIT-heavy pipelines terminate after a handful of batches
and peak memory stays bounded by the batch size.  A batch size larger
than every table degenerates to the old materialize-everything behaviour
*through the same code path*, which makes it an honest baseline: the
comparison isolates the streaming discipline itself, not incidental code
differences.

Two workloads:

* **limit-heavy** — the Fig. 6 paging query (LIMIT 100 OFFSET 1 over a
  60k-row anchor behind an augmentation join).  Streaming must win by
  >= 5x: it decodes O(limit · batch_size) anchor rows, the materializing
  run decodes all 60k.
* **full-aggregate** — GROUP BY over the whole anchor.  Both modes read
  every row; streaming should be no slower while holding only one batch
  plus the (small) group states in memory instead of the whole table.

Both arms run with ``vectorized=False``: the dictionary-code scan makes
whole-table decode nearly free, which would mask the row-path decode
asymmetry this comparison isolates.  The vectorized-vs-scalar contrast
has its own section below.

The report adds a tracemalloc peak-memory column, measured in separate
(untimed) runs so instrumentation cost never pollutes the timings.
"""

import time
import tracemalloc

import pytest

from repro.bench import write_report
from conftest import _make_db, run_exec

ORDERS = 60000
CUSTS = 500
STREAM_BATCH = 1024          # the executor default
MATERIALIZE_BATCH = 10_000_000  # larger than any table: one batch = old behaviour

LIMIT_SQL = (
    "select * from bigorders o left outer join pagecust c "
    "on o.cust = c.ckey limit 100 offset 1"
)
AGG_SQL = (
    "select cust, count(*), min(note) from bigorders group by cust"
)


def _bench_db(batch_size: int):
    # Scalar row path on purpose: see the module docstring.
    db = _make_db(wal_enabled=False, batch_size=batch_size, vectorized=False)
    db.execute(
        "create table bigorders (okey int primary key, cust int not null, "
        "total decimal(10,2), note varchar(20))"
    )
    db.execute("create table pagecust (ckey int primary key, cname varchar(20))")
    db.bulk_load(
        "bigorders",
        [(i, i % CUSTS, f"{i % 9999}.25", f"note {i % 50}") for i in range(ORDERS)],
    )
    db.bulk_load("pagecust", [(i, f"cust {i}") for i in range(CUSTS)])
    return db


@pytest.fixture(scope="module")
def streaming_db():
    return _bench_db(STREAM_BATCH)


@pytest.fixture(scope="module")
def materializing_db():
    return _bench_db(MATERIALIZE_BATCH)


def test_limit_streaming(streaming_db, benchmark):
    plan = streaming_db.plan_for(LIMIT_SQL)
    result = benchmark(lambda: run_exec(streaming_db, plan))
    assert len(result.rows) == 100


def test_limit_materializing(materializing_db, benchmark):
    plan = materializing_db.plan_for(LIMIT_SQL)
    result = benchmark(lambda: run_exec(materializing_db, plan))
    assert len(result.rows) == 100


def test_aggregate_streaming(streaming_db, benchmark):
    plan = streaming_db.plan_for(AGG_SQL)
    result = benchmark(lambda: run_exec(streaming_db, plan))
    assert len(result.rows) == CUSTS


def test_aggregate_materializing(materializing_db, benchmark):
    plan = materializing_db.plan_for(AGG_SQL)
    result = benchmark(lambda: run_exec(materializing_db, plan))
    assert len(result.rows) == CUSTS


def _median_ms(db, plan, rounds: int = 5) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        run_exec(db, plan)
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2] * 1000


def _peak_kib(db, plan) -> float:
    tracemalloc.start()
    try:
        run_exec(db, plan)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024


def test_streaming_speedup_report(streaming_db, materializing_db, benchmark):
    def measure():
        rows = {}
        for workload, sql in (("limit-heavy", LIMIT_SQL), ("full-aggregate", AGG_SQL)):
            for mode, db in (("streaming", streaming_db),
                             ("materializing", materializing_db)):
                plan = db.plan_for(sql)
                rows[workload, mode] = (_median_ms(db, plan), _peak_kib(db, plan))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Streaming batch executor vs. materializing execution",
        f"(batch {STREAM_BATCH} vs. one {MATERIALIZE_BATCH}-row batch; "
        f"{ORDERS} orders ⟕ {CUSTS} customers)",
        "",
        f"{'workload':<16}{'mode':<16}{'median ms':>10}{'peak KiB':>10}",
    ]
    for (workload, mode), (ms, kib) in rows.items():
        lines.append(f"{workload:<16}{mode:<16}{ms:>10.2f}{kib:>10.0f}")
    limit_speedup = rows["limit-heavy", "materializing"][0] / rows["limit-heavy", "streaming"][0]
    agg_mem_ratio = rows["full-aggregate", "materializing"][1] / rows["full-aggregate", "streaming"][1]
    lines += [
        "",
        f"limit-heavy speedup (streaming)      : {limit_speedup:6.1f}x",
        f"full-aggregate peak-memory reduction : {agg_mem_ratio:6.1f}x",
        "",
        "Expected shape: the pipelined LIMIT closes the scan after",
        "ceil((offset+limit)/batch) batches — roughly table/batch faster —",
        "while the aggregate reads everything either way but holds only one",
        "batch plus group states instead of the whole decoded table.",
    ]
    write_report("streaming_exec", "\n".join(lines))
    assert limit_speedup >= 5
    assert rows["full-aggregate", "streaming"][1] < rows["full-aggregate", "materializing"][1]


# -- vectorized kernels vs. the scalar row path ------------------------------
#
# The same streaming plan, twice: once with the dictionary-code kernels
# engaged (the default) and once forced onto row-at-a-time evaluation
# (``vectorized=False``, the fuzz differential arm).  A selective filter
# over a dictionary column is the kernel showcase — the predicate resolves
# to one code lookup plus an integer sweep instead of 60k Python-object
# comparisons.  The TopN workload compares the fused bounded-heap operator
# against the full sort the same query pays without LIMIT fusion.

FILTER_SQL = "select okey from bigorders where note = 'note 7'"
TOPN_SQL = (
    "select okey, cust, total from bigorders order by total desc "
    "limit 100 offset 1"
)
FULL_SORT_SQL = "select okey, cust, total from bigorders order by total desc"


@pytest.fixture(scope="module")
def scalar_db():
    return _bench_db_vectorized(False)


@pytest.fixture(scope="module")
def vectorized_db():
    return _bench_db_vectorized(True)


def _bench_db_vectorized(vectorized: bool):
    db = _make_db(
        wal_enabled=False, batch_size=STREAM_BATCH, vectorized=vectorized
    )
    db.execute(
        "create table bigorders (okey int primary key, cust int not null, "
        "total double, note varchar(20))"
    )
    db.bulk_load(
        "bigorders",
        [
            (i, i % CUSTS, ((i * 2654435761) % 999900) / 100.0, f"note {i % 50}")
            for i in range(ORDERS)
        ],
    )
    return db


def test_vectorized_filter(vectorized_db, benchmark):
    plan = vectorized_db.plan_for(FILTER_SQL)
    result = benchmark(lambda: run_exec(vectorized_db, plan))
    assert len(result.rows) == ORDERS // 50


def test_scalar_filter(scalar_db, benchmark):
    plan = scalar_db.plan_for(FILTER_SQL)
    result = benchmark(lambda: run_exec(scalar_db, plan))
    assert len(result.rows) == ORDERS // 50


def test_topn_paging(vectorized_db, benchmark):
    plan = vectorized_db.plan_for(TOPN_SQL)
    result = benchmark(lambda: run_exec(vectorized_db, plan))
    assert len(result.rows) == 100


def test_full_sort_paging_baseline(vectorized_db, benchmark):
    plan = vectorized_db.plan_for(FULL_SORT_SQL)
    result = benchmark(lambda: run_exec(vectorized_db, plan))
    assert len(result.rows) == ORDERS


def test_vectorized_speedup_report(vectorized_db, scalar_db, benchmark):
    # The fused TopN must actually be the plan under test.
    assert "TopN[k=100" in vectorized_db.explain(TOPN_SQL)

    def measure():
        rows = {}
        rows["filter", "vectorized"] = _median_ms(
            vectorized_db, vectorized_db.plan_for(FILTER_SQL)
        )
        rows["filter", "scalar"] = _median_ms(
            scalar_db, scalar_db.plan_for(FILTER_SQL)
        )
        rows["paging", "topn"] = _median_ms(
            vectorized_db, vectorized_db.plan_for(TOPN_SQL)
        )
        rows["paging", "full-sort"] = _median_ms(
            vectorized_db, vectorized_db.plan_for(FULL_SORT_SQL)
        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    filter_speedup = rows["filter", "scalar"] / rows["filter", "vectorized"]
    paging_speedup = rows["paging", "full-sort"] / rows["paging", "topn"]
    lines = [
        "Vectorized kernels and bounded-heap TopN vs. the scalar path",
        f"({ORDERS} orders; dictionary filter + ORDER BY ... LIMIT paging)",
        "",
        f"{'workload':<16}{'mode':<16}{'median ms':>10}",
    ]
    for (workload, mode), ms in rows.items():
        lines.append(f"{workload:<16}{mode:<16}{ms:>10.2f}")
    lines += [
        "",
        f"filter kernel speedup (vs scalar)    : {filter_speedup:6.1f}x",
        f"TopN paging speedup (vs full sort)   : {paging_speedup:6.1f}x",
        "",
        "Expected shape: the equality kernel does one dictionary lookup",
        "plus an integer code sweep; TopN holds k+offset rows in a bounded",
        "heap and rejects losers with one comparison each, while the full",
        "sort materializes and comparison-sorts all rows.",
    ]
    write_report("vectorized_exec", "\n".join(lines))
    assert filter_speedup >= 5
    assert paging_speedup >= 5

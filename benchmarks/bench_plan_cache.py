"""Plan cache — end-to-end speedup on repeated statement shapes.

The paper's workload reality (§2) is a handful of generated statement
shapes executed millions of times, and its VDM makes each of them carry a
deep view stack: the parse→bind→optimize pipeline dominates cheap
queries.  This benchmark measures the same cheap point query over a
stacked view executed repeatedly with the plan cache on vs. off and
reports the end-to-end speedup the cache buys, plus the hit rate over
the run.

The gate mirrors ISSUE 10's acceptance bar: >=5x end-to-end speedup on a
repeated cheap query at a hit rate >= 99%.
"""

import time

import pytest

from repro import Database
from repro.bench import write_report
from conftest import _make_db

POINT_SQL = "select id, qty, gname from pc_top where id = 37"
PARAM_SQL = "select id, qty, gname from pc_top where id = {key}"
ROUNDS = 300
STACK_DEPTH = 8


def _load(db: Database) -> None:
    """A small VDM: 200-row base table under an 8-deep view stack plus an
    augmentation join — execution is trivial, optimization is not."""
    db.execute(
        "create table pc_items (id int primary key, qty int, grp int, "
        "note varchar(20))"
    )
    db.bulk_load("pc_items", [(i, i * 3, i % 5, f"n{i}") for i in range(200)])
    db.execute("create table pc_groups (gkey int primary key, gname varchar(20))")
    db.bulk_load("pc_groups", [(i, f"grp {i}") for i in range(5)])
    db.execute("create view pc_v0 as select id, qty, grp, note from pc_items")
    for i in range(1, STACK_DEPTH):
        db.execute(
            f"create view pc_v{i} as "
            f"select id, qty, grp, note from pc_v{i - 1} where qty >= 0"
        )
    db.execute(
        f"create view pc_top as select v.id, v.qty, d.gname "
        f"from pc_v{STACK_DEPTH - 1} v "
        f"left outer join pc_groups d on v.grp = d.gkey"
    )


@pytest.fixture(scope="module")
def cached_db() -> Database:
    db = _make_db(wal_enabled=False, plan_cache_size=64)
    _load(db)
    return db


@pytest.fixture(scope="module")
def uncached_db() -> Database:
    db = _make_db(wal_enabled=False, plan_cache_size=0)
    _load(db)
    return db


def _run_point(db: Database, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        result = db.query(POINT_SQL)
        assert result.rows == [(37, 111, "grp 2")]
    return time.perf_counter() - start


def test_plan_cache_hot_point_query(cached_db, benchmark):
    _run_point(cached_db, 3)  # warm: promote on second execution
    benchmark(lambda: _run_point(cached_db, 20))


def test_plan_cache_cold_point_query(uncached_db, benchmark):
    benchmark(lambda: _run_point(uncached_db, 20))


def test_plan_cache_varying_literals(cached_db, benchmark):
    """The generic-plan path: same shape, different parameter values, so
    every hit substitutes Const for Param and recompiles (no physical
    reuse) — still skips parse, bind, and every optimizer pass."""

    def run(rounds: int = 20) -> None:
        for i in range(rounds):
            key = i % 200
            result = cached_db.query(PARAM_SQL.format(key=key))
            assert result.rows == [(key, key * 3, f"grp {key % 5}")]

    run()  # warm
    benchmark(run)


def test_plan_cache_speedup_report(benchmark):
    """Fresh databases, fixed round count, hit-rate + speedup gate."""
    hot = Database(wal_enabled=False, plan_cache_size=64)
    cold = Database(wal_enabled=False, plan_cache_size=0)
    _load(hot)
    _load(cold)

    def measure():
        timings = {}
        timings["cached"] = _run_point(hot, ROUNDS)
        timings["uncached"] = _run_point(cold, ROUNDS)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    cache = hot.plan_cache
    hit_rate = cache.hit_rate
    speedup = timings["uncached"] / timings["cached"]
    write_report(
        "plan_cache",
        "Plan cache — repeated cheap point query over a stacked view\n"
        f"({ROUNDS} executions of: {POINT_SQL};\n"
        f" pc_top = {STACK_DEPTH}-deep view stack + augmentation join "
        "over 200 rows)\n\n"
        f"plan cache on  : {timings['cached']*1000:8.2f} ms total  "
        f"({timings['cached']/ROUNDS*1e6:8.1f} us/query)\n"
        f"plan cache off : {timings['uncached']*1000:8.2f} ms total  "
        f"({timings['uncached']/ROUNDS*1e6:8.1f} us/query)\n"
        f"speedup        : {speedup:8.1f}x\n"
        f"hit rate       : {hit_rate*100:8.1f}%  "
        f"(hits={cache.hits} misses={cache.misses})\n\n"
        "Expected shape: the first execution runs the normal pipeline, the\n"
        "second promotes the shape (normal pipeline + generic-plan\n"
        "optimization), and every later execution probes the cache, reuses\n"
        "the compiled physical tree, and skips parse, bind, view\n"
        "expansion, and every optimizer pass entirely.",
    )
    assert hit_rate >= 0.99, f"hit rate {hit_rate:.3f} < 0.99"
    assert speedup >= 5, f"speedup {speedup:.1f}x < 5x"

"""Benchmark fixtures: larger, session-scoped datasets.

Set ``REPRO_DUMP_TRACES=1`` to record a :class:`repro.observability.trace.
QueryTrace` for every query a benchmark optimizes and dump them (rewrite
fires, pass changed-flags, iteration counts, convergence — no wall times,
so the dump is stable across runs) to ``benchmarks/results/traces.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import Database
from repro.workloads import create_sales_schema, create_tpch_schema, load_sales, load_tpch

DUMP_TRACES = bool(os.environ.get("REPRO_DUMP_TRACES"))
RESULTS_DIR = Path(__file__).parent / "results"
_collected_traces: list[dict] = []


class _TraceDumpDatabase(Database):
    """A Database that archives every query trace for the end-of-session dump."""

    def _absorb_trace(self, tally) -> None:
        super()._absorb_trace(tally)
        if tally.enabled:
            _collected_traces.append(tally.to_dict())


def _make_db(**kwargs) -> Database:
    if not DUMP_TRACES:
        return Database(**kwargs)
    db = _TraceDumpDatabase(**kwargs)
    db.tracing = True
    return db


@pytest.fixture(scope="session", autouse=True)
def _dump_traces():
    yield
    if DUMP_TRACES and _collected_traces:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "traces.json"
        path.write_text(json.dumps(_collected_traces, indent=1, default=str))


@pytest.fixture(scope="session")
def tpch_bench_db() -> Database:
    db = _make_db(wal_enabled=False)
    create_tpch_schema(db)
    load_tpch(db, scale=0.01)  # ~1.5k customers / ~4.4k lineitems
    db.execute("create table ta (key int primary key, a int, ext int)")
    db.execute("create table td (key int primary key, a int, ext int)")
    db.bulk_load("ta", [(i, i * 10, i * 100) for i in range(2000)])
    db.bulk_load("td", [(i, i * 10, i * 100) for i in range(2000, 2300)])
    return db


@pytest.fixture(scope="session")
def sales_bench_db() -> Database:
    db = _make_db(wal_enabled=False)
    create_sales_schema(db)
    load_sales(db, orders=15000)  # ~37k line items
    return db


@pytest.fixture(scope="session")
def journal_bench():
    from repro.vdm.journal import JournalModel

    db = _make_db(wal_enabled=False)
    model = JournalModel(db, rows=5000).build()
    return db, model


def run_exec(db, plan):
    """Execute a pre-optimized plan (excluding optimization time, as the
    paper's Fig. 14 measurement does)."""
    txn = db.begin()
    try:
        return db._executor.execute(plan, txn)
    finally:
        db.commit(txn)

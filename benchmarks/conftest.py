"""Benchmark fixtures: larger, session-scoped datasets."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import create_sales_schema, create_tpch_schema, load_sales, load_tpch


@pytest.fixture(scope="session")
def tpch_bench_db() -> Database:
    db = Database(wal_enabled=False)
    create_tpch_schema(db)
    load_tpch(db, scale=0.01)  # ~1.5k customers / ~4.4k lineitems
    db.execute("create table ta (key int primary key, a int, ext int)")
    db.execute("create table td (key int primary key, a int, ext int)")
    db.bulk_load("ta", [(i, i * 10, i * 100) for i in range(2000)])
    db.bulk_load("td", [(i, i * 10, i * 100) for i in range(2000, 2300)])
    return db


@pytest.fixture(scope="session")
def sales_bench_db() -> Database:
    db = Database(wal_enabled=False)
    create_sales_schema(db)
    load_sales(db, orders=15000)  # ~37k line items
    return db


@pytest.fixture(scope="session")
def journal_bench():
    from repro.vdm.journal import JournalModel

    db = Database(wal_enabled=False)
    model = JournalModel(db, rows=5000).build()
    return db, model


def run_exec(db, plan):
    """Execute a pre-optimized plan (excluding optimization time, as the
    paper's Fig. 14 measurement does)."""
    txn = db.begin()
    try:
        return db._executor.execute(plan, txn)
    finally:
        db.commit(txn)

"""Benchmark fixtures: larger, session-scoped datasets.

Set ``REPRO_DUMP_TRACES=1`` to record a :class:`repro.observability.trace.
QueryTrace` for every query a benchmark optimizes and dump them (rewrite
fires, pass changed-flags, iteration counts, convergence — no wall times,
so the dump is stable across runs) to ``benchmarks/results/traces.json``.

Every benchmark session also appends a machine-readable summary (median
timings, rewrite-fire counts, operator tallies) to
``benchmarks/results/BENCH_history.json``; ``python -m repro bench-diff``
compares the last two entries.  Set ``REPRO_NO_BENCH_HISTORY=1`` to skip
the append (e.g. for throwaway local runs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import Database
from repro.bench.history import append_run, summarize_benchmarks
from repro.workloads import create_sales_schema, create_tpch_schema, load_sales, load_tpch

DUMP_TRACES = bool(os.environ.get("REPRO_DUMP_TRACES"))
BENCH_HISTORY = not os.environ.get("REPRO_NO_BENCH_HISTORY")
RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_PATH = RESULTS_DIR / "BENCH_history.json"
_collected_traces: list[dict] = []
_session_dbs: list[Database] = []


class _TraceDumpDatabase(Database):
    """A Database that archives every query trace for the end-of-session dump."""

    def _absorb_trace(self, tally) -> None:
        super()._absorb_trace(tally)
        if tally.enabled:
            _collected_traces.append(tally.to_dict())


def _make_db(**kwargs) -> Database:
    if not DUMP_TRACES:
        db = Database(**kwargs)
    else:
        db = _TraceDumpDatabase(**kwargs)
        db.tracing = True
    _session_dbs.append(db)
    return db


@pytest.fixture(scope="session", autouse=True)
def _dump_traces():
    yield
    if DUMP_TRACES and _collected_traces:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "traces.json"
        path.write_text(json.dumps(_collected_traces, indent=1, default=str))


def _aggregate_session_metrics() -> dict:
    """Fold the session databases' registries into history-entry fields."""
    rewrites: dict[str, int] = {}
    queries = 0
    before_sum = before_n = after_sum = after_n = 0.0
    for db in _session_dbs:
        snap = db.metrics.snapshot()
        for name, value in snap.items():
            if name.startswith("optimizer.rewrites."):
                case = name[len("optimizer.rewrites."):]
                rewrites[case] = rewrites.get(case, 0) + value
        queries += snap.get("queries.executed", 0)
        for key, sums in (("plan.operators_before", "before"),
                          ("plan.operators_after", "after")):
            summary = snap.get(key)
            if isinstance(summary, dict) and summary["count"]:
                if sums == "before":
                    before_sum += summary["sum"]
                    before_n += summary["count"]
                else:
                    after_sum += summary["sum"]
                    after_n += summary["count"]
    return {
        "rewrites": dict(sorted(rewrites.items())),
        "queries_executed": queries,
        "operators": {
            "before_mean": before_sum / before_n if before_n else None,
            "after_mean": after_sum / after_n if after_n else None,
        },
    }


def pytest_sessionfinish(session, exitstatus):
    """Append this run's summary to BENCH_history.json."""
    if not BENCH_HISTORY:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    if not benchmarks and not _session_dbs:
        return  # collection-only / unrelated invocation
    entry = {
        "argv": list(session.config.invocation_params.args),
        "benchmarks": summarize_benchmarks(benchmarks),
    }
    entry.update(_aggregate_session_metrics())
    append_run(entry, HISTORY_PATH)


@pytest.fixture(scope="session")
def tpch_bench_db() -> Database:
    db = _make_db(wal_enabled=False)
    create_tpch_schema(db)
    load_tpch(db, scale=0.01)  # ~1.5k customers / ~4.4k lineitems
    db.execute("create table ta (key int primary key, a int, ext int)")
    db.execute("create table td (key int primary key, a int, ext int)")
    db.bulk_load("ta", [(i, i * 10, i * 100) for i in range(2000)])
    db.bulk_load("td", [(i, i * 10, i * 100) for i in range(2000, 2300)])
    return db


@pytest.fixture(scope="session")
def sales_bench_db() -> Database:
    db = _make_db(wal_enabled=False)
    create_sales_schema(db)
    load_sales(db, orders=15000)  # ~37k line items
    return db


@pytest.fixture(scope="session")
def journal_bench():
    from repro.vdm.journal import JournalModel

    db = _make_db(wal_enabled=False)
    model = JournalModel(db, rows=5000).build()
    return db, model


def run_exec(db, plan):
    """Execute a pre-optimized plan (excluding optimization time, as the
    paper's Fig. 14 measurement does)."""
    txn = db.begin()
    try:
        return db._executor.execute(plan, txn)
    finally:
        db.commit(txn)

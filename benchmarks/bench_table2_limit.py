"""E2 / E6 — Table 2 and Fig. 6: limit pushdown across augmentation joins.

Regenerates Table 2 (only the HANA profile pushes the limit) and measures
the execution impact: a paging query over a scaled join with vs. without
the pushdown.
"""

import pytest

from repro import Database
from repro.algebra.ops import Join, Limit
from repro.bench import format_matrix, write_report
from repro.workloads import queries
from conftest import run_exec

PAGING_SQL = (
    "select * from bigorders o left outer join pagecust c "
    "on o.cust = c.ckey order by o.total desc limit 100 offset 1"
)


@pytest.fixture(scope="module")
def paging_db() -> Database:
    """A UI-scale paging scenario: an ordered list over a large
    transactional table behind an augmentation join (the shape of Fig. 6)."""
    db = Database(wal_enabled=False)
    db.execute(
        "create table bigorders (okey int primary key, cust int not null, "
        "total double, note varchar(20))"
    )
    db.execute("create table pagecust (ckey int primary key, cname varchar(20))")
    db.bulk_load(
        "bigorders",
        [
            (i, i % 2000, ((i * 2654435761) % 999900) / 100.0, f"note {i % 50}")
            for i in range(40000)
        ],
    )
    db.bulk_load("pagecust", [(i, f"cust {i}") for i in range(2000)])
    return db


def limit_pushed(plan) -> bool:
    for node in plan.walk():
        if isinstance(node, Join):
            return any(isinstance(x, Limit) for x in node.left.walk())
    return True  # join eliminated entirely also counts


def compute_matrix(db):
    row = ""
    for profile in queries.PROFILE_ORDER:
        db.set_profile(profile)
        row += "Y" if limit_pushed(db.plan_for(queries.FIG6_PAGING.sql)) else "-"
    db.set_profile("hana")
    return [row]


def test_table2_matrix(tpch_bench_db, benchmark):
    observed = benchmark(compute_matrix, tpch_bench_db)
    expected = [queries.FIG6_PAGING.expected]
    report = format_matrix(
        "Table 2 — limit-on-AJ pushdown status (Fig. 6 paging query)",
        ["Fig. 6"],
        queries.PROFILE_ORDER,
        observed,
        expected,
    )
    write_report("table2_limit", report)
    assert observed == expected


def test_fig6_paging_with_pushdown(paging_db, benchmark):
    plan = paging_db.plan_for(PAGING_SQL, optimize=True)
    benchmark(lambda: run_exec(paging_db, plan))


def test_fig6_paging_without_pushdown(paging_db, benchmark):
    plan = paging_db.plan_for(PAGING_SQL, optimize=False)
    benchmark(lambda: run_exec(paging_db, plan))


def test_fig6_speedup_report(paging_db, benchmark):
    import time

    # The pushed plan must page through the bounded-heap TopN on the
    # anchor side — never a full sort of the joined result.
    assert "TopN[k=100" in paging_db.explain(PAGING_SQL)

    def measure():
        optimized = paging_db.plan_for(PAGING_SQL, optimize=True)
        unoptimized = paging_db.plan_for(PAGING_SQL, optimize=False)
        timings = {}
        for label, plan in (("pushed", optimized), ("not pushed", unoptimized)):
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                result = run_exec(paging_db, plan)
                samples.append(time.perf_counter() - start)
                assert len(result.rows) == 100
            timings[label] = sorted(samples)[len(samples) // 2]
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = timings["not pushed"] / timings["pushed"]
    write_report(
        "fig6_paging",
        "Fig. 6 — paging query execution\n"
        "(order by total desc limit 100 offset 1 over 40k orders ⟕ 2k "
        "customers)\n\n"
        f"with limit pushdown    : {timings['pushed']*1000:8.2f} ms\n"
        f"without limit pushdown : {timings['not pushed']*1000:8.2f} ms\n"
        f"speedup                : {speedup:8.1f}x\n\n"
        "Expected shape: the pushed plan runs the bounded-heap TopN over\n"
        "the anchor alone and joins 101 rows; without the pushdown the\n"
        "ORDER BY is a pipeline breaker above the join, so every one of\n"
        "the 40k augmented rows is built and ranked first (the effect the\n"
        "paper calls out in §4.4).",
    )
    assert speedup > 5

"""E1 — Table 1: UAJ optimization status across the five system profiles.

Regenerates the paper's 7x5 Y/- matrix by running each profile's optimizer
on the Fig. 5 queries and inspecting the resulting plans, and times the
execution payoff of UAJ elimination on the TPC-H data.
"""

from repro.algebra.ops import Join
from repro.bench import format_matrix, write_report
from repro.workloads import queries
from conftest import run_exec


def compute_matrix(db):
    observed = []
    for query in queries.UAJ_SUITE:
        row = ""
        for profile in queries.PROFILE_ORDER:
            db.set_profile(profile)
            plan = db.plan_for(query.sql)
            row += "Y" if not any(isinstance(n, Join) for n in plan.walk()) else "-"
        observed.append(row)
    db.set_profile("hana")
    return observed


def test_table1_matrix(tpch_bench_db, benchmark):
    observed = benchmark(compute_matrix, tpch_bench_db)
    expected = [q.expected for q in queries.UAJ_SUITE]
    report = format_matrix(
        "Table 1 — UAJ optimization status (Y = join eliminated)",
        [q.name for q in queries.UAJ_SUITE],
        queries.PROFILE_ORDER,
        observed,
        expected,
    )
    write_report("table1_uaj", report)
    assert observed == expected


def _exec_case(db, sql, optimize):
    plan = db.plan_for(sql, optimize=optimize)
    return lambda: run_exec(db, plan)


def test_uaj1_execution_optimized(tpch_bench_db, benchmark):
    sql = queries.UAJ_SUITE[0].sql
    result = benchmark(_exec_case(tpch_bench_db, sql, True))


def test_uaj1_execution_unoptimized(tpch_bench_db, benchmark):
    sql = queries.UAJ_SUITE[0].sql
    benchmark(_exec_case(tpch_bench_db, sql, False))


def test_uaj2a_execution_optimized(tpch_bench_db, benchmark):
    sql = queries.UAJ_SUITE[4].sql
    benchmark(_exec_case(tpch_bench_db, sql, True))


def test_uaj2a_execution_unoptimized(tpch_bench_db, benchmark):
    sql = queries.UAJ_SUITE[4].sql
    benchmark(_exec_case(tpch_bench_db, sql, False))


def test_uaj_results_identical(tpch_bench_db, benchmark):
    """Correctness guard, timed only to satisfy --benchmark-only."""

    def check():
        for query in queries.UAJ_SUITE:
            optimized = tpch_bench_db.query(query.sql)
            unoptimized = tpch_bench_db.query(query.sql, optimize=False)
            assert sorted(map(repr, optimized.rows)) == sorted(
                map(repr, unoptimized.rows)
            ), query.name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

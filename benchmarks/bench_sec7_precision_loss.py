"""E8 — §7.1: aggregation pushdown across decimal rounding.

``sum(round(price*1.11, 2))`` cannot normally be rewritten.  With the
ALLOW_PRECISION_LOSS opt-in the optimizer produces
``round(sum(price)*1.11, 2)`` — one rounding instead of one per row.  The
benchmark measures the speedup and reports the (accepted) decimal
discrepancy.
"""

import decimal
import time

from repro.bench import write_report
from conftest import run_exec

STRICT = "select sum(round(price * 1.11, 2)) from salesorderitem"
OPT_IN = "select allow_precision_loss(sum(round(price * 1.11, 2))) from salesorderitem"
GROUPED_STRICT = (
    "select plant_id, sum(round(price * 1.11, 2)) from salesorderitem group by plant_id"
)
GROUPED_OPT_IN = (
    "select plant_id, allow_precision_loss(sum(round(price * 1.11, 2))) "
    "from salesorderitem group by plant_id"
)


def test_strict_rounding_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(STRICT)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_precision_loss_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(OPT_IN)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_grouped_strict_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(GROUPED_STRICT)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_grouped_precision_loss_execution(sales_bench_db, benchmark):
    plan = sales_bench_db.plan_for(GROUPED_OPT_IN)
    benchmark(lambda: run_exec(sales_bench_db, plan))


def test_precision_loss_report(sales_bench_db, benchmark):
    def measure():
        rows = sales_bench_db.query("select count(*) from salesorderitem").scalar()
        timings = {}
        for label, sql in (("strict", STRICT), ("opt-in", OPT_IN)):
            plan = sales_bench_db.plan_for(sql)
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                result = run_exec(sales_bench_db, plan)
                samples.append(time.perf_counter() - start)
            timings[label] = (sorted(samples)[2], result.rows[0][0])
        return rows, timings

    rows, timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    strict_time, strict_value = timings["strict"]
    fast_time, fast_value = timings["opt-in"]
    manual = sales_bench_db.query(
        "select round(sum(price) * 1.11, 2) from salesorderitem"
    ).scalar()
    discrepancy = abs(strict_value - fast_value)
    speedup = strict_time / fast_time
    write_report(
        "sec7_precision_loss",
        "§7.1 — aggregation pushdown across decimal rounding\n"
        f"({rows} sales order items)\n\n"
        f"sum(round(price*1.11,2))                    : {strict_value}  "
        f"in {strict_time*1000:7.1f} ms\n"
        f"allow_precision_loss(...)                   : {fast_value}  "
        f"in {fast_time*1000:7.1f} ms\n"
        f"manual round(sum(price)*1.11,2)             : {manual}\n\n"
        f"speedup                                     : {speedup:5.1f}x\n"
        f"accepted decimal discrepancy                : {discrepancy}\n"
        f"relative error                              : "
        f"{discrepancy / strict_value if strict_value else 0:.2e}\n\n"
        "Expected shape: the rewrite equals the paper's manually-rewritten\n"
        "form exactly; the discrepancy stays in insignificant trailing\n"
        "digits; per-row rounding cost disappears.",
    )
    assert fast_value == manual
    assert discrepancy / strict_value < decimal.Decimal("0.000001")
    assert speedup > 1.3

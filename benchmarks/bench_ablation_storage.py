"""A2 — ablation: the storage substrate behaves like the engine class the
paper assumes (§2.2).

- delta merge: scans over a merged (dictionary-encoded) main fragment vs. a
  large unmerged delta;
- NSE page buffer: page-wise access under a constrained buffer vs. fully
  in-memory columns;
- MVCC fast path: scan cost on a clean bulk-loaded table vs. one with
  transactional versions.
"""

import time

import pytest

from repro import Database
from repro.bench import write_report
from repro.storage.column import ColumnFragments
from repro.storage.nse import PageBuffer, PagedColumn
from conftest import run_exec

ROWS = 30000


@pytest.fixture(scope="module")
def storage_db():
    db = Database(wal_enabled=False)
    db.execute(
        "create table merged (k int primary key, grp int not null, v decimal(10,2))"
    )
    db.execute(
        "create table unmerged (k int primary key, grp int not null, v decimal(10,2))"
    )
    rows = [(i, i % 100, f"{i % 997}.25") for i in range(ROWS)]
    db.bulk_load("merged", rows, merge=True)
    db.bulk_load("unmerged", rows, merge=False)
    return db

AGG = "select grp, sum(v) from {table} group by grp"


def test_scan_merged_main(storage_db, benchmark):
    plan = storage_db.plan_for(AGG.format(table="merged"))
    benchmark(lambda: run_exec(storage_db, plan))


def test_scan_unmerged_delta(storage_db, benchmark):
    plan = storage_db.plan_for(AGG.format(table="unmerged"))
    benchmark(lambda: run_exec(storage_db, plan))


def test_delta_merge_cost(storage_db, benchmark):
    def merge_cycle():
        table = storage_db.catalog.table("unmerged")
        table.merge_delta()
        # re-disperse: append a small delta again so the fixture stays warm
        txn = storage_db.begin()
        table.insert(txn, (ROWS + merge_cycle.counter, 1, "1.00"))
        merge_cycle.counter += 1
        storage_db.commit(txn)

    merge_cycle.counter = 0
    benchmark.pedantic(merge_cycle, rounds=3, iterations=1)


def test_nse_paged_vs_inmemory(benchmark):
    def measure():
        values = list(range(50000))
        fragments = ColumnFragments(values)
        start = time.perf_counter()
        total = sum(fragments.values())
        in_memory = time.perf_counter() - start

        tight = PageBuffer(capacity=8)
        paged = PagedColumn(fragments, tight, page_rows=1024)
        start = time.perf_counter()
        total2 = sum(paged.values())
        paged_tight = time.perf_counter() - start

        roomy = PageBuffer(capacity=64)
        paged2 = PagedColumn(fragments, roomy, page_rows=1024)
        sum(paged2.values())  # warm the buffer
        start = time.perf_counter()
        total3 = sum(paged2.values())
        paged_warm = time.perf_counter() - start
        assert total == total2 == total3
        return in_memory, paged_tight, paged_warm, tight.stats, roomy.stats

    in_memory, tight_time, warm_time, tight_stats, roomy_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    write_report(
        "ablation_storage_nse",
        "A2 — NSE page-buffer simulation (50k-row column, 1024-row pages)\n\n"
        f"fully in-memory column scan       : {in_memory*1000:7.1f} ms\n"
        f"page-wise, 8-page buffer (cold)   : {tight_time*1000:7.1f} ms "
        f"(hit ratio {tight_stats.hit_ratio:.2%}, {tight_stats.evictions} evictions)\n"
        f"page-wise, 64-page buffer (warm)  : {warm_time*1000:7.1f} ms "
        f"(hit ratio {roomy_stats.hit_ratio:.2%})\n\n"
        "Expected shape: warm page-wise access approaches in-memory cost;\n"
        "a too-small buffer pays per-page load penalties — the trade NSE\n"
        "offers for warm data (§2.2).",
    )
    assert roomy_stats.hit_ratio > 0.99


def test_mvcc_fast_path_report(storage_db, benchmark):
    def measure():
        clean_plan = storage_db.plan_for("select count(*) from merged")
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            run_exec(storage_db, clean_plan)
            samples.append(time.perf_counter() - start)
        clean = sorted(samples)[2]

        txn = storage_db.begin()
        storage_db.execute("delete from merged where k = 0", txn=txn)
        storage_db.commit(txn)
        versioned_plan = storage_db.plan_for("select count(*) from merged")
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            run_exec(storage_db, versioned_plan)
            samples.append(time.perf_counter() - start)
        versioned = sorted(samples)[2]
        return clean, versioned

    clean, versioned = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_report(
        "ablation_storage_mvcc",
        "A2 — MVCC visibility cost on scans (30k rows)\n\n"
        f"clean bulk-loaded table (fast path) : {clean*1000:7.2f} ms\n"
        f"after one versioned delete          : {versioned*1000:7.2f} ms\n\n"
        "Expected shape: per-row visibility checks cost a multiple of the\n"
        "fast path — why HTAP engines keep version metadata compact.",
    )
    assert versioned >= clean * 0.5  # sanity: both measurements are real

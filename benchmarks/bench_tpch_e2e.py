"""TPC-H workload end to end: the full paper suite through Database.query.

Unlike the per-table benchmarks (which time plan shapes or pre-optimized
execution), this measures the whole pipeline — parse, bind, optimize,
execute — over every evaluation query, the way a client would issue
them.  Repeated rounds run against a warm plan cache, so the recorded
timings reflect the serving-path steady state; the suite's totals land
in BENCH_history like every other benchmark session.
"""

from repro.workloads.queries import all_suites

SUITE_SQLS = [q.sql for suite in all_suites().values() for q in suite]


def run_suite(db) -> int:
    total = 0
    for sql in SUITE_SQLS:
        total += len(db.query(sql).rows)
    return total


def test_tpch_suite_end_to_end(tpch_bench_db, benchmark):
    total = benchmark(run_suite, tpch_bench_db)
    assert total > 0


def test_tpch_suite_cache_traffic(tpch_bench_db):
    """After the benchmark rounds the plan cache must have served the
    suite largely from hits."""
    cache = tpch_bench_db.plan_cache
    if cache is None:
        return
    assert cache.hits > len(SUITE_SQLS)

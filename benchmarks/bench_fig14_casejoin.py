"""E7 — Figure 14: performance impact of the case-join ASJ optimization.

The paper's experiment: 100 VDM views, each queried as
``select * from V limit 10`` in two forms — the original view and the
extension view exposing a custom field.  Panel (a) extends with a plain
LEFT OUTER JOIN (the optimizer must *recognize* the ASJ-with-Union-All
pattern structurally, which fails for non-canonical shapes); panel (b)
extends with the declared-intent CASE JOIN.  Execution time only, as in the
paper ("excluding the query optimization time").

Expected shape: panel (b) hugs the diagonal (extension ≈ original); panel
(a) shows the canonical half on the diagonal and the non-canonical half far
above it — the paper reports up to 2-3 orders of magnitude.
"""

import math
import statistics
import time

import pytest

from repro import Database
from repro.bench import write_report
from repro.vdm.generator import SyntheticVdm
from conftest import run_exec

VIEW_COUNT = 100
MIN_ROWS = 50
MAX_ROWS = 50000
REPEATS = 3


@pytest.fixture(scope="module")
def population():
    db = Database(wal_enabled=False)
    generator = SyntheticVdm(db, seed=20250607)
    views = generator.build_views(
        count=VIEW_COUNT, min_rows=MIN_ROWS, max_rows=MAX_ROWS,
        min_dims=2, max_dims=5, canonical_ratio=0.5,
    )
    return db, views


def median_exec_ms(db, plan) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        run_exec(db, plan)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1000


def collect_panel(db, views, extended_attr):
    """(original_ms, extended_ms, canonical, rows) per view."""
    points = []
    for view in views:
        original = db.plan_for(f"select * from {view.name} limit 10")
        extended = db.plan_for(
            f"select * from {getattr(view, extended_attr)} limit 10"
        )
        points.append(
            (
                median_exec_ms(db, original),
                median_exec_ms(db, extended),
                view.canonical,
                view.rows,
            )
        )
    return points


def render_panel(title, points):
    ratios = [e / max(o, 1e-6) for o, e, _, _ in points]
    lines = [title, ""]
    lines.append(f"{'rows':>8} {'canonical':>10} {'orig ms':>10} {'ext ms':>10} {'ratio':>8}")
    for (o, e, canonical, rows) in points:
        lines.append(f"{rows:>8} {str(canonical):>10} {o:>10.2f} {e:>10.2f} {e/max(o,1e-6):>8.1f}")
    lines.append("")
    lines.append(f"median ratio : {statistics.median(ratios):6.1f}x")
    lines.append(f"max ratio    : {max(ratios):6.1f}x")
    return lines, ratios


def test_fig14_scatter(population, benchmark):
    db, views = population

    def measure():
        panel_a = collect_panel(db, views, "extended_plain")
        panel_b = collect_panel(db, views, "extended_case")
        return panel_a, panel_b

    panel_a, panel_b = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines_a, ratios_a = render_panel(
        "Fig. 14(a) — extension via plain LEFT OUTER JOIN (structural "
        "recognition)", panel_a,
    )
    lines_b, ratios_b = render_panel(
        "Fig. 14(b) — extension via CASE JOIN (declared ASJ intent)", panel_b,
    )

    canonical_a = [e / max(o, 1e-6) for o, e, c, _ in panel_a if c]
    noncanon_a = [e / max(o, 1e-6) for o, e, c, _ in panel_a if not c]
    # The blow-up is size-correlated (tiny views have sub-ms absolute cost
    # and sit near the diagonal even unrecognized, as in the paper's plot).
    mid_noncanon_a = [
        e / max(o, 1e-6) for o, e, c, rows in panel_a if not c and rows > 2000
    ]
    big_noncanon_a = [
        e / max(o, 1e-6) for o, e, c, rows in panel_a if not c and rows > 5000
    ]

    summary = [
        "",
        "Shape check vs. the paper:",
        f"  (b) all points near the diagonal: median {statistics.median(ratios_b):.1f}x, "
        f"max {max(ratios_b):.1f}x",
        f"  (a) canonical (recognized) views stay near the diagonal: "
        f"median {statistics.median(canonical_a):.1f}x",
        f"  (a) non-canonical (unrecognized) views blow up: "
        f"median {statistics.median(noncanon_a):.1f}x, max {max(noncanon_a):.1f}x",
        f"  (a) large unrecognized views: up to {max(big_noncanon_a):.0f}x slower "
        f"(paper: up to 2-3 orders of magnitude)",
    ]
    write_report(
        "fig14_casejoin", "\n".join(lines_a + [""] + lines_b + summary)
    )

    # Panel (b): diagonal — every extension within a small factor.
    assert statistics.median(ratios_b) < 3
    # Panel (a): recognized views on the diagonal, unrecognized far above
    # (the paper reports up to 2-3 orders of magnitude on production VDM
    # views; at this synthetic scale we expect >= 1-2 orders at the top).
    assert statistics.median(canonical_a) < 3
    assert statistics.median(mid_noncanon_a) > 4
    assert max(big_noncanon_a) > 15


def test_fig14_results_correct_sample(population, benchmark):
    """Optimized and unoptimized extension results agree (sampled)."""
    db, views = population

    def check():
        for view in views[::25]:
            for name in (view.extended_plain, view.extended_case):
                sql = f"select * from {name}"
                a = db.query(sql)
                b = db.query(sql, optimize=False)
                assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows)), name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

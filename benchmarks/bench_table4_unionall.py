"""E4 — Table 4: UAJ optimization with Union All (paper §6.2, Fig. 12).

Regenerates the 2x5 matrix (rows labeled as in the paper: the union
patterns of Fig. 11a/b) and times the payoff of eliminating a union-typed
augmenter.
"""

from repro.algebra.ops import Join
from repro.bench import format_matrix, write_report
from repro.workloads import queries
from conftest import run_exec


def compute_matrix(db):
    observed = []
    for query in queries.UNION_UAJ_SUITE:
        row = ""
        for profile in queries.PROFILE_ORDER:
            db.set_profile(profile)
            plan = db.plan_for(query.sql)
            row += "Y" if not any(isinstance(n, Join) for n in plan.walk()) else "-"
        observed.append(row)
    db.set_profile("hana")
    return observed


def test_table4_matrix(tpch_bench_db, benchmark):
    observed = benchmark(compute_matrix, tpch_bench_db)
    expected = [q.expected for q in queries.UNION_UAJ_SUITE]
    report = format_matrix(
        "Table 4 — UAJ optimization status for Union All",
        [q.name for q in queries.UNION_UAJ_SUITE],
        queries.PROFILE_ORDER,
        observed,
        expected,
    )
    write_report("table4_unionall", report)
    assert observed == expected


def test_fig11a_execution_optimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.UNION_UAJ_SUITE[0].sql, optimize=True)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig11a_execution_unoptimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.UNION_UAJ_SUITE[0].sql, optimize=False)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig11b_execution_optimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.UNION_UAJ_SUITE[1].sql, optimize=True)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig11b_execution_unoptimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.UNION_UAJ_SUITE[1].sql, optimize=False)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig13_patterns(tpch_bench_db, benchmark):
    """Fig. 13a + both Fig. 13b flavours: plans and results."""
    from repro.algebra.ops import Join as JoinOp

    def check():
        outcomes = {}
        for query in (queries.FIG13A, queries.FIG13B_CASE_JOIN, queries.FIG13B_PLAIN):
            tpch_bench_db.set_profile("hana")
            plan = tpch_bench_db.plan_for(query.sql)
            joins = sum(1 for n in plan.walk() if isinstance(n, JoinOp))
            a = tpch_bench_db.query(query.sql)
            b = tpch_bench_db.query(query.sql, optimize=False)
            assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows)), query.name
            outcomes[query.name] = joins
        return outcomes

    outcomes = benchmark.pedantic(check, rounds=1, iterations=1)
    lines = ["Fig. 13 — ASJ with Union All (HANA profile)", ""]
    for name, joins in outcomes.items():
        lines.append(f"{name:28} remaining joins: {joins} (expected 0)")
    write_report("fig13_union_asj", "\n".join(lines))
    assert all(j == 0 for j in outcomes.values())


def test_union_results_identical(tpch_bench_db, benchmark):
    def check():
        for query in queries.UNION_UAJ_SUITE:
            for profile in queries.PROFILE_ORDER:
                tpch_bench_db.set_profile(profile)
                a = tpch_bench_db.query(query.sql)
                b = tpch_bench_db.query(query.sql, optimize=False)
                assert sorted(a.rows) == sorted(b.rows), (query.name, profile)
        tpch_bench_db.set_profile("hana")
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

"""Regenerate the committed demo workload capture.

Runs a deterministic order/customer workload through
``Database(capture_dir=...)`` so the recorder writes
``demo_orders.jsonl`` — the file CI replays with
``python -m repro replay benchmarks/workloads/demo_orders.jsonl``.
Timings in the capture reflect the machine that ran this script; the
digests are machine-independent.

Usage:  PYTHONPATH=src python benchmarks/workloads/capture_demo.py
"""

from __future__ import annotations

import os

from repro import Database
from repro.capture.recorder import DEFAULT_FILENAME
from repro.errors import ReproError

WORKLOAD = [
    "create table customer (c_id int primary key, c_name varchar(30), c_tier int)",
    "create table orders (o_id int primary key, o_cust int not null, "
    "o_total decimal(12,2), o_status varchar(1) not null)",
    "create view orderview as select o.o_id, o.o_total, o.o_status, c.c_name "
    "from orders o left outer many to one join customer c on o.o_cust = c.c_id",
    "insert into customer values (1,'ACME',1),(2,'Globex',2),(3,'Initech',1),"
    "(4,'Umbrella',3),(5,'Stark',2)",
    "insert into orders values (10,1,100.00,'N'),(11,1,250.50,'P'),"
    "(12,2,75.25,'N'),(13,3,990.00,'P'),(14,4,12.75,'N'),(15,5,310.40,'D'),"
    "(16,2,44.10,'P'),(17,3,5.99,'N')",
    "select o_id, c_name from orderview where o_status = 'N'",
    "select count(*) from orderview",
    "select c_name, sum(o_total) from orderview group by c_name",
    "update orders set o_status = 'D' where o_id = 10",
    "select o_id, o_total from orderview where o_status = 'D' order by o_id",
    "select o_id, o_total from orderview limit 3",
    "delete from orders where o_id = 17",
    "select count(*) from orders",
    # An intentionally failing statement: replay must reproduce the failure.
    "select no_such_column from orders",
    "select c_tier, count(*) from orderview o "
    "join customer c on o.c_name = c.c_name group by c_tier",
]


def main() -> None:
    here = os.path.dirname(os.path.abspath(__file__))
    target = os.path.join(here, "demo_orders.jsonl")
    if os.path.exists(target):
        os.remove(target)
    db = Database(capture_dir=here)
    try:
        for sql in WORKLOAD:
            try:
                db.execute(sql)
            except ReproError:
                pass    # the capture records the failure; replay expects it
    finally:
        db.close()
    os.rename(os.path.join(here, DEFAULT_FILENAME), target)
    print(f"wrote {target}")


if __name__ == "__main__":
    main()

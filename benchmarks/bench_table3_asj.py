"""E3 — Table 3: ASJ optimization status (Fig. 10a/b/c).

Regenerates the 3x5 matrix and times the execution payoff of removing a
used augmentation self-join.
"""

from repro.algebra.ops import Scan
from repro.bench import format_matrix, write_report
from repro.workloads import queries
from conftest import run_exec


def compute_matrix(db):
    observed = []
    for query in queries.ASJ_SUITE:
        row = ""
        for profile in queries.PROFILE_ORDER:
            db.set_profile(profile)
            plan = db.plan_for(query.sql)
            customer_scans = sum(
                1 for n in plan.walk()
                if isinstance(n, Scan) and n.schema.name == "customer"
            )
            row += "Y" if customer_scans <= 1 else "-"
        observed.append(row)
    db.set_profile("hana")
    return observed


def test_table3_matrix(tpch_bench_db, benchmark):
    observed = benchmark(compute_matrix, tpch_bench_db)
    expected = [q.expected for q in queries.ASJ_SUITE]
    report = format_matrix(
        "Table 3 — ASJ optimization status (Y = self-join rewired away)",
        [q.name for q in queries.ASJ_SUITE],
        queries.PROFILE_ORDER,
        observed,
        expected,
    )
    write_report("table3_asj", report)
    assert observed == expected


def test_fig10a_execution_optimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.ASJ_SUITE[0].sql, optimize=True)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig10a_execution_unoptimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.ASJ_SUITE[0].sql, optimize=False)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig10b_execution_optimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.ASJ_SUITE[1].sql, optimize=True)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_fig10b_execution_unoptimized(tpch_bench_db, benchmark):
    plan = tpch_bench_db.plan_for(queries.ASJ_SUITE[1].sql, optimize=False)
    benchmark(lambda: run_exec(tpch_bench_db, plan))


def test_asj_results_identical(tpch_bench_db, benchmark):
    def check():
        for query in queries.ASJ_SUITE + [queries.ASJ_NEGATIVE]:
            a = tpch_bench_db.query(query.sql)
            b = tpch_bench_db.query(query.sql, optimize=False)
            assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows)), query.name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

"""A3 — ablation: cached views (paper §3, SCV/DCV) vs. on-the-fly views.

The paper's note: materialization trades freshness (SCV: delayed snapshot)
or maintenance cost (DCV: incremental) against per-query computation.  This
ablation measures an aggregate over a VDM-style view computed (a) on the
fly, (b) from a static cache, (c) from a dynamic cache after new writes.
"""

import time

import pytest

from repro import Database
from repro.bench import write_report
from repro.cache import CachedViewManager
from conftest import run_exec

ROWS = 40000
AGG_SQL = (
    "select region, count(*) as n, sum(amount) as total "
    "from salesfact group by region"
)


@pytest.fixture(scope="module")
def cached_db():
    db = Database(wal_enabled=False)
    db.execute(
        "create table salesfact (sid int primary key, region int not null, "
        "amount decimal(12,2))"
    )
    db.bulk_load(
        "salesfact",
        [(i, i % 40, f"{i % 9973}.50") for i in range(ROWS)],
    )
    manager = CachedViewManager(db)
    manager.create_static("scv_sales", AGG_SQL)
    manager.create_dynamic("dcv_sales", AGG_SQL)
    return db, manager


def test_on_the_fly_aggregate(cached_db, benchmark):
    db, _ = cached_db
    plan = db.plan_for(AGG_SQL)
    benchmark(lambda: run_exec(db, plan))


def test_static_cache_read(cached_db, benchmark):
    db, _ = cached_db
    plan = db.plan_for("select * from scv_sales")
    benchmark(lambda: run_exec(db, plan))


def test_dynamic_cache_fresh_read(cached_db, benchmark):
    db, manager = cached_db

    def fresh_read():
        return manager.query_fresh("dcv_sales")

    benchmark(fresh_read)


def test_cached_view_report(cached_db, benchmark):
    db, manager = cached_db

    def measure():
        timings = {}
        fly_plan = db.plan_for(AGG_SQL)
        scv_plan = db.plan_for("select * from scv_sales")
        for label, plan in (("on the fly", fly_plan), ("SCV read", scv_plan)):
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                run_exec(db, plan)
                samples.append(time.perf_counter() - start)
            timings[label] = sorted(samples)[2]
        # DCV: write a small batch, then read fresh (includes maintenance).
        db.execute(
            "insert into salesfact values (900001, 1, 10.00), (900002, 2, 20.00)"
        )
        start = time.perf_counter()
        fresh = manager.query_fresh(
            "dcv_sales", "select n from dcv_sales where region = 1"
        )
        timings["DCV fresh read (incl. 2-row maintenance)"] = time.perf_counter() - start
        correct = db.query(
            "select count(*) from salesfact where region = 1"
        ).scalar()
        return timings, fresh.scalar(), correct

    timings, fresh_value, correct = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"A3 — cached views over a {ROWS}-row fact table (40-group aggregate)",
        "",
    ]
    for label, seconds in timings.items():
        lines.append(f"{label:42}: {seconds*1000:8.2f} ms")
    lines += [
        "",
        f"DCV freshness check: cached n = {fresh_value}, base count = {correct}",
        "",
        "Expected shape: cache reads are orders of magnitude cheaper than",
        "recomputation; DCV pays only per-delta maintenance for an",
        "up-to-date snapshot (paper §3: SCV delayed, DCV up-to-date).",
    ]
    write_report("ablation_cached_views", "\n".join(lines))
    assert fresh_value == correct
    assert timings["SCV read"] < timings["on the fly"] / 5

"""A1 — ablation: the value of UAJ elimination vs. view expansiveness.

Paper §4.1: VDM views join up to 100+ tables while queries touch 10-20
fields.  This ablation sweeps the number of (unused) augmentation joins in
a generated view and contrasts query time with UAJ elimination (hana
profile) against without (system_x profile, which has no join elimination).

Expected shape: the optimized series is flat; the unoptimized series grows
linearly with the view width — the gap IS the paper's motivation.
"""

import time

import pytest

from repro import Database
from repro.bench import write_report
from repro.vdm.generator import build_wide_view
from conftest import run_exec

WIDTHS = [0, 5, 10, 20, 30]
QUERY = "select fkey, amount from {view} limit 50"


@pytest.fixture(scope="module")
def wide_db():
    db = Database(wal_enabled=False)
    for width in WIDTHS:
        build_wide_view(db, f"wide{width}", join_count=width, fact_rows=8000)
    return db


def test_width30_with_uaj(wide_db, benchmark):
    wide_db.set_profile("hana")
    plan = wide_db.plan_for(QUERY.format(view="wide30"))
    benchmark(lambda: run_exec(wide_db, plan))


def test_width30_without_uaj(wide_db, benchmark):
    wide_db.set_profile("system_x")
    plan = wide_db.plan_for(QUERY.format(view="wide30"))
    wide_db.set_profile("hana")
    benchmark(lambda: run_exec(wide_db, plan))


def test_view_width_sweep(wide_db, benchmark):
    def measure():
        series = []
        for width in WIDTHS:
            sql = QUERY.format(view=f"wide{width}")
            wide_db.set_profile("hana")
            optimized_plan = wide_db.plan_for(sql)
            wide_db.set_profile("system_x")
            unoptimized_plan = wide_db.plan_for(sql)
            wide_db.set_profile("hana")
            timings = []
            for plan in (optimized_plan, unoptimized_plan):
                samples = []
                for _ in range(3):
                    start = time.perf_counter()
                    run_exec(wide_db, plan)
                    samples.append(time.perf_counter() - start)
                timings.append(sorted(samples)[1] * 1000)
            series.append((width, timings[0], timings[1]))
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "A1 — query time vs. number of unused augmentation joins in the view",
        "(8000-row fact table, query touches 2 fields + limit 50)",
        "",
        f"{'unused AJs':>11} {'with UAJ elim (ms)':>20} {'without (ms)':>14} {'ratio':>7}",
    ]
    for width, optimized, unoptimized in series:
        lines.append(
            f"{width:>11} {optimized:>20.2f} {unoptimized:>14.2f} "
            f"{unoptimized / max(optimized, 1e-6):>7.1f}"
        )
    lines += [
        "",
        "Expected shape: the optimized series is flat (the joins are gone);",
        "the unoptimized series grows with view width.",
    ]
    write_report("ablation_view_width", "\n".join(lines))

    optimized_times = [o for _, o, _ in series]
    unoptimized_times = [u for _, _, u in series]
    # flat optimized series: widest view costs at most ~4x the narrowest
    assert max(optimized_times) < optimized_times[0] * 4 + 1.0
    # growing unoptimized series: width 30 costs >> width 0
    assert unoptimized_times[-1] > unoptimized_times[0] * 5
    # the headline gap at width 30
    assert unoptimized_times[-1] / max(optimized_times[-1], 1e-6) > 10

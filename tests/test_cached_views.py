"""Cached-view tests (paper §3: SCV delayed snapshots, DCV up-to-date)."""

import decimal

import pytest

from repro import Database
from repro.cache import CachedViewManager
from repro.errors import CatalogError, ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table tx (txid int primary key, acct int not null, amt decimal(10,2))"
    )
    database.bulk_load("tx", [(i, i % 4, f"{i}.50") for i in range(20)])
    return database


AGG_SQL = "select acct, count(*) as n, sum(amt) as total from tx group by acct"


class TestStaticCachedViews:
    def test_create_materializes(self, db):
        manager = CachedViewManager(db)
        manager.create_static("scv_totals", AGG_SQL)
        rows = db.query("select * from scv_totals order by acct").rows
        assert len(rows) == 4 and rows[0][1] == 5

    def test_delayed_snapshot_semantics(self, db):
        manager = CachedViewManager(db)
        manager.create_static("scv_totals", AGG_SQL)
        db.execute("insert into tx values (100, 0, 10.00)")
        stale = db.query("select n from scv_totals where acct = 0").scalar()
        assert stale == 5  # still the old snapshot
        assert manager.is_stale("scv_totals")
        manager.refresh("scv_totals")
        fresh = db.query("select n from scv_totals where acct = 0").scalar()
        assert fresh == 6
        assert not manager.is_stale("scv_totals")

    def test_staleness_detects_deletes(self, db):
        manager = CachedViewManager(db)
        manager.create_static("scv_totals", AGG_SQL)
        db.execute("delete from tx where txid = 3")
        assert manager.is_stale("scv_totals")

    def test_scv_of_join_query(self, db):
        db.execute("create table acct (aid int primary key, aname varchar(10))")
        db.bulk_load("acct", [(i, f"A{i}") for i in range(4)])
        manager = CachedViewManager(db)
        manager.create_static(
            "scv_join",
            "select a.aname, sum(t.amt) as total from tx t "
            "join acct a on t.acct = a.aid group by a.aname",
        )
        assert len(db.query("select * from scv_join").rows) == 4
        assert manager.info("scv_join").base_tables == ("acct", "tx")

    def test_duplicate_name_rejected(self, db):
        manager = CachedViewManager(db)
        manager.create_static("c1", AGG_SQL)
        with pytest.raises(CatalogError):
            manager.create_static("c1", AGG_SQL)

    def test_drop(self, db):
        manager = CachedViewManager(db)
        manager.create_static("c1", AGG_SQL)
        manager.drop("c1")
        assert not db.catalog.has_table("c1")
        with pytest.raises(CatalogError):
            manager.info("c1")

    def test_refresh_count(self, db):
        manager = CachedViewManager(db)
        info = manager.create_static("c1", AGG_SQL)
        manager.refresh("c1")
        assert info.refresh_count == 2


class TestDynamicCachedViews:
    def test_incremental_insert_maintenance(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic("dcv_totals", AGG_SQL)
        db.execute("insert into tx values (200, 1, 5.25), (201, 1, 4.75)")
        processed = manager.apply_increments("dcv_totals")
        assert processed == 2
        row = db.query(
            "select n, total from dcv_totals where acct = 1"
        ).rows[0]
        expect = db.query(
            "select count(*), sum(amt) from tx where acct = 1"
        ).rows[0]
        assert row == expect

    def test_new_group_appears(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic("dcv_totals", AGG_SQL)
        db.execute("insert into tx values (300, 9, 1.00)")
        manager.apply_increments("dcv_totals")
        assert db.query("select n from dcv_totals where acct = 9").scalar() == 1

    def test_query_fresh_is_up_to_date(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic("dcv_totals", AGG_SQL)
        db.execute("insert into tx values (400, 2, 2.00)")
        result = manager.query_fresh(
            "dcv_totals", "select n from dcv_totals where acct = 2"
        )
        assert result.scalar() == 6

    def test_min_max_merge(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic(
            "dcv_minmax",
            "select acct, min(amt) as lo, max(amt) as hi from tx group by acct",
        )
        db.execute("insert into tx values (500, 0, 0.01), (501, 0, 999.99)")
        manager.apply_increments("dcv_minmax")
        lo, hi = db.query("select lo, hi from dcv_minmax where acct = 0").rows[0]
        assert (lo, hi) == (decimal.Decimal("0.01"), decimal.Decimal("999.99"))

    def test_delete_falls_back_to_recompute(self, db):
        manager = CachedViewManager(db)
        info = manager.create_dynamic("dcv_totals", AGG_SQL)
        db.execute("delete from tx where txid = 0")
        manager.apply_increments("dcv_totals")
        assert info.refresh_count == 2  # full refresh happened
        n = db.query("select n from dcv_totals where acct = 0").scalar()
        assert n == db.query("select count(*) from tx where acct = 0").scalar()

    def test_dcv_with_filter(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic(
            "dcv_big",
            "select acct, count(*) as n from tx where amt > 5 group by acct",
        )
        db.execute("insert into tx values (600, 0, 100.00), (601, 0, 1.00)")
        manager.apply_increments("dcv_big")
        n = db.query("select n from dcv_big where acct = 0").scalar()
        assert n == db.query(
            "select count(*) from tx where amt > 5 and acct = 0"
        ).scalar()

    def test_idempotent_when_no_changes(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic("dcv_totals", AGG_SQL)
        assert manager.apply_increments("dcv_totals") == 0

    def test_join_query_rejected(self, db):
        db.execute("create table acct (aid int primary key)")
        manager = CachedViewManager(db)
        with pytest.raises(CatalogError):
            manager.create_dynamic(
                "bad",
                "select acct, count(*) as n from tx join acct on tx.acct = acct.aid "
                "group by acct",
            )

    def test_avg_rejected(self, db):
        manager = CachedViewManager(db)
        with pytest.raises(CatalogError):
            manager.create_dynamic(
                "bad", "select acct, avg(amt) as a from tx group by acct"
            )

    def test_non_aggregate_rejected(self, db):
        manager = CachedViewManager(db)
        with pytest.raises(CatalogError):
            manager.create_dynamic("bad", "select txid, amt from tx")

    def test_apply_increments_on_scv_rejected(self, db):
        manager = CachedViewManager(db)
        manager.create_static("c1", AGG_SQL)
        with pytest.raises(ExecutionError):
            manager.apply_increments("c1")

    def test_repeated_increments_accumulate_correctly(self, db):
        manager = CachedViewManager(db)
        manager.create_dynamic("dcv_totals", AGG_SQL)
        for batch in range(3):
            db.execute(f"insert into tx values ({700 + batch}, 3, 1.00)")
            manager.apply_increments("dcv_totals")
        n = db.query("select n from dcv_totals where acct = 3").scalar()
        assert n == db.query("select count(*) from tx where acct = 3").scalar()

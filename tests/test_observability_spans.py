"""Span tracing: tree shape, storage events, and the zero-cost invariant."""

import pytest

from repro import Database
from repro.observability import (
    Span,
    SpanTracer,
    attach_operator_spans,
    render_span_tree,
)
from repro.observability.spans import MAX_EVENTS_PER_SPAN
from repro.vdm.model import VdmView, ViewLayer, VirtualDataModel


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table sales (s_id int primary key, s_cust int not null, "
        "s_amount decimal(10,2), s_region varchar(10) not null)"
    )
    database.execute(
        "insert into sales values (1,1,10.00,'EMEA'),(2,1,20.00,'EMEA'),"
        "(3,2,30.00,'APJ'),(4,3,40.00,'AMER')"
    )
    return database


@pytest.fixture
def vdm_db(db):
    """A 3-layer VDM stack over the sales table (basic -> composite ->
    consumption), the paper's Fig. 2 shape in miniature."""
    vdm = VirtualDataModel(db)
    vdm.deploy(VdmView(
        "salesbasic", ViewLayer.BASIC,
        "create view salesbasic as select s_id, s_cust, s_amount, s_region "
        "from sales",
        depends_on=("sales",),
    ))
    vdm.deploy(VdmView(
        "salesbyregion", ViewLayer.COMPOSITE,
        "create view salesbyregion as select s_region, s_amount "
        "from salesbasic",
        depends_on=("salesbasic",),
    ))
    vdm.deploy(VdmView(
        "salesbrowser", ViewLayer.CONSUMPTION,
        "create view salesbrowser as select s_region, s_amount "
        "from salesbyregion where s_amount > 5.00",
        depends_on=("salesbyregion",),
    ))
    return db


class TestSpanTreeShape:
    def test_query_lifecycle_children(self, vdm_db):
        vdm_db.tracing = True
        vdm_db.query("select s_region from salesbrowser")
        root = vdm_db.spans.last_root
        assert root is not None and root.name == "query"
        assert [c.name for c in root.children] == [
            "parse", "bind", "optimize", "execute",
        ]
        assert root.attributes["sql"] == "select s_region from salesbrowser"

    def test_optimizer_iterations_and_passes(self, vdm_db):
        vdm_db.tracing = True
        vdm_db.query("select s_region from salesbrowser")
        optimize = vdm_db.spans.last_root.find("optimize")
        iterations = [c for c in optimize.children
                      if c.name == "optimizer.iteration"]
        assert iterations, "expected at least one fixpoint iteration span"
        passes = [c for c in iterations[0].children
                  if c.name.startswith("pass:")]
        assert any(p.name == "pass:filter_pushdown" for p in passes)
        for span in passes:
            assert "changed" in span.attributes

    def test_operator_spans_mirror_plan(self, vdm_db):
        vdm_db.tracing = True
        result = vdm_db.query("select s_region from salesbrowser")
        execute = vdm_db.spans.last_root.find("execute")
        operators = [s for s in execute.walk() if s.name.startswith("op:")]
        assert operators, "expected synthetic operator spans"
        scans = [s for s in operators if s.name.startswith("op:BatchScan")]
        assert scans
        # The top operator's row count matches the query result.
        top = execute.children[0]
        if "rows" in top.attributes:
            assert top.attributes["rows"] == len(result.rows)

    def test_root_covers_measured_wall_time(self, vdm_db):
        vdm_db.tracing = True
        result = vdm_db.query("select s_region, s_amount from salesbrowser")
        root = vdm_db.spans.last_root
        # The root span opens before parsing and closes after execution, so
        # it must cover >= 95% of the measured statement wall time (the
        # acceptance bound; in practice it covers all of it).
        assert root.duration_s >= 0.95 * result.stats.elapsed_s

    def test_trace_carries_span_root(self, vdm_db):
        vdm_db.tracing = True
        vdm_db.query("select count(*) from salesbrowser")
        trace = vdm_db.last_trace
        assert trace.span_root is vdm_db.spans.last_root
        dumped = trace.to_dict(spans=True)
        assert dumped["spans"]["name"] == "query"
        assert "spans" not in trace.to_dict()

    def test_span_ids_link_parent_and_trace(self, vdm_db):
        vdm_db.tracing = True
        vdm_db.query("select s_region from salesbrowser")
        root = vdm_db.spans.last_root
        for span in root.walk():
            assert span.trace_id == root.span_id
            if span is not root:
                assert span.parent_id is not None


class TestStorageEvents:
    def test_wal_append_and_commit_events(self, db):
        db.tracing = True
        db.execute("insert into sales values (5,4,50.00,'EMEA')")
        root = db.spans.last_root
        events = [e.name for s in root.walk() for e in s.events]
        assert "wal.append" in events
        assert "mvcc.commit" in events

    def test_rollback_event(self, db):
        db.tracing = True
        txn = db.begin()
        db.execute("insert into sales values (6,4,60.00,'EMEA')", txn)
        db.rollback(txn)
        # The rollback happens outside any span, so the event is dropped —
        # but the metrics counter still moves and nothing raises.
        assert db.query("select count(*) from sales").rows[0][0] == 4

    def test_event_cap_records_overflow(self):
        span = Span("victim")
        for i in range(MAX_EVENTS_PER_SPAN + 7):
            span.add_event("e", {"i": i})
        assert len(span.events) == MAX_EVENTS_PER_SPAN
        assert span.dropped_events == 7
        assert "7 more event(s)" in render_span_tree(span)


class TestZeroCostDisabled:
    def test_no_span_objects_when_disabled(self, db):
        assert db.tracing is False
        db.query("select count(*) from sales")
        assert db.spans.last_root is None
        assert db.spans.current() is None

    def test_event_noop_when_disabled(self):
        tracer = SpanTracer()
        tracer.event("wal.append", lsn=1)   # must not raise, must not record
        assert tracer.last_root is None

    def test_span_returns_shared_null_context(self):
        tracer = SpanTracer()
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second               # one shared no-op object
        with first as span:
            assert span is None

    def test_disabling_mid_session(self, db):
        db.tracing = True
        db.query("select count(*) from sales")
        captured = db.spans.last_root
        db.tracing = False
        db.query("select count(*) from sales")
        assert db.spans.last_root is captured   # untouched afterwards


class TestTracerMechanics:
    def test_exception_closes_spans_and_tags_error(self, db):
        db.tracing = True
        with pytest.raises(Exception):
            db.query("select nothere from sales")
        root = db.spans.last_root
        assert root is not None
        assert root.attributes.get("error")
        assert all(s.end_s is not None for s in root.walk())

    def test_out_of_order_end_unwinds(self):
        tracer = SpanTracer()
        tracer.enabled = True
        outer = tracer.start("outer")
        tracer.start("inner")               # never explicitly ended
        tracer.end(outer)
        assert tracer.current() is None
        assert tracer.last_root is outer
        assert all(s.end_s is not None for s in outer.walk())

    def test_to_dict_offsets_are_relative(self):
        tracer = SpanTracer()
        tracer.enabled = True
        with tracer.span("root"):
            with tracer.span("child"):
                tracer.event("tick", n=1)
        dumped = tracer.last_root.to_dict()
        assert dumped["start_offset_ms"] == 0.0
        child = dumped["children"][0]
        assert child["start_offset_ms"] >= 0.0
        assert child["events"][0]["offset_ms"] >= 0.0
        assert "started_at_unix" in dumped and "started_at_unix" not in child

    def test_attach_operator_spans_limit(self, db):
        """Every physical operator of a pipelined limit chain gets a span
        with a duration and batch counts."""
        db.tracing = True
        db.query("select s_id from sales limit 2")
        execute = db.spans.last_root.find("execute")
        operators = [s for s in execute.walk() if s.name.startswith("op:")]
        assert operators
        for span in operators:
            assert span.duration_s is not None
            assert "batches" in span.attributes or "skipped" in span.attributes

    def test_render_span_tree_text(self, db):
        db.tracing = True
        db.query("select count(*) from sales")
        text = render_span_tree(db.spans.last_root)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert any(line.lstrip().startswith("parse") for line in lines)
        assert any("ms" in line for line in lines)

"""Executor tests: joins, aggregation, sorting, limits, unions, DML."""

import decimal

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table emp (eid int primary key, name varchar(20), dept int, "
        "salary decimal(10,2), manager int)"
    )
    database.execute("create table dept (did int primary key, dname varchar(20))")
    database.execute("insert into dept values (1, 'eng'), (2, 'sales')")
    database.execute(
        "insert into emp values "
        "(1, 'ann', 1, 100.00, null), (2, 'bob', 1, 80.00, 1), "
        "(3, 'cid', 2, 90.00, 1), (4, 'dee', null, 70.00, 2)"
    )
    return database


class TestScanFilterProject:
    def test_full_scan(self, db):
        assert len(db.query("select * from emp").rows) == 4

    def test_filter(self, db):
        rows = db.query("select name from emp where salary > 85").rows
        assert sorted(r[0] for r in rows) == ["ann", "cid"]

    def test_filter_null_is_dropped(self, db):
        rows = db.query("select name from emp where dept = 1").rows
        assert sorted(r[0] for r in rows) == ["ann", "bob"]  # dee's NULL dept filtered

    def test_projection_expression(self, db):
        rows = db.query("select salary * 2 as s2 from emp where eid = 1").rows
        assert rows[0][0] == decimal.Decimal("200.00")

    def test_empty_result(self, db):
        assert db.query("select * from emp where eid = 999").rows == []


class TestJoins:
    def test_inner_join(self, db):
        rows = db.query(
            "select e.name, d.dname from emp e join dept d on e.dept = d.did"
        ).rows
        assert sorted(rows) == [("ann", "eng"), ("bob", "eng"), ("cid", "sales")]

    def test_left_outer_join_null_extension(self, db):
        rows = db.query(
            "select e.name, d.dname from emp e left join dept d on e.dept = d.did"
        ).rows
        assert ("dee", None) in rows and len(rows) == 4

    def test_null_keys_never_match(self, db):
        db.execute("insert into dept values (3, null)")
        rows = db.query(
            "select e.name from emp e join dept d on e.dept = d.did where e.eid = 4"
        ).rows
        assert rows == []

    def test_self_join(self, db):
        rows = db.query(
            "select e.name, m.name from emp e join emp m on e.manager = m.eid"
        ).rows
        assert sorted(rows) == [("bob", "ann"), ("cid", "ann"), ("dee", "bob")]

    def test_cross_join(self, db):
        assert len(db.query("select 1 as x from emp cross join dept").rows) == 8

    def test_residual_predicate(self, db):
        rows = db.query(
            "select e.name from emp e join emp m on e.manager = m.eid "
            "and e.salary < m.salary"
        ).rows
        assert sorted(r[0] for r in rows) == ["bob", "cid", "dee"]

    def test_left_outer_residual_unmatched(self, db):
        rows = db.query(
            "select e.name, m.name from emp e left join emp m on e.manager = m.eid "
            "and m.salary > 95",
            optimize=False,
        ).rows
        named = dict(rows)
        assert named["bob"] == "ann" and named["dee"] is None

    def test_non_equi_join(self, db):
        rows = db.query(
            "select e.name from emp e join dept d on e.salary > 85 and d.did = 1"
        ).rows
        assert sorted(r[0] for r in rows) == ["ann", "cid"]

    def test_mixed_type_key_match(self, db):
        db.execute("create table keys (k decimal(10,2))")
        db.execute("insert into keys values (1.00)")
        rows = db.query("select e.name from emp e join keys on e.eid = keys.k").rows
        assert rows == [("ann",)]


class TestAggregation:
    def test_global_aggregates(self, db):
        row = db.query(
            "select count(*), sum(salary), min(salary), max(salary), avg(salary) from emp"
        ).rows[0]
        assert row[0] == 4
        assert row[1] == decimal.Decimal("340.00")
        assert row[2] == decimal.Decimal("70.00")
        assert row[3] == decimal.Decimal("100.00")
        assert row[4] == decimal.Decimal("85.00")

    def test_group_by(self, db):
        rows = dict(db.query("select dept, count(*) from emp group by dept").rows)
        assert rows == {1: 2, 2: 1, None: 1}

    def test_count_ignores_nulls(self, db):
        assert db.query("select count(dept) from emp").scalar() == 3

    def test_count_distinct(self, db):
        assert db.query("select count(distinct dept) from emp").scalar() == 2

    def test_sum_empty_is_null_count_zero(self, db):
        row = db.query("select sum(salary), count(*) from emp where eid > 100").rows[0]
        assert row == (None, 0)

    def test_group_empty_input_no_rows(self, db):
        rows = db.query("select dept, count(*) from emp where eid > 100 group by dept").rows
        assert rows == []

    def test_having(self, db):
        rows = db.query(
            "select dept, count(*) as n from emp group by dept having count(*) > 1"
        ).rows
        assert rows == [(1, 2)]

    def test_avg_distinct(self, db):
        db.execute("create table v (x int)")
        db.execute("insert into v values (1), (1), (3)")
        assert db.query("select avg(distinct x) from v").scalar() == 2.0

    def test_sum_distinct(self, db):
        db.execute("create table w (x int)")
        db.execute("insert into w values (2), (2), (3)")
        assert db.query("select sum(distinct x) from w").scalar() == 5


class TestSortLimitDistinctUnion:
    def test_order_by_asc_desc(self, db):
        names = [r[0] for r in db.query("select name from emp order by salary desc").rows]
        assert names == ["ann", "cid", "bob", "dee"]

    def test_nulls_last(self, db):
        depts = [r[0] for r in db.query("select dept from emp order by dept").rows]
        assert depts == [1, 1, 2, None]
        depts = [r[0] for r in db.query("select dept from emp order by dept desc").rows]
        assert depts == [2, 1, 1, None]

    def test_multi_key_sort(self, db):
        rows = db.query("select dept, name from emp order by dept, name desc").rows
        assert rows[0] == (1, "bob") and rows[1] == (1, "ann")

    def test_limit_offset(self, db):
        rows = db.query("select eid from emp order by eid limit 2 offset 1").rows
        assert [r[0] for r in rows] == [2, 3]

    def test_limit_beyond_end(self, db):
        assert len(db.query("select eid from emp limit 99 offset 2").rows) == 2

    def test_distinct(self, db):
        rows = db.query("select distinct dept from emp", optimize=False).rows
        assert sorted((r[0] is None, r[0] or 0) for r in rows) == [(False, 1), (False, 2), (True, 0)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query(
            "select eid from emp union all select eid from emp", optimize=False
        ).rows
        assert len(rows) == 8

    def test_union_with_order_limit(self, db):
        rows = db.query(
            "select eid from emp union all select did from dept order by eid desc limit 3",
            optimize=False,
        ).rows
        assert [r[0] for r in rows] == [4, 3, 2]


class TestDml:
    def test_insert_with_column_subset(self, db):
        db.execute("insert into emp (eid, name) values (10, 'pat')")
        row = db.query("select dept, salary from emp where eid = 10").rows[0]
        assert row == (None, None)

    def test_insert_select(self, db):
        db.execute("create table emp2 (eid int primary key, name varchar(20))")
        n = db.execute("insert into emp2 select eid, name from emp where dept = 1")
        assert n == 2

    def test_update_with_expression(self, db):
        n = db.execute("update emp set salary = salary * 2 where dept = 1")
        assert n == 2
        assert db.query("select salary from emp where eid = 1").scalar() == decimal.Decimal("200.00")

    def test_update_all_rows(self, db):
        assert db.execute("update emp set manager = null") == 4

    def test_delete_where(self, db):
        assert db.execute("delete from emp where salary < 85") == 2
        assert db.query("select count(*) from emp").scalar() == 2

    def test_autocommit_rollback_on_error(self, db):
        from repro.errors import ConstraintError
        with pytest.raises(ConstraintError):
            db.execute("insert into emp values (1, 'dup', 1, 1.00, null)")
        assert db.query("select count(*) from emp").scalar() == 4

    def test_explicit_transaction_visibility(self, db):
        txn = db.begin()
        db.execute("insert into emp values (50, 'x', 1, 1.00, null)", txn=txn)
        assert db.query("select count(*) from emp").scalar() == 4  # not committed
        assert db.query("select count(*) from emp", txn=txn).scalar() == 5
        db.commit(txn)
        assert db.query("select count(*) from emp").scalar() == 5

    def test_explicit_rollback(self, db):
        txn = db.begin()
        db.execute("delete from emp", txn=txn)
        db.rollback(txn)
        assert db.query("select count(*) from emp").scalar() == 4


class TestResultApi:
    def test_scalar_requires_1x1(self, db):
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            db.query("select eid from emp").scalar()

    def test_column_accessor(self, db):
        result = db.query("select eid, name from emp order by eid")
        assert result.column("name")[0] == "ann"

    def test_to_dicts(self, db):
        result = db.query("select eid, name from emp where eid = 1")
        assert result.to_dicts() == [{"eid": 1, "name": "ann"}]

    def test_iteration_and_len(self, db):
        result = db.query("select eid from emp")
        assert len(result) == 4 and len(list(result)) == 4

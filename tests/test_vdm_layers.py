"""VDM layering, draft pattern, DAC, and custom-fields extension tests."""

import pytest

from repro import Database
from repro.datatypes import varchar
from repro.errors import BindError, CatalogError
from repro.vdm import (
    AccessControl,
    CustomFieldsExtension,
    DacPolicy,
    DraftPattern,
    VdmView,
    ViewLayer,
    VirtualDataModel,
)
from repro.algebra.ops import Join, Scan


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table sorder (sokey int primary key, cust varchar(10), "
        "amount decimal(10,2))"
    )
    database.bulk_load("sorder", [(i, f"c{i % 3}", f"{i}.00") for i in range(10)])
    return database


class TestLayers:
    def test_deploy_and_query(self, db):
        vdm = VirtualDataModel(db)
        vdm.deploy(VdmView("b_order", ViewLayer.BASIC,
                           "create view b_order as select * from sorder", ("sorder",)))
        assert len(db.query("select * from b_order").rows) == 10

    def test_layer_rules_enforced(self, db):
        vdm = VirtualDataModel(db)
        vdm.deploy(VdmView("b1", ViewLayer.BASIC,
                           "create view b1 as select * from sorder", ("sorder",)))
        vdm.deploy(VdmView("c1", ViewLayer.CONSUMPTION,
                           "create view c1 as select * from b1", ("b1",)))
        with pytest.raises(CatalogError):
            vdm.deploy(VdmView("b2", ViewLayer.BASIC,
                               "create view b2 as select * from c1", ("c1",)))
        with pytest.raises(CatalogError):
            vdm.deploy(VdmView("m1", ViewLayer.COMPOSITE,
                               "create view m1 as select * from c1", ("c1",)))

    def test_unknown_dependency_rejected(self, db):
        vdm = VirtualDataModel(db)
        with pytest.raises(CatalogError):
            vdm.deploy(VdmView("x", ViewLayer.BASIC,
                               "create view x as select * from sorder", ("ghost",)))

    def test_nesting_depth(self, db):
        vdm = VirtualDataModel(db)
        vdm.deploy(VdmView("l1", ViewLayer.BASIC,
                           "create view l1 as select * from sorder", ("sorder",)))
        vdm.deploy(VdmView("l2", ViewLayer.BASIC,
                           "create view l2 as select * from l1", ("l1",)))
        vdm.deploy(VdmView("l3", ViewLayer.COMPOSITE,
                           "create view l3 as select * from l2", ("l2",)))
        assert vdm.nesting_depth("l3") == 3
        assert vdm.nesting_depth("sorder") == 0

    def test_statistics(self, db):
        vdm = VirtualDataModel(db)
        vdm.deploy(VdmView("s1", ViewLayer.BASIC,
                           "create view s1 as select * from sorder", ("sorder",)))
        stats = vdm.statistics()
        assert stats["basic"] == 1 and stats["total"] == 1
        assert stats["max_nesting_depth"] == 1

    def test_view_lookup(self, db):
        vdm = VirtualDataModel(db)
        vdm.deploy(VdmView("s1", ViewLayer.BASIC,
                           "create view s1 as select * from sorder", ("sorder",)))
        assert vdm.view("S1").layer is ViewLayer.BASIC
        with pytest.raises(CatalogError):
            vdm.view("nope")
        assert len(vdm.views(ViewLayer.BASIC)) == 1


class TestDraftPattern:
    def test_create_builds_twin_and_union_view(self, db):
        draft = DraftPattern.create(db, "sorder")
        assert db.catalog.has_table("sorder_draft")
        assert db.catalog.has_view("sorder_with_draft")
        rows = db.query("select * from sorder_with_draft").rows
        assert len(rows) == 10  # draft empty so far

    def test_save_and_activate_draft(self, db):
        draft = DraftPattern.create(db, "sorder")
        draft.save_draft({"sokey": 100, "cust": "cX", "amount": "5.00"}, "sess1")
        rows = db.query("select bid_, sokey from sorder_with_draft where sokey = 100").rows
        assert rows == [(2, 100)]
        moved = draft.activate({"sokey": 100})
        assert moved == 1
        rows = db.query("select bid_ from sorder_with_draft where sokey = 100").rows
        assert rows == [(1,)]

    def test_union_view_enables_uaj(self, db):
        DraftPattern.create(db, "sorder")
        db.execute("create table fact (fk int primary key, so int not null)")
        db.bulk_load("fact", [(i, i) for i in range(5)])
        sql = (
            "select f.fk from fact f left join sorder_with_draft u "
            "on f.so = u.sokey and u.bid_ = 1"
        )
        plan = db.plan_for(sql)
        assert not [n for n in plan.walk() if isinstance(n, Join)]


class TestDac:
    def test_policy_rendering(self):
        policy = DacPolicy("p", "grp = :g or grp is null")
        assert policy.render({"g": "G1"}) == "grp = 'G1' or grp is null"

    def test_missing_attribute_rejected(self):
        with pytest.raises(BindError):
            DacPolicy("p", "grp = :g").render({})

    def test_literal_escaping(self):
        policy = DacPolicy("p", "grp = :g")
        assert policy.render({"g": "O'Neil"}) == "grp = 'O''Neil'"

    def test_injection_filters_rows(self, db):
        control = AccessControl(db)
        control.register("sorder", DacPolicy("cust-only", "cust = :me"))
        result = control.query("sorder", {"me": "c1"})
        assert all(r[1] == "c1" for r in result.rows)
        assert len(result.rows) == 3

    def test_multiple_policies_conjunctive(self, db):
        control = AccessControl(db)
        control.register("sorder", DacPolicy("a", "cust = :me"))
        control.register("sorder", DacPolicy("b", "amount > :minimum"))
        result = control.query("sorder", {"me": "c1", "minimum": 3})
        assert len(result.rows) == 2  # sokey 4 and 7

    def test_no_policy_means_open(self, db):
        control = AccessControl(db)
        assert len(control.query("sorder", {}).rows) == 10

    def test_deploy_protected_view(self, db):
        control = AccessControl(db)
        control.register("sorder", DacPolicy("cust-only", "cust = :me"))
        control.deploy_protected_view("sorder_c2", "sorder", {"me": "c2"})
        assert len(db.query("select * from sorder_c2").rows) == 3


class TestCustomFieldsExtension:
    def test_add_custom_field_and_extend_view(self, db):
        extension = CustomFieldsExtension(db)
        extension.add_custom_field("sorder", "zz_region", varchar(10))
        db.execute("update sorder set zz_region = 'EMEA' where sokey < 5")
        # the SAP-managed stable view does NOT expose zz_region
        db.execute("create view stable_v as select sokey, cust from sorder")
        extension.extend_view(
            "stable_v_ext", "stable_v", "sorder", [("sokey", "sokey")], ["zz_region"]
        )
        rows = dict(
            (r[0], r[2]) for r in db.query("select * from stable_v_ext").rows
        )
        assert rows[1] == "EMEA" and rows[7] is None

    def test_extension_self_join_optimized_out(self, db):
        extension = CustomFieldsExtension(db)
        extension.add_custom_field("sorder", "zz_x", varchar(5))
        db.execute("create view stable_v as select sokey, cust from sorder")
        extension.extend_view(
            "stable_v_ext", "stable_v", "sorder", [("sokey", "sokey")], ["zz_x"]
        )
        plan = db.plan_for("select * from stable_v_ext")
        scans = [n for n in plan.walk() if isinstance(n, Scan)]
        assert len(scans) == 1  # ASJ removed: single scan of sorder

    def test_extension_with_case_join(self, db):
        extension = CustomFieldsExtension(db)
        extension.add_custom_field("sorder", "zz_y", varchar(5))
        db.execute("create view stable_v as select sokey, cust from sorder")
        sql = extension.extend_view(
            "stable_v_ext", "stable_v", "sorder", [("sokey", "sokey")], ["zz_y"],
            use_case_join=True,
        )
        assert "case join" in sql
        plan = db.plan_for("select * from stable_v_ext")
        assert len([n for n in plan.walk() if isinstance(n, Scan)]) == 1

    def test_extension_correctness(self, db):
        extension = CustomFieldsExtension(db)
        extension.add_custom_field("sorder", "zz_z", varchar(5), default="D")
        db.execute("create view stable_v as select sokey, cust from sorder")
        extension.extend_view(
            "stable_v_ext", "stable_v", "sorder", [("sokey", "sokey")], ["zz_z"]
        )
        a = db.query("select * from stable_v_ext")
        b = db.query("select * from stable_v_ext", optimize=False)
        assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))

    def test_draft_extension_round_trip(self, db):
        extension = CustomFieldsExtension(db)
        draft = DraftPattern.create(db, "sorder")
        extension.add_custom_field("sorder", "zz_d", varchar(5))
        extension.add_custom_field("sorder_draft", "zz_d", varchar(5))
        extension.extend_draft_view(
            "wd_ext", "sorder_with_draft", draft,
            [("sokey", "sokey")], ["zz_d"], use_case_join=True,
        )
        a = db.query("select * from wd_ext")
        b = db.query("select * from wd_ext", optimize=False)
        assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))
        plan = db.plan_for("select * from wd_ext")
        # the extension self-join over the union must be gone
        assert len([n for n in plan.walk() if isinstance(n, Join)]) == 0

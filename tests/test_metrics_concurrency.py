"""Atomic metrics snapshots under concurrent load (satellite 3).

:meth:`MetricsRegistry.snapshot` copies every metric under a single
registry-lock hold, and :meth:`Histogram.summary` copies its fields under
one metric-lock hold — so a scraper running while queries execute can
never observe a torn snapshot (e.g. a histogram whose ``count`` and
``sum`` disagree, or a p95 below its p50).
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.database import Database
from repro.observability import MetricsRegistry, MetricsServer


def test_histogram_summary_is_internally_consistent_under_writes():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    stop = threading.Event()

    def writer():
        value = 0
        while not stop.is_set():
            histogram.observe(value % 100)
            value += 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            summary = histogram.summary()
            if summary["count"] == 0:
                continue
            assert summary["min"] <= summary["mean"] <= summary["max"]
            assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["max"]
            # sum/count/mean were copied under one lock hold: they agree
            assert summary["mean"] == pytest.approx(
                summary["sum"] / summary["count"]
            )
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_registry_snapshot_is_one_lock_held_copy():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    registry.histogram("h").observe(1.0)
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            counter.inc()
            registry.histogram("h").observe(2.0)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        previous = 0
        for _ in range(200):
            snapshot = registry.snapshot()
            assert set(snapshot) >= {"c", "h"}
            value = snapshot["c"]
            assert value >= previous     # counters are monotonic
            previous = value
            assert isinstance(snapshot["h"], dict)
            assert snapshot["h"]["count"] >= 1
    finally:
        stop.set()
        thread.join()


def test_new_metrics_registered_mid_snapshot_loop():
    registry = MetricsRegistry()
    stop = threading.Event()

    def registrar():
        index = 0
        while not stop.is_set():
            registry.counter(f"dynamic.{index % 50}").inc()
            index += 1

    thread = threading.Thread(target=registrar)
    thread.start()
    try:
        for _ in range(200):
            snapshot = registry.snapshot()
            assert all(value >= 0 for value in snapshot.values()
                       if isinstance(value, (int, float)))
    finally:
        stop.set()
        thread.join()


# -- concurrent QueryLog / plan-feedback appends vs. sys.* scans ------------


def test_query_log_and_plan_feedback_never_tear_under_threads():
    """Threaded queries appending to the query-log rings while another
    thread scans ``sys.query_log`` / ``sys.plan_feedback`` (both via SQL
    and via the direct snapshot methods) must never raise and never show
    a torn per-query feedback group: each completed query's rows form a
    contiguous 0..n-1 ``op_index`` run, because the whole group is
    appended under one lock hold."""
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30), (4, 40)")
    # Big rings and bounded writers: eviction mid-test would legitimately
    # drop the oldest group's prefix, which is not a tear.
    db.query_log.configure(capacity=100_000, operator_capacity=500_000,
                           feedback_capacity=500_000)
    stop = threading.Event()
    failures: list[str] = []

    def writer(offset: int):
        for index in range(200):
            if stop.is_set():
                return
            try:
                db.query(f"select v from t where v > {(index + offset) % 40} "
                         "order by v")
            except Exception as error:  # pragma: no cover - fail the test
                failures.append(f"writer: {error!r}")
                return

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(25):
            # Direct snapshots: must not raise "deque mutated during
            # iteration" and must keep feedback groups whole.
            entries = db.query_log.entries()
            assert len({e.query_id for e in entries}) == len(entries)
            groups: dict[str, list[int]] = {}
            for row in db.query_log.feedback_rows():
                groups.setdefault(row.query_id, []).append(row.op_index)
            for query_id, indexes in groups.items():
                assert sorted(indexes) == list(range(len(indexes))), (
                    f"torn feedback group for {query_id}: {indexes}"
                )
            # And through SQL, streaming the same rings.
            result = db.query(
                "select query_id, op_index from sys.plan_feedback"
            )
            sql_groups: dict[str, list[int]] = {}
            for query_id, op_index in result.rows:
                sql_groups.setdefault(query_id, []).append(op_index)
            for query_id, indexes in sql_groups.items():
                assert sorted(indexes) == list(range(len(indexes)))
            db.query("select count(*) from sys.query_log")
    finally:
        stop.set()
        for thread in threads:
            thread.join()
        db.close()
    assert failures == []


def test_shape_baselines_sync_while_queries_run():
    """sys.query_shapes folds the log in lazily; concurrent sync() calls
    while queries complete must not lose samples or raise."""
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20)")
    db.query_log.configure(capacity=100_000)
    stop = threading.Event()
    failures: list[str] = []

    def writer():
        for _ in range(400):
            if stop.is_set():
                return
            try:
                db.query("select v from t where v > 5")
            except Exception as error:  # pragma: no cover - fail the test
                failures.append(repr(error))
                return

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        previous = 0
        for _ in range(25):
            rows = db.query(
                "select shape, count from sys.query_shapes"
            ).rows
            total = sum(count for _shape, count in rows)
            assert total >= previous  # samples only accumulate
            previous = total
    finally:
        stop.set()
        thread.join()
        db.close()
    assert failures == []


# -- scraping the HTTP endpoint while queries run ---------------------------


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.status == 200
        return response.read()


def test_scrape_metrics_server_while_queries_run():
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    db.query("select count(*) from t")
    server = MetricsServer(db, port=0)
    server.start()
    stop = threading.Event()
    failures: list[str] = []

    def run_queries():
        index = 0
        while not stop.is_set():
            try:
                db.query(f"select count(*) from t where v > {index % 30}")
            except Exception as error:   # pragma: no cover - fail the test
                failures.append(f"query: {error!r}")
                return
            index += 1

    query_thread = threading.Thread(target=run_queries)
    query_thread.start()
    try:
        for _ in range(50):
            body = _get(f"{server.url}/metrics")
            assert b"repro_queries_executed_total" in body
            data = json.loads(_get(f"{server.url}/metrics.json"))
            executed = data["queries.executed"]
            assert executed >= 1   # the synchronous warm-up query at minimum
            latency = data.get("queries.latency_s")
            if isinstance(latency, dict) and latency["count"]:
                assert latency["min"] <= latency["p50"] <= latency["p95"]
    finally:
        stop.set()
        query_thread.join()
        server.close()
        db.close()
    assert failures == []

"""Atomic metrics snapshots under concurrent load (satellite 3).

:meth:`MetricsRegistry.snapshot` copies every metric under a single
registry-lock hold, and :meth:`Histogram.summary` copies its fields under
one metric-lock hold — so a scraper running while queries execute can
never observe a torn snapshot (e.g. a histogram whose ``count`` and
``sum`` disagree, or a p95 below its p50).
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.database import Database
from repro.observability import MetricsRegistry, MetricsServer


def test_histogram_summary_is_internally_consistent_under_writes():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    stop = threading.Event()

    def writer():
        value = 0
        while not stop.is_set():
            histogram.observe(value % 100)
            value += 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            summary = histogram.summary()
            if summary["count"] == 0:
                continue
            assert summary["min"] <= summary["mean"] <= summary["max"]
            assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["max"]
            # sum/count/mean were copied under one lock hold: they agree
            assert summary["mean"] == pytest.approx(
                summary["sum"] / summary["count"]
            )
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_registry_snapshot_is_one_lock_held_copy():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    registry.histogram("h").observe(1.0)
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            counter.inc()
            registry.histogram("h").observe(2.0)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        previous = 0
        for _ in range(200):
            snapshot = registry.snapshot()
            assert set(snapshot) >= {"c", "h"}
            value = snapshot["c"]
            assert value >= previous     # counters are monotonic
            previous = value
            assert isinstance(snapshot["h"], dict)
            assert snapshot["h"]["count"] >= 1
    finally:
        stop.set()
        thread.join()


def test_new_metrics_registered_mid_snapshot_loop():
    registry = MetricsRegistry()
    stop = threading.Event()

    def registrar():
        index = 0
        while not stop.is_set():
            registry.counter(f"dynamic.{index % 50}").inc()
            index += 1

    thread = threading.Thread(target=registrar)
    thread.start()
    try:
        for _ in range(200):
            snapshot = registry.snapshot()
            assert all(value >= 0 for value in snapshot.values()
                       if isinstance(value, (int, float)))
    finally:
        stop.set()
        thread.join()


# -- scraping the HTTP endpoint while queries run ---------------------------


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.status == 200
        return response.read()


def test_scrape_metrics_server_while_queries_run():
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    db.query("select count(*) from t")
    server = MetricsServer(db, port=0)
    server.start()
    stop = threading.Event()
    failures: list[str] = []

    def run_queries():
        index = 0
        while not stop.is_set():
            try:
                db.query(f"select count(*) from t where v > {index % 30}")
            except Exception as error:   # pragma: no cover - fail the test
                failures.append(f"query: {error!r}")
                return
            index += 1

    query_thread = threading.Thread(target=run_queries)
    query_thread.start()
    try:
        for _ in range(50):
            body = _get(f"{server.url}/metrics")
            assert b"repro_queries_executed_total" in body
            data = json.loads(_get(f"{server.url}/metrics.json"))
            executed = data["queries.executed"]
            assert executed >= 1   # the synchronous warm-up query at minimum
            latency = data.get("queries.latency_s")
            if isinstance(latency, dict) and latency["count"]:
                assert latency["min"] <= latency["p50"] <= latency["p95"]
    finally:
        stop.set()
        query_thread.join()
        server.close()
        db.close()
    assert failures == []

"""Property-derivation tests: unique keys, constants, provenance.

These are the derivations behind the paper's AJ classification (§4.2):
AJ 2a-1 (PK), AJ 2a-2 (group key), AJ 2a-3 (constant-restricted composite
key), plus the Union All extensions of §6.2.
"""

import pytest

from repro import Database
from repro.algebra.ops import Join, Scan, UnionAll
from repro.algebra.properties import (
    CAP_UNIQUE_FROM_GROUPBY,
    CAP_UNIQUE_FROM_PK,
    CAP_UNIQUE_THROUGH_JOIN_TABLE,
    CAP_UNIQUE_THROUGH_ORDER_LIMIT,
    CAP_UNIQUE_THROUGH_UNION_BRANCHID,
    CAP_UNIQUE_THROUGH_UNION_DISJOINT,
    CAP_UNIQUE_VIA_CONST_FILTER,
    DerivationContext,
    equi_join_cids,
    residual_conjuncts,
)
from repro.optimizer.profiles import get_profile

ALL = get_profile("hana").caps


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table t (key int primary key, a int not null, b int, c varchar(5))"
    )
    database.execute(
        "create table pair (x int not null, y int not null, v int, primary key (x, y))"
    )
    database.execute("create table other (okey int primary key, t_key int not null)")
    return database


def keys_of(db, sql, caps=ALL):
    plan = db.bind(sql)
    ctx = DerivationContext(frozenset(caps))
    name_of = {c.cid: c.name for c in plan.output}
    return {frozenset(name_of.get(cid, cid) for cid in key)
            for key in ctx.unique_keys(plan)
            if all(cid in name_of for cid in key)}


class TestScanAndFilterKeys:
    def test_primary_key_derived(self, db):
        assert frozenset({"key"}) in keys_of(db, "select * from t")

    def test_no_cap_no_keys(self, db):
        assert keys_of(db, "select * from t", caps=set()) == set()

    def test_composite_key(self, db):
        assert frozenset({"x", "y"}) in keys_of(db, "select * from pair")

    def test_projection_drops_broken_keys(self, db):
        assert keys_of(db, "select x, v from pair") == set()

    def test_projection_keeps_covered_keys(self, db):
        assert frozenset({"x", "y"}) in keys_of(db, "select x, y from pair")

    def test_const_filter_reduces_composite_key(self, db):
        # AJ 2a-3: (x, y) unique and y = 1 -> x unique
        keys = keys_of(db, "select * from pair where y = 1")
        assert frozenset({"x"}) in keys

    def test_const_filter_gated_by_cap(self, db):
        caps = ALL - {CAP_UNIQUE_VIA_CONST_FILTER}
        keys = keys_of(db, "select * from pair where y = 1", caps)
        assert frozenset({"x"}) not in keys

    def test_filter_on_non_key_col_keeps_keys(self, db):
        assert frozenset({"key"}) in keys_of(db, "select * from t where b > 5")

    def test_renamed_passthrough_keeps_key(self, db):
        assert frozenset({"k2"}) in keys_of(db, "select key as k2, a from t")


class TestDerivedRelationKeys:
    def test_group_by_key(self, db):
        keys = keys_of(db, "select b, count(*) as n from t group by b")
        assert frozenset({"b"}) in keys

    def test_group_by_gated(self, db):
        caps = ALL - {CAP_UNIQUE_FROM_GROUPBY}
        assert keys_of(db, "select b, count(*) as n from t group by b", caps) == set()

    def test_distinct_key(self, db):
        assert frozenset({"b"}) in keys_of(db, "select distinct b from t")

    def test_order_limit_preserves_key(self, db):
        keys = keys_of(db, "select key, a from t order by a limit 5")
        assert frozenset({"key"}) in keys

    def test_order_limit_gated(self, db):
        caps = ALL - {CAP_UNIQUE_THROUGH_ORDER_LIMIT}
        keys = keys_of(db, "select key, a from t order by a limit 5", caps)
        assert frozenset({"key"}) not in keys

    def test_key_through_join_when_other_side_unique(self, db):
        keys = keys_of(
            db,
            "select o.okey, t.key from other o join t on o.t_key = t.key",
        )
        assert frozenset({"okey"}) in keys

    def test_key_not_preserved_when_other_side_not_unique(self, db):
        keys = keys_of(
            db,
            "select o.okey, t.b from other o join t on o.t_key = t.b",
        )
        assert frozenset({"okey"}) not in keys
        # but the composite pair key still identifies the output row
        assert frozenset({"okey", "t", "key"}) not in keys  # sanity: no phantom

    def test_join_key_gated_by_table_cap(self, db):
        caps = ALL - {CAP_UNIQUE_THROUGH_JOIN_TABLE}
        keys = keys_of(
            db, "select o.okey, t.key from other o join t on o.t_key = t.key", caps
        )
        assert frozenset({"okey"}) not in keys

    def test_declared_cardinality_substitutes_uniqueness(self, db):
        db.execute("create table nodecl (z int, w int)")  # no constraints at all
        keys = keys_of(
            db,
            "select o.okey from other o left outer many to one join nodecl n "
            "on o.t_key = n.z",
        )
        assert frozenset({"okey"}) in keys


class TestUnionKeys:
    def test_disjoint_union_preserves_key(self, db):
        keys = keys_of(
            db,
            "select key, b from t where b < 10 "
            "union all select key, b from t where b >= 10",
        )
        assert frozenset({"key"}) in keys

    def test_overlapping_union_no_key(self, db):
        keys = keys_of(
            db,
            "select key, b from t where b < 10 "
            "union all select key, b from t where b >= 5",
        )
        assert frozenset({"key"}) not in keys

    def test_union_without_filters_no_key(self, db):
        keys = keys_of(db, "select key from t union all select key from t")
        assert frozenset({"key"}) not in keys

    def test_disjoint_equality_constants(self, db):
        keys = keys_of(
            db,
            "select key, c from t where c = 'A' union all select key, c from t where c = 'B'",
        )
        assert frozenset({"key"}) in keys

    def test_disjoint_gated(self, db):
        caps = ALL - {CAP_UNIQUE_THROUGH_UNION_DISJOINT}
        keys = keys_of(
            db,
            "select key, b from t where b < 10 union all select key, b from t where b >= 10",
            caps,
        )
        assert frozenset({"key"}) not in keys

    def test_branchid_union_key(self, db):
        db.execute("create table t2 (key int primary key, a int)")
        keys = keys_of(
            db,
            "select 1 as bid, key from t union all select 2 as bid, key from t2",
        )
        assert frozenset({"bid", "key"}) in keys

    def test_branchid_same_constant_no_key(self, db):
        db.execute("create table t3 (key int primary key, a int)")
        keys = keys_of(
            db,
            "select 1 as bid, key from t union all select 1 as bid, key from t3",
        )
        assert frozenset({"bid", "key"}) not in keys

    def test_branchid_gated(self, db):
        db.execute("create table t4 (key int primary key, a int)")
        caps = ALL - {CAP_UNIQUE_THROUGH_UNION_BRANCHID}
        keys = keys_of(
            db,
            "select 1 as bid, key from t union all select 2 as bid, key from t4",
            caps,
        )
        assert frozenset({"bid", "key"}) not in keys


class TestConstantsAndProvenance:
    def test_filter_constant_derived(self, db):
        plan = db.bind("select * from t where b = 7 and a > 1")
        ctx = DerivationContext(ALL)
        consts = ctx.constants(plan)
        name_of = {c.cid: c.name for c in plan.output}
        assert {name_of[cid]: v for cid, v in consts.items()} == {"b": 7}

    def test_project_constant(self, db):
        plan = db.bind("select 5 as five, key from t")
        ctx = DerivationContext(ALL)
        assert 5 in ctx.constants(plan).values()

    def test_outer_join_drops_right_constants(self, db):
        plan = db.bind(
            "select * from other o left join (select key, b from t where b = 3) s "
            "on o.t_key = s.key"
        )
        ctx = DerivationContext(ALL)
        join = [n for n in plan.walk() if isinstance(n, Join)][0]
        consts = ctx.constants(join)
        right_cids = join.right.output_cids
        assert not any(cid in right_cids for cid in consts)

    def test_provenance_through_join_and_project(self, db):
        plan = db.bind(
            "select o.okey, t.key as tk from other o join t on o.t_key = t.key"
        )
        ctx = DerivationContext(ALL)
        prov = ctx.provenance(plan)
        by_name = {}
        for col in plan.output:
            p = prov.get(col.cid)
            if p:
                by_name[col.name] = (p.scan.schema.name, p.column, p.outer_nulled)
        assert by_name["okey"] == ("other", "okey", False)
        assert by_name["tk"] == ("t", "key", False)

    def test_provenance_outer_nulled_flag(self, db):
        plan = db.bind(
            "select t.b from other o left join t on o.t_key = t.key"
        )
        ctx = DerivationContext(ALL)
        p = ctx.provenance(plan)[plan.output[0].cid]
        assert p.outer_nulled

    def test_provenance_blocked_by_aggregate(self, db):
        plan = db.bind("select b, count(*) as n from t group by b")
        ctx = DerivationContext(ALL)
        assert ctx.provenance(plan) == {}

    def test_computed_column_has_no_provenance(self, db):
        plan = db.bind("select key + 1 as k1 from t")
        ctx = DerivationContext(ALL)
        assert plan.output[0].cid not in ctx.provenance(plan)


class TestJoinHelpers:
    def test_equi_join_cids_extraction(self, db):
        plan = db.bind(
            "select 1 as one_ from other o join t on o.t_key = t.key and o.okey > t.b"
        )
        join = [n for n in plan.walk() if isinstance(n, Join)][0]
        left, right = equi_join_cids(join)
        assert len(left) == 1 and len(right) == 1
        assert len(residual_conjuncts(join)) == 1

    def test_swapped_sides_normalized(self, db):
        plan = db.bind("select 1 as x from other o join t on t.key = o.t_key")
        join = [n for n in plan.walk() if isinstance(n, Join)][0]
        left, right = equi_join_cids(join)
        assert left[0] in join.left.output_cids
        assert right[0] in join.right.output_cids

"""The HTTP JSON gateway: protocol, error mapping, overload, shutdown.

The acceptance scenario lives here: under 4x ``max_concurrent`` closed-
loop load the gateway sheds with *structured* 429 responses (body carries
``type`` and ``retry_after``, the header carries ``Retry-After``) — zero
unhandled exceptions, zero hung threads — and graceful shutdown drains
in-flight statements and leaves a recoverable WAL.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.database import Database
from repro.serving import GatewayServer


def _post(url: str, path: str, payload: dict) -> tuple[int, dict, dict]:
    """POST JSON; returns (status, body, headers) without raising."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, json.loads(response.read()),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url: str, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture()
def gateway():
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    server = GatewayServer(db, port=0, max_concurrent=2, max_queue=4).start()
    yield server
    server.close(drain_timeout=10)
    db.close()


# -- the JSON protocol -------------------------------------------------------


def test_query_roundtrip(gateway):
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "select v from t order by v"})
    assert status == 200
    assert body["ok"] is True
    assert body["columns"] == ["v"]
    assert body["rows"] == [[10], [20], [30]]
    assert body["row_count"] == 3
    assert body["query_id"].startswith("q")
    assert body["elapsed_ms"] >= 0


def test_dml_and_ddl_responses(gateway):
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "create table x (id int primary key)"})
    assert (status, body) == (200, {"ok": True})
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "insert into x values (1), (2)"})
    assert status == 200
    assert body["rows_affected"] == 2


def test_sticky_session_transaction(gateway):
    _, body, _ = _post(gateway.url, "/v1/session", {"tenant": "acme"})
    sid = body["session"]
    assert body["tenant"] == "acme"
    for sql in ("begin", "insert into t values (9, 90)", "commit"):
        status, body, _ = _post(gateway.url, "/v1/query",
                                {"sql": sql, "session": sid})
        assert status == 200, body
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "select count(*) from t"})
    assert body["rows"] == [[4]]
    status, body, _ = _post(gateway.url, "/v1/session/close", {"session": sid})
    assert status == 200


def test_transaction_requires_sticky_session(gateway):
    status, body, _ = _post(gateway.url, "/v1/query", {"sql": "begin"})
    assert status == 400
    assert "sticky session" in body["error"]


def test_error_mapping(gateway):
    # 400: syntax error
    status, body, _ = _post(gateway.url, "/v1/query", {"sql": "selec t"})
    assert status == 400 and body["ok"] is False
    assert body["type"] == "SqlSyntaxError"
    # 400: missing sql
    status, body, _ = _post(gateway.url, "/v1/query", {})
    assert status == 400
    # 404: unknown endpoint
    status, body, _ = _post(gateway.url, "/v1/nope", {})
    assert status == 404
    # 408: expired budget (queue wait included; a negative budget has
    # always already expired at admission)
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "select v from t", "timeout": -0.001})
    assert status == 408
    assert body["type"] == "QueryTimeoutError"


def test_non_numeric_timeout_is_a_400(gateway):
    for bad in ("abc", [1], {"s": 1}):
        status, body, _ = _post(gateway.url, "/v1/query",
                                {"sql": "select v from t", "timeout": bad})
        assert status == 400, f"timeout={bad!r} must be a client error"
        assert body["ok"] is False
        assert "timeout" in body["error"]


def test_tenant_isolation_maps_to_403(gateway):
    _post(gateway.url, "/v1/query",
          {"sql": "create table acme_t (id int primary key)",
           "tenant": "acme"})
    status, body, _ = _post(gateway.url, "/v1/query",
                            {"sql": "select * from acme_t",
                             "tenant": "globex"})
    assert status == 403
    assert body["type"] == "TenantAccessError"


def test_healthz_and_stats(gateway):
    status, payload = _get(gateway.url, "/healthz")
    assert status == 200 and payload.startswith(b"ok")
    status, payload = _get(gateway.url, "/stats")
    stats = json.loads(payload)
    assert stats["admission"]["max_concurrent"] == 2
    assert "sessions_open" in stats


def test_sys_admission_visible_over_http(gateway):
    status, body, _ = _post(
        gateway.url, "/v1/query",
        {"sql": "select tenant, max_concurrent from sys.admission "
                "where tenant = '*'"},
    )
    assert status == 200
    assert body["rows"] == [["*", 2]]


# -- the overload acceptance scenario ----------------------------------------


def test_overload_sheds_structured_429s():
    """4x max_concurrent closed-loop load: every response is either a
    result or a structured 429/503/408 — nothing hangs, nothing 500s."""
    db = Database()
    db.execute("create table big (id int primary key, v int)")
    # every v identical: the self-join fans out to 160k rows, so each
    # statement holds its slot long enough for real queue pressure
    db.execute("insert into big values " + ", ".join(
        f"({i}, 1)" for i in range(400)
    ))
    server = GatewayServer(db, port=0, max_concurrent=2, max_queue=1).start()
    slow_sql = "select count(*) from big a join big b on a.v = b.v"
    clients = 4 * 2
    outcomes: list[tuple[int, dict, dict]] = []
    lock = threading.Lock()

    def client():
        for _ in range(3):
            result = _post(server.url, "/v1/query", {"sql": slow_sql})
            with lock:
                outcomes.append(result)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "hung client threads"

    statuses = [status for status, _, _ in outcomes]
    assert len(outcomes) == clients * 3
    assert set(statuses) <= {200, 429}, f"unexpected statuses: {statuses}"
    shed = [(body, headers) for status, body, headers in outcomes
            if status == 429]
    assert shed, "4x load over a 1-deep queue must shed"
    for body, headers in shed:
        assert body["ok"] is False
        assert body["type"] == "OverloadError"
        assert body["retry_after"] > 0
        assert float(headers["Retry-After"]) > 0
    assert any(status == 200 for status in statuses), \
        "admitted queries still complete under overload"
    snapshot = db.metrics.snapshot()
    assert snapshot["serving.shed"] == len(shed)
    assert server.close(drain_timeout=10) is True
    db.close()


def test_graceful_shutdown_drains_and_wal_recovers(tmp_path):
    db = Database(wal_dir=str(tmp_path), fsync="never")
    db.execute("create table t (id int primary key)")
    server = GatewayServer(db, port=0, max_concurrent=2).start()
    for i in range(3):
        status, body, _ = _post(server.url, "/v1/query",
                                {"sql": f"insert into t values ({i})"})
        assert status == 200
    assert server.close(drain_timeout=10) is True
    db.close()
    recovered = Database.recover(str(tmp_path))
    assert recovered.query("select count(*) from t").rows == [(3,)]
    recovered.close()


def test_requests_after_drain_are_shed_not_errors(tmp_path):
    db = Database()
    db.execute("create table t (id int primary key)")
    server = GatewayServer(db, port=0).start()
    url = server.url
    assert server.serving.shutdown(drain_timeout=5) is True
    status, body, _ = _post(url, "/v1/query", {"sql": "select id from t"})
    assert status == 429
    assert body["type"] == "OverloadError"
    server.close(drain_timeout=5)
    db.close()

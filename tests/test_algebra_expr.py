"""Expression-IR utility tests: traversal, rewriting, conjunct handling."""

from repro.algebra.expr import (
    Call,
    Case,
    Cast,
    ColRef,
    Const,
    conjuncts,
    is_const_false,
    is_const_true,
    make_and,
    next_cid,
    referenced_cids,
    rewrite_expr,
    substitute_cids,
    walk,
)
from repro.datatypes import BOOLEAN, INTEGER, varchar


def col(cid, name="c"):
    return ColRef(cid, name, INTEGER, True)


def eq(a, b):
    return Call("=", (a, b), BOOLEAN, True)


class TestTraversal:
    def test_walk_preorder(self):
        expr = Call("+", (col(1), Call("*", (col(2), Const(3, INTEGER)), INTEGER)), INTEGER)
        kinds = [type(e).__name__ for e in walk(expr)]
        assert kinds == ["Call", "ColRef", "Call", "ColRef", "Const"]

    def test_referenced_cids(self):
        expr = Call("AND", (eq(col(1), Const(1, INTEGER)), eq(col(2), col(3))), BOOLEAN)
        assert referenced_cids(expr) == frozenset({1, 2, 3})

    def test_referenced_cids_none(self):
        assert referenced_cids(None) == frozenset()

    def test_case_children(self):
        expr = Case(((eq(col(1), Const(0, INTEGER)), col(2)),), col(3), INTEGER)
        assert referenced_cids(expr) == frozenset({1, 2, 3})

    def test_cast_children(self):
        expr = Cast(col(7), varchar(5))
        assert referenced_cids(expr) == frozenset({7})


class TestRewriting:
    def test_substitute_cids(self):
        expr = Call("+", (col(1), col(2)), INTEGER)
        replaced = substitute_cids(expr, {1: Const(9, INTEGER)})
        assert referenced_cids(replaced) == frozenset({2})
        assert "9" in str(replaced)

    def test_substitute_empty_mapping_is_identity(self):
        expr = col(1)
        assert substitute_cids(expr, {}) is expr

    def test_rewrite_bottom_up(self):
        expr = Call("+", (Const(1, INTEGER), Const(2, INTEGER)), INTEGER)

        def fold(node):
            if isinstance(node, Call) and all(
                isinstance(a, Const) for a in node.args
            ):
                return Const(sum(a.value for a in node.args), INTEGER)
            return None

        nested = Call("+", (expr, Const(4, INTEGER)), INTEGER)
        assert rewrite_expr(nested, fold).value == 7

    def test_rewrite_inside_case(self):
        expr = Case(((eq(col(1), Const(0, INTEGER)), col(2)),), None, INTEGER)
        replaced = substitute_cids(expr, {2: Const(5, INTEGER)})
        assert referenced_cids(replaced) == frozenset({1})


class TestPredicateHelpers:
    def test_conjuncts_flatten(self):
        a, b, c = (eq(col(i), Const(i, INTEGER)) for i in (1, 2, 3))
        tree = Call("AND", (Call("AND", (a, b), BOOLEAN), c), BOOLEAN)
        assert conjuncts(tree) == [a, b, c]

    def test_conjuncts_none(self):
        assert conjuncts(None) == []

    def test_make_and_roundtrip(self):
        parts = [eq(col(1), Const(1, INTEGER)), eq(col(2), Const(2, INTEGER))]
        combined = make_and(parts)
        assert conjuncts(combined) == parts

    def test_make_and_single_and_empty(self):
        single = eq(col(1), Const(1, INTEGER))
        assert make_and([single]) is single
        assert make_and([]) is None

    def test_const_predicates(self):
        assert is_const_true(Const(True, BOOLEAN))
        assert is_const_false(Const(False, BOOLEAN))
        assert not is_const_true(Const(False, BOOLEAN))


class TestMisc:
    def test_next_cid_monotone(self):
        first = next_cid()
        second = next_cid()
        assert second > first

    def test_str_rendering(self):
        expr = Call(
            "AND",
            (
                Call("ISNULL", (col(1, "a"),), BOOLEAN, False),
                Call("IN", (col(2, "b"), Const(1, INTEGER)), BOOLEAN),
            ),
            BOOLEAN,
        )
        text = str(expr)
        assert "IS NULL" in text and "IN" in text

    def test_const_str_escaping(self):
        assert str(Const("o'brien", varchar(None))) == "'o'brien'"
        assert str(Const(None, varchar(None))) == "NULL"

    def test_colref_str(self):
        assert str(col(42, "price")) == "price#42"

"""JournalEntryItemBrowser analog tests: the Fig. 3/4 reproduction."""

import pytest

from repro.algebra import plan_stats
from repro.algebra.ops import Join, Scan
from repro.vdm.journal import FIG3_EXPECTED


class TestFig3Structure:
    def test_unoptimized_plan_matches_paper_statistics(self, journal_db):
        db, _ = journal_db
        stats = db.plan_statistics(
            "select * from journalentryitembrowser", optimize=False
        )
        assert stats.shared_table_instances == FIG3_EXPECTED["shared_tables"]
        assert stats.table_instances == FIG3_EXPECTED["unshared_tables"]
        assert stats.shared_joins == FIG3_EXPECTED["shared_joins"]
        assert stats.union_alls == FIG3_EXPECTED["union_alls"]
        assert stats.union_all_children == FIG3_EXPECTED["union_children"]
        assert stats.group_bys == FIG3_EXPECTED["group_bys"]
        assert stats.distincts == FIG3_EXPECTED["distincts"]

    def test_nesting_depth_is_six(self, journal_db):
        _, model = journal_db
        assert model.vdm.nesting_depth(model.consumption_view) == 6

    def test_view_exposes_wide_field_list(self, journal_db):
        db, _ = journal_db
        result = db.query("select * from journalentryitembrowser limit 1")
        assert len(result.column_names) >= 90  # an expansive view (§4.1)


class TestFig4Optimization:
    def test_count_star_plan_keeps_only_dac_joins(self, journal_db):
        db, _ = journal_db
        plan = db.plan_for("select count(*) from journalentryitembrowser")
        scans = [n for n in plan.walk() if isinstance(n, Scan)]
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert sorted(s.schema.name for s in scans) == ["acdoca", "kna1", "lfa1"]
        assert len(joins) == 2
        stats = plan_stats(plan)
        assert stats.union_alls == 0 and stats.distincts == 0

    def test_count_star_result_unchanged(self, journal_db):
        db, _ = journal_db
        optimized = db.query("select count(*) from journalentryitembrowser").scalar()
        unoptimized = db.query(
            "select count(*) from journalentryitembrowser", optimize=False
        ).scalar()
        assert optimized == unoptimized

    def test_select_star_result_unchanged(self, journal_db):
        db, _ = journal_db
        a = db.query("select * from journalentryitembrowser")
        b = db.query("select * from journalentryitembrowser", optimize=False)
        assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))

    def test_narrow_query_prunes_most_joins(self, journal_db):
        db, _ = journal_db
        # a typical query touches 10-20 of the hundreds of fields (§4.1)
        plan = db.plan_for(
            "select acdockey, amount, company_name, costcenter_text "
            "from journalentryitem"
        )
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        # company (used) + the costcenter AJ + its internal text join: the
        # other 29 augmentations and the ledger join are gone
        assert len(joins) == 3

    def test_dac_filters_respected(self, journal_db):
        db, model = journal_db
        rows = db.query(
            "select supplierauthgroup, customerauthgroup from journalentryitembrowser"
        ).rows
        for supplier_group, customer_group in rows:
            assert supplier_group in (None, "G1")
            assert customer_group in (None, "G1")

    def test_unprotected_view_vs_protected(self, journal_db):
        db, model = journal_db
        total = db.query(f"select count(*) from {model.consumption_view}").scalar()
        protected = db.query(f"select count(*) from {model.browser_view}").scalar()
        assert protected <= total

    def test_paging_query(self, journal_db):
        db, _ = journal_db
        rows = db.query("select * from journalentryitembrowser limit 10 offset 1").rows
        assert len(rows) == 10


class TestBusinessContent:
    def test_flow_totals_augmenter(self, journal_db):
        db, _ = journal_db
        rows = db.query(
            "select dockey, flowtotal, flowsteps from journalentryitem "
            "where flowsteps is not null limit 5"
        ).rows
        assert rows and all(r[2] >= 1 for r in rows)

    def test_business_partner_union(self, journal_db):
        db, _ = journal_db
        rows = db.query(
            "select partnertype, partnername from journalentryitem "
            "where partnername is not null limit 20"
        ).rows
        assert rows
        for ptype, pname in rows:
            assert pname.startswith(
                {"V": "vendorbp", "C": "custbp", "E": "employeebp",
                 "B": "bankbp", "T": "taxauthbp"}[ptype]
            )

    def test_vdm_statistics(self, journal_db):
        _, model = journal_db
        stats = model.vdm.statistics()
        assert stats["basic"] >= 20
        assert stats["composite"] == 1
        assert stats["consumption"] == 1

"""EXPLAIN ANALYZE: per-physical-operator actual rows/batches/timings,
early-termination annotations, and a golden plan-shape test (timings
normalized)."""

from __future__ import annotations

import re

import pytest

from repro import Database
from repro.observability import ExecutionCollector

TIME_RE = re.compile(r"\d+\.\d+ms")


def normalize(text: str) -> str:
    """Erase wall times so the output is stable across machines."""
    return TIME_RE.sub("Xms", text)


@pytest.fixture
def demo_db() -> Database:
    db = Database()
    db.execute("create table customer (c_id int primary key, c_name varchar(30))")
    db.execute(
        "create table orders (o_id int primary key, o_cust int not null, "
        "o_total decimal(12,2))"
    )
    db.execute("insert into customer values (1,'ACME'),(2,'Globex'),(3,'Initech')")
    db.execute(
        "insert into orders values (10,1,100.00),(11,1,250.50),"
        "(12,2,75.25),(13,3,990.00)"
    )
    return db


def test_golden_uaj_query(demo_db):
    """The acceptance-criterion shape: a VDM-style query where the optimizer
    removed the augmentation join, annotated with actual rows/timings."""
    text = demo_db.explain(
        "select o.o_id from orders o "
        "left outer join customer c on o.o_cust = c.c_id",
        analyze=True,
    )
    assert normalize(text) == (
        "Project[1 cols] (est rows=4 actual rows=4 qerror=1.00 "
        "batches=1 time=Xms)\n"
        "  BatchScan(orders)[cols=1] (est rows=4 actual rows=4 qerror=1.00 "
        "batches=1 time=Xms)\n"
        "execution: 4 row(s) in Xms, 4 row(s) scanned"
    )


def test_golden_join_kept_when_augmenter_used(demo_db):
    text = demo_db.explain(
        "select o.o_id, c.c_name from orders o "
        "join customer c on o.o_cust = c.c_id",
        analyze=True,
    )
    normalized = normalize(text)
    assert "HashJoin[build=" in normalized
    assert "actual rows=4" in normalized        # the join output
    assert "est rows=" in normalized and "qerror=" in normalized
    assert ("BatchScan(customer)[cols=2] (est rows=3 actual rows=3 "
            "qerror=1.00 batches=1 time=Xms)") in normalized
    # The hash build side reports its peak estimated memory.
    assert "peak≈" in normalized
    assert normalized.endswith("execution: 4 row(s) in Xms, 7 row(s) scanned")


def test_early_termination_is_annotated(demo_db):
    # A limit over a scan closes the scan stream once satisfied; the scan
    # is flagged early-terminated (with a 1024-row default batch the 4-row
    # demo table fits in the first batch, but the flag still records that
    # the limit cut the stream).
    db = Database(batch_size=1)
    db.execute("create table orders (o_id int primary key)")
    db.execute("insert into orders values (10),(11),(12),(13)")
    text = db.explain("select o_id from orders limit 2", analyze=True)
    assert "early-terminated" in text
    assert "execution: 2 row(s)" in text
    assert "2 row(s) scanned" in text  # only 2 of 4 rows were decoded


def test_analyze_reports_filtered_rows(demo_db):
    text = demo_db.explain(
        "select o_id from orders where o_total > 100.00", analyze=True
    )
    normalized = normalize(text)
    assert "Filter" in normalized and "actual rows=2" in normalized


def test_unoptimized_analyze(demo_db):
    text = demo_db.explain(
        "select o.o_id from orders o "
        "left outer join customer c on o.o_cust = c.c_id",
        optimize=False,
        analyze=True,
    )
    # The join survives without optimization (the physical plan still
    # executes it, as an outer hash join).
    assert "HashJoin[left-outer" in text
    assert "actual rows=" in text


def test_collector_accumulates_per_operator(demo_db):
    plan = demo_db.plan_for("select o_id from orders")
    collector = ExecutionCollector()
    txn = demo_db.begin()
    try:
        result = demo_db._executor.execute(plan, txn, collector=collector)
    finally:
        demo_db.commit(txn)
    assert len(result.rows) == 4
    assert collector.root is not None
    assert collector.rows_scanned() == 4
    assert collector.operator_count() >= 1
    for node in collector.root.walk():
        stats = collector.stats_for(node)
        assert stats is not None
        assert stats.chunks == 1
        assert stats.elapsed_s >= 0


def test_analyze_matches_plain_execution(demo_db):
    sql = (
        "select c.c_name, sum(o.o_total) as t from orders o "
        "join customer c on o.o_cust = c.c_id group by c.c_name order by t"
    )
    plain = demo_db.query(sql)
    text = demo_db.explain(sql, analyze=True)
    assert f"execution: {len(plain.rows)} row(s)" in text


def test_executor_without_collector_records_nothing(demo_db):
    # The default path must not leave a stale collector behind.
    demo_db.explain("select o_id from orders", analyze=True)
    assert demo_db._executor._collector is None
    demo_db.query("select o_id from orders")  # still works untraced

"""MVCC transaction and snapshot-isolation tests over column tables."""

import pytest

from repro.catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from repro.datatypes import INTEGER, varchar
from repro.errors import ConstraintError, ExecutionError, TransactionError
from repro.storage import ColumnTable, TransactionManager
from repro.storage.mvcc import TransactionStatus


def make_table(txns, name="t", unique=True):
    constraints = [UniqueConstraint(("id",), True)] if unique else []
    schema = TableSchema(
        name,
        [ColumnSchema("id", INTEGER, False), ColumnSchema("v", varchar(20))],
        constraints,
    )
    return ColumnTable(schema, txns)


class TestTransactionLifecycle:
    def test_commit_assigns_timestamp(self):
        txns = TransactionManager()
        txn = txns.begin()
        ts = txns.commit(txn)
        assert txn.status is TransactionStatus.COMMITTED
        assert txn.commit_ts == ts

    def test_double_commit_rejected(self):
        txns = TransactionManager()
        txn = txns.begin()
        txns.commit(txn)
        with pytest.raises(TransactionError):
            txns.commit(txn)

    def test_rollback_then_commit_rejected(self):
        txns = TransactionManager()
        txn = txns.begin()
        txns.rollback(txn)
        with pytest.raises(TransactionError):
            txns.commit(txn)

    def test_active_count(self):
        txns = TransactionManager()
        a, b = txns.begin(), txns.begin()
        assert txns.active_count == 2
        txns.commit(a)
        txns.rollback(b)
        assert txns.active_count == 0


class TestSnapshotIsolation:
    def test_uncommitted_rows_invisible_to_others(self):
        txns = TransactionManager()
        table = make_table(txns)
        writer = txns.begin()
        table.insert(writer, (1, "a"))
        reader = txns.begin()
        assert table.visible_row_count(reader) == 0
        assert table.visible_row_count(writer) == 1  # own writes visible

    def test_snapshot_does_not_move(self):
        txns = TransactionManager()
        table = make_table(txns)
        reader = txns.begin()
        writer = txns.begin()
        table.insert(writer, (1, "a"))
        txns.commit(writer)
        # reader began before the commit: still sees nothing
        assert table.visible_row_count(reader) == 0
        late_reader = txns.begin()
        assert table.visible_row_count(late_reader) == 1

    def test_delete_respects_snapshots(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        old_reader = txns.begin()
        deleter = txns.begin()
        table.delete_row(deleter, 0)
        txns.commit(deleter)
        assert table.visible_row_count(old_reader) == 1
        assert table.visible_row_count(txns.begin()) == 0

    def test_rollback_hides_inserts(self):
        txns = TransactionManager()
        table = make_table(txns)
        txn = txns.begin()
        table.insert(txn, (1, "a"))
        txns.rollback(txn)
        assert table.visible_row_count(txns.begin()) == 0

    def test_rollback_restores_deletes(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        txn = txns.begin()
        table.delete_row(txn, 0)
        txns.rollback(txn)
        assert table.visible_row_count(txns.begin()) == 1

    def test_update_is_delete_plus_insert(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "old")])
        old_reader = txns.begin()
        writer = txns.begin()
        table.update_row(writer, 0, (1, "new"))
        txns.commit(writer)
        columns, n = table.read_columns(old_reader, ["v"])
        assert (n, columns[0]) == (1, ["old"])
        columns, n = table.read_columns(txns.begin(), ["v"])
        assert (n, columns[0]) == (1, ["new"])

    def test_delete_invisible_row_rejected(self):
        txns = TransactionManager()
        table = make_table(txns)
        writer = txns.begin()
        table.insert(writer, (1, "a"))
        other = txns.begin()
        with pytest.raises(ExecutionError):
            table.delete_row(other, 0)

    def test_write_write_conflict_on_delete(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        t1, t2 = txns.begin(), txns.begin()
        table.delete_row(t1, 0)
        with pytest.raises(ConstraintError):
            table.delete_row(t2, 0)


class TestConstraints:
    def test_unique_violation_same_txn(self):
        txns = TransactionManager()
        table = make_table(txns)
        txn = txns.begin()
        table.insert(txn, (1, "a"))
        with pytest.raises(ConstraintError):
            table.insert(txn, (1, "b"))

    def test_unique_violation_across_committed(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        txn = txns.begin()
        with pytest.raises(ConstraintError):
            table.insert(txn, (1, "b"))

    def test_reinsert_after_committed_delete(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        deleter = txns.begin()
        table.delete_row(deleter, 0)
        txns.commit(deleter)
        writer = txns.begin()
        table.insert(writer, (1, "b"))  # key is free again
        txns.commit(writer)

    def test_delete_then_reinsert_same_txn(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        txn = txns.begin()
        table.delete_row(txn, 0)
        table.insert(txn, (1, "b"))
        txns.commit(txn)
        columns, n = table.read_columns(txns.begin(), ["v"])
        assert (n, columns[0]) == (1, ["b"])

    def test_concurrent_insert_same_key_conflicts(self):
        txns = TransactionManager()
        table = make_table(txns)
        t1, t2 = txns.begin(), txns.begin()
        table.insert(t1, (1, "a"))
        with pytest.raises(ConstraintError):
            table.insert(t2, (1, "b"))

    def test_aborted_insert_frees_key(self):
        txns = TransactionManager()
        table = make_table(txns)
        t1 = txns.begin()
        table.insert(t1, (1, "a"))
        txns.rollback(t1)
        t2 = txns.begin()
        table.insert(t2, (1, "b"))
        txns.commit(t2)

    def test_null_keys_never_collide(self):
        txns = TransactionManager()
        schema = TableSchema(
            "n", [ColumnSchema("k", INTEGER), ColumnSchema("v", varchar(5))],
            [UniqueConstraint(("k",))],
        )
        table = ColumnTable(schema, txns)
        txn = txns.begin()
        table.insert(txn, (None, "a"))
        table.insert(txn, (None, "b"))  # SQL: NULLs don't violate UNIQUE
        txns.commit(txn)

    def test_not_null_enforced(self):
        txns = TransactionManager()
        table = make_table(txns)
        txn = txns.begin()
        with pytest.raises(ConstraintError):
            table.insert(txn, (None, "a"))

    def test_arity_mismatch(self):
        txns = TransactionManager()
        table = make_table(txns)
        txn = txns.begin()
        with pytest.raises(ExecutionError):
            table.insert(txn, (1,))


class TestMaintenance:
    def test_merge_preserves_visibility(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(i, f"v{i}") for i in range(5)], merge=False)
        assert table.delta_size == 5
        reader = txns.begin()
        before, _ = table.read_columns(reader, ["id"])
        table.merge_delta()
        assert table.delta_size == 0
        after, _ = table.read_columns(reader, ["id"])
        assert before == after

    def test_vacuum_reclaims_dead_versions(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(i, f"v{i}") for i in range(3)])
        deleter = txns.begin()
        table.delete_row(deleter, 1)
        txns.commit(deleter)
        assert table.vacuum() == 1
        assert len(table) == 2
        columns, _ = table.read_columns(txns.begin(), ["id"])
        assert sorted(columns[0]) == [0, 2]

    def test_vacuum_blocked_by_old_snapshot(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        old_reader = txns.begin()  # holds the horizon
        deleter = txns.begin()
        table.delete_row(deleter, 0)
        txns.commit(deleter)
        assert table.vacuum() == 0
        assert table.visible_row_count(old_reader) == 1

    def test_vacuum_reindexes_keys(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a"), (2, "b")])
        deleter = txns.begin()
        table.delete_row(deleter, 0)
        txns.commit(deleter)
        table.vacuum()
        txn = txns.begin()
        with pytest.raises(ConstraintError):
            table.insert(txn, (2, "dup"))
        table.insert(txn, (1, "fresh"))

    def test_add_column_backfills_default(self):
        txns = TransactionManager()
        table = make_table(txns)
        table.bulk_load([(1, "a")])
        table.add_column(ColumnSchema("zz_ext", varchar(10)), default=None)
        columns, _ = table.read_columns(txns.begin(), ["zz_ext"])
        assert columns[0] == [None]
        txn = txns.begin()
        table.insert(txn, (2, "b", "custom"))
        txns.commit(txn)

    def test_add_duplicate_column_rejected(self):
        txns = TransactionManager()
        table = make_table(txns)
        with pytest.raises(ConstraintError):
            table.add_column(ColumnSchema("id", INTEGER))

    def test_add_not_null_column_needs_default(self):
        txns = TransactionManager()
        table = make_table(txns)
        with pytest.raises(ConstraintError):
            table.add_column(ColumnSchema("x", INTEGER, nullable=False))

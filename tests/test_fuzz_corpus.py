"""Regression corpus replay (satellite a).

Every ``tests/corpus/*.json`` file is a serialized corpus entry and must
replay clean on every commit.  Most are fuzz cases (``kind == "case"``,
the default) — a minimized repro of a past discrepancy or a seeded
representative of one rewrite target — replayed through all three
oracles.  ``kind == "sys_selfref"`` entries replay raw SQL against the
``sys.*`` introspection schema and check the self-observability
invariant instead.  A failure here means an optimizer, executor, or
observability change resurrected a bug class the corpus pinned down.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.fuzz.generator import TARGETS, Case
from repro.fuzz.oracles import ORACLES
from repro.fuzz.runner import load_corpus_file, replay_corpus_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load_payload(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def test_corpus_is_present_and_covers_every_target():
    assert CORPUS_FILES, f"no corpus files in {CORPUS_DIR}"
    names = {os.path.basename(path) for path in CORPUS_FILES}
    for target in TARGETS:
        assert any(target in name for name in names), (
            f"no corpus file for rewrite target {target!r}: {sorted(names)}"
        )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_file_replays_clean(path):
    tally: dict = {}
    found = replay_corpus_file(path, tally=tally)
    assert found == [], f"{os.path.basename(path)}: {[str(d) for d in found]}"
    # every oracle (or every sys_selfref repetition) ran at least one query
    is_case = _load_payload(path).get("kind", "case") == "case"
    assert tally.get("queries", 0) >= (len(ORACLES) if is_case else 1)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_file_round_trips(path):
    payload = _load_payload(path)
    if payload.get("kind", "case") != "case":
        pytest.skip("raw-SQL corpus entry: nothing to round-trip")
    case = load_corpus_file(path)
    assert Case.from_dict(case.to_dict()).sql() == case.sql()
    payload.pop("discrepancy", None)
    assert case.to_dict() == payload

"""Regression corpus replay (satellite a).

Every ``tests/corpus/*.json`` file is a serialized fuzz case — either a
minimized repro of a past discrepancy or a seeded representative of one
rewrite target — and must replay clean through all three oracles on every
commit.  A failure here means an optimizer or executor change resurrected
a bug class the corpus pinned down.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.fuzz.generator import TARGETS, Case
from repro.fuzz.oracles import ORACLES
from repro.fuzz.runner import load_corpus_file, replay_corpus_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_present_and_covers_every_target():
    assert CORPUS_FILES, f"no corpus files in {CORPUS_DIR}"
    names = {os.path.basename(path) for path in CORPUS_FILES}
    for target in TARGETS:
        assert any(target in name for name in names), (
            f"no corpus file for rewrite target {target!r}: {sorted(names)}"
        )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_file_replays_clean(path):
    tally: dict = {}
    found = replay_corpus_file(path, tally=tally)
    assert found == [], f"{os.path.basename(path)}: {[str(d) for d in found]}"
    # every oracle actually ran at least one query for this case
    assert tally.get("queries", 0) >= len(ORACLES)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_file_round_trips(path):
    case = load_corpus_file(path)
    assert Case.from_dict(case.to_dict()).sql() == case.sql()
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    payload.pop("discrepancy", None)
    assert case.to_dict() == payload

"""``repro doctor``: the plan-feedback diagnostic report."""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.observability import doctor_report


@pytest.fixture()
def db():
    database = Database()
    database.execute("create table t (id int primary key, v int)")
    database.execute(
        "insert into t values (1, 10), (2, 20), (3, 30), (4, 40), "
        "(5, 50), (6, 60), (7, 70), (8, 80), (9, 90), (10, 100), "
        "(11, 110), (12, 120)"
    )
    yield database
    database.close()


def test_empty_report_has_all_sections(db):
    report = doctor_report(db)
    assert report.startswith("== repro doctor ==")
    assert "misestimated operators" in report
    assert "memory-hungriest queries" in report
    assert "kernel-heaviest operators" in report
    assert "regressed query shapes" in report
    assert report.count("(none)") == 4


def test_misestimated_query_tops_the_qerror_section(db):
    # The stacked range predicates trick the 1/3-per-predicate heuristic:
    # est 1.33 rows, actual 12 -> qerror 9.
    sql = "select v from t where v > -1 and v < 1000000"
    db.query(sql)
    report = doctor_report(db)
    offenders = [
        line for line in report.splitlines() if line.startswith("qerror=")
    ]
    assert offenders and "9.00" in offenders[0]  # worst first
    assert any("Filter" in line for line in offenders)
    assert sql in report  # the offending SQL is shown under the operator


def test_memory_section_lists_blocking_queries(db):
    db.query("select v from t order by v")
    report = doctor_report(db)
    assert "peak≈" in report
    assert "select v from t order by v" in report


def test_report_respects_top_n(db):
    for threshold in range(8):
        db.query(f"select v from t where v > {threshold} and v < 1000000")
    report = doctor_report(db, top=2)
    offenders = [
        line for line in report.splitlines() if line.startswith("qerror=")
    ]
    assert len(offenders) == 2


def test_long_sql_is_truncated(db):
    sql = (
        "select v from t where v > -1 and v < 1000000 and id in "
        f"({', '.join(str(i) for i in range(1, 13))})"
    )
    assert len(sql) > 80
    db.query(sql)
    report = doctor_report(db)
    assert "..." in report
    assert sql not in report


def test_doctor_cli_prints_report(capsys):
    from repro.__main__ import main

    exit_code = main(["doctor", "--top", "3"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "== repro doctor ==" in captured.out
    # The deliberately misestimated demo query guarantees a non-empty
    # Q-error section even on a fresh database.
    assert "qerror=" in captured.out
    assert "orderview" in captured.out


def test_doctor_cli_accepts_custom_sql(capsys):
    from repro.__main__ import main

    exit_code = main(["doctor", "select o_id from orderview"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "== repro doctor ==" in captured.out

"""ASJ-elimination tests (paper §5): rewiring, subsumption, blockers."""

import pytest

from repro import Database
from repro.algebra.ops import Join, Scan
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table t (key int primary key, a int not null, b varchar(10), ext int)"
    )
    database.execute(
        "create table u (ukey int primary key, t_key int not null, uval varchar(10))"
    )
    database.execute(
        "create table nk (key int, a int)"  # nullable, non-unique key
    )
    database.bulk_load("t", [(i, i * 2, f"b{i}", i * 100) for i in range(15)])
    database.bulk_load("u", [(i, i % 15, f"u{i}") for i in range(40)])
    database.bulk_load("nk", [(i if i % 3 else None, i) for i in range(10)])
    return database


def t_scans(db, sql, table="t", profile="hana"):
    db.set_profile(profile)
    return sum(
        1 for n in db.plan_for(sql).walk()
        if isinstance(n, Scan) and n.schema.name == table
    )


class TestScalarAsj:
    def test_basic_self_join_removed_with_rewiring(self, db):
        sql = (
            "select v.key, v.a, x.ext from (select key, a from t) v "
            "left join t x on v.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_rewired_values_correct(self, db):
        sql = (
            "select v.key, x.ext from (select key from t) v "
            "left join t x on v.key = x.key"
        )
        rows = dict(db.query(sql).rows)
        assert rows[3] == 300 and rows[7] == 700

    def test_unused_self_join_also_removed(self, db):
        sql = "select v.key from (select key from t) v left join t x on v.key = x.key"
        assert t_scans(db, sql) == 1

    def test_anchor_behind_other_joins(self, db):
        # Fig 10(b): anchor is a subquery with an unrelated join in between
        sql = (
            "select vv.key, vv.uval, x.ext from "
            "(select t.key, u.uval from t join u on t.key = u.t_key) vv "
            "left join t x on vv.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_projection_widening(self, db):
        # anchor projects ONLY the key; ext must be exposed through the project
        sql = (
            "select x.ext from (select key from t) v left join t x on v.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_inner_self_join_used_removed(self, db):
        sql = (
            "select v.key, x.ext from (select key, a from t) v "
            "join t x on v.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_computed_augmenter_column_blocks(self, db):
        # ext * 2 is not a pass-through: rewiring impossible, join kept
        sql = (
            "select v.key, x.e2 from (select key from t) v "
            "left join (select key, ext * 2 as e2 from t) x on v.key = x.key"
        )
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)

    def test_different_tables_not_asj(self, db):
        sql = (
            "select v.ukey, x.ext from (select ukey, t_key from u) v "
            "left join t x on v.ukey = x.key"
        )
        # v.ukey has provenance u.ukey, not t.key: plain join must survive
        assert t_scans(db, sql, "t") == 1 and t_scans(db, sql, "u") == 1
        assert_equivalent(db, sql)

    def test_join_on_non_key_column_not_asj(self, db):
        sql = (
            "select v.a, x.ext from (select a from t) v "
            "left join t x on v.a = x.a"
        )
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)

    def test_computed_anchor_key_not_asj(self, db):
        sql = (
            "select v.k1, x.ext from (select key + 0 as k1 from t) v "
            "left join t x on v.k1 = x.key"
        )
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)


class TestSubsumption:
    def test_identical_filters_removed(self, db):
        sql = (
            "select v.key, x.ext from (select key from t where a > 6) v "
            "left join (select key, ext from t where a > 6) x on v.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_anchor_more_restrictive_ok(self, db):
        sql = (
            "select v.key, x.ext from (select key from t where a > 6 and b <> 'b9') v "
            "left join (select key, ext from t where a > 6) x on v.key = x.key"
        )
        assert t_scans(db, sql) == 1
        assert_equivalent(db, sql)

    def test_augmenter_more_restrictive_blocks(self, db):
        sql = (
            "select v.key, x.ext from (select key from t) v "
            "left join (select key, ext from t where a > 6) x on v.key = x.key"
        )
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)

    def test_disjoint_filters_block(self, db):
        sql = (
            "select v.key, x.ext from (select key from t where a > 10) v "
            "left join (select key, ext from t where a <= 10) x on v.key = x.key"
        )
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)


class TestBlockers:
    def test_aggregation_blocks_exposure(self, db):
        sql = (
            "select v.key, x.ext from "
            "(select key from t group by key) v "
            "left join t x on v.key = x.key"
        )
        # grouping blocks provenance-based rewiring; join must survive
        assert t_scans(db, sql) == 2
        assert_equivalent(db, sql)

    def test_nullable_base_key_blocks(self, db):
        db.execute("create table tn (key int unique, ext int)")
        db.bulk_load("tn", [(i if i % 2 else None, i) for i in range(8)])
        sql = (
            "select v.key, x.ext from (select key from tn) v "
            "left join tn x on v.key = x.key"
        )
        assert t_scans(db, sql, "tn") == 2
        assert_equivalent(db, sql)

    def test_profile_without_asj_keeps_join(self, db):
        sql = (
            "select v.key, x.ext from (select key from t) v "
            "left join t x on v.key = x.key"
        )
        assert t_scans(db, sql, profile="postgres") == 2
        assert t_scans(db, sql, profile="system_z") == 2
        db.set_profile("hana")

    def test_outer_nulled_anchor_key_ok_for_left_outer(self, db):
        # key reaches the anchor through a left outer join: NULL-extended
        # rows rewire to NULL consistently, removal is sound
        sql = (
            "select v.uk, v.tkey, x.ext from "
            "(select u.ukey as uk, t.key as tkey from u left join t on u.t_key = t.key) v "
            "left join t x on v.tkey = x.key"
        )
        assert t_scans(db, sql) == 1  # only the anchor's own t scan remains
        assert_equivalent(db, sql)

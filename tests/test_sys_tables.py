"""The ``sys.*`` introspection schema.

Every system table is a read-only virtual table over live engine state,
registered in the catalog so it parses, binds, optimizes, and streams
through the normal executor pipeline — the acceptance query is
``SELECT * FROM sys.query_log ORDER BY elapsed_ms DESC LIMIT 5``.
"""

from __future__ import annotations

import pytest

from repro.catalog import SysTable
from repro.catalog.catalog import CatalogError
from repro.database import Database
from repro.errors import ExecutionError, ReproError
from repro.sql.normalize import shape_hash

SYS_TABLE_NAMES = (
    "sys.query_log",
    "sys.operator_stats",
    "sys.plan_feedback",
    "sys.query_shapes",
    "sys.metrics",
    "sys.rewrite_fires",
    "sys.cache_entries",
    "sys.wal_segments",
    "sys.active_spans",
    "sys.fault_points",
    "sys.sessions",
    "sys.admission",
    "sys.plan_cache",
)


@pytest.fixture()
def db():
    database = Database()
    database.execute("create table t (id int primary key, v int)")
    database.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    yield database
    database.close()


def test_all_sys_tables_registered_and_selectable(db):
    for name in SYS_TABLE_NAMES:
        result = db.query(f"select * from {name}")
        assert result.column_names, name


def test_sys_tables_hidden_from_user_catalog_listing(db):
    names = {table.schema.name for table in db.catalog.tables()}
    assert names == {"t"}
    sys_names = {table.schema.name for table in db.catalog.system_tables()}
    assert sys_names == set(SYS_TABLE_NAMES)


def test_acceptance_query_streams_through_pipeline(db):
    db.query("select sum(v) from t")
    result = db.query(
        "select * from sys.query_log order by elapsed_ms desc limit 5"
    )
    assert "query_id" in result.column_names
    assert 1 <= len(result.rows) <= 5
    # and it shows up in EXPLAIN with a real physical plan
    plan = db.explain("select * from sys.query_log order by elapsed_ms desc limit 5")
    assert "BatchScan(sys.query_log)" in plan
    # ORDER BY ... LIMIT fuses into the bounded-heap TopN operator
    assert "TopN[k=5" in plan


def test_query_log_row_contents(db):
    sql = "select sum(v) from t where v > 5"
    db.query(sql)
    result = db.query(
        "select query_id, sql, shape, status, error, rows from sys.query_log "
        f"where sql = '{sql}'"
    )
    assert len(result.rows) == 1
    query_id, logged_sql, shape, status, error, rows = result.rows[0]
    assert query_id.startswith("q")
    assert logged_sql == sql
    assert shape == shape_hash(sql)
    assert status == "ok"
    assert error is None
    assert rows == 1


def test_query_log_error_row(db):
    with pytest.raises(ReproError):
        db.query("select no_such_column from t")
    entry = db.query_log.last()
    assert entry is not None
    assert entry.status == "error"
    assert entry.error and "no_such_column" in entry.error
    result = db.query("select status from sys.query_log where status = 'error'")
    assert result.rows == [("error",)]


def test_query_ids_are_unique_and_monotonic(db):
    for _ in range(3):
        db.query("select count(*) from t")
    ids = [e.query_id for e in db.query_log.entries()]
    assert len(ids) == len(set(ids))
    numbers = [int(i[1:]) for i in ids]
    assert numbers == sorted(numbers)


def test_self_referential_query_logged_exactly_once_after_completion(db):
    sql = "select sql from sys.query_log"
    first = db.query(sql)
    assert all(row != (sql,) for row in first.rows)   # never sees itself
    second = db.query(sql)
    assert sum(1 for row in second.rows if row == (sql,)) == 1


def test_operator_stats_join_query_log_on_query_id(db):
    db.tracing = True
    db.query("select v from t where v > 5")
    db.tracing = False
    result = db.query(
        "select s.operator, s.rows_out from sys.operator_stats s "
        "join sys.query_log q on s.query_id = q.query_id "
        "where q.sql = 'select v from t where v > 5'"
    )
    operators = {op for op, _rows in result.rows}
    assert any("BatchScan(t)" in op for op in operators)
    # every value of t.v exceeds 5, so every operator streams all 3 rows
    assert all(rows == 3 for _op, rows in result.rows)


def test_operator_stats_populate_without_tracing(db):
    """Plan feedback records per-operator actuals for every query —
    span tracing is no longer a prerequisite (the old behaviour left
    sys.operator_stats empty under normal operation)."""
    db.query("select v from t")
    rows = db.query(
        "select operator, rows_out from sys.operator_stats"
    ).rows
    assert any("BatchScan(t)" in op for op, _ in rows)


def test_operator_stats_empty_with_feedback_disabled():
    db = Database(plan_feedback=False)
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10)")
    db.query("select v from t")
    assert db.query("select * from sys.operator_stats").rows == []
    assert db.query("select * from sys.plan_feedback").rows == []
    db.close()


def test_sys_metrics_counters(db):
    db.query("select count(*) from t")
    result = db.query(
        "select value from sys.metrics where name = 'queries.executed'"
    )
    assert result.rows and result.rows[0][0] >= 1.0


def test_sys_wal_segments_memory_and_disk(tmp_path):
    mem = Database()
    mem.execute("create table t (id int primary key)")
    rows = mem.query("select segment, durable from sys.wal_segments").rows
    assert rows == [("(memory)", False)]
    mem.close()

    disk = Database(wal_dir=str(tmp_path))
    disk.execute("create table t (id int primary key)")
    disk.execute("insert into t values (1)")
    rows = disk.query(
        "select segment, bytes, durable from sys.wal_segments"
    ).rows
    assert rows, "durable WAL should expose at least one segment"
    for segment, size_bytes, durable in rows:
        assert segment.endswith(".wal") or "wal" in segment
        assert durable is True
        assert size_bytes is None or size_bytes >= 0
    disk.close()


def test_sys_active_spans(db):
    db.tracing = True
    db.query("select v from t")
    db.tracing = False
    result = db.query(
        "select name, query_id from sys.active_spans where name = 'query'"
    )
    assert len(result.rows) == 1
    name, query_id = result.rows[0]
    assert query_id and query_id.startswith("q")


def test_sys_cache_entries(db):
    from repro.cache.cached_views import CachedViewManager

    assert db.query("select * from sys.cache_entries").rows == []
    manager = CachedViewManager(db)
    manager.create_static("tv", "select id, v from t")
    rows = db.query("select name, kind, stale from sys.cache_entries").rows
    assert rows == [("tv", "static", False)]
    db.execute("insert into t values (4, 40)")
    rows = db.query("select name, stale from sys.cache_entries").rows
    assert rows == [("tv", True)]


def test_sys_rewrite_fires(db):
    db.execute(
        "create view ov as select t1.id, t1.v from t t1 "
        "left outer many to one join t t2 on t1.id = t2.id"
    )
    db.query("select id from ov")
    rows = db.query("select rewrite_case, fires from sys.rewrite_fires").rows
    assert rows, "the AJ elimination should have fired and been counted"
    assert all(fires >= 1 for _case, fires in rows)


# -- read-only and reserved-namespace enforcement ---------------------------


@pytest.mark.parametrize("sql", [
    "insert into sys.query_log (query_id) values ('x')",
    "update sys.metrics set value = 0",
    "delete from sys.query_log",
])
def test_sys_tables_refuse_dml(db, sql):
    with pytest.raises(ExecutionError, match="read-only system table"):
        db.execute(sql)


def test_sys_namespace_reserved_for_ddl(db):
    with pytest.raises(CatalogError, match="reserved"):
        db.execute("create table sys.mine (id int primary key)")
    with pytest.raises(CatalogError, match="reserved"):
        db.execute("create view sys.v as select id from t")


def test_sys_tables_cannot_be_dropped(db):
    with pytest.raises(CatalogError, match="system table"):
        db.execute("drop table sys.query_log")


# -- streaming and snapshot behavior ----------------------------------------


def test_sys_query_log_batch_size_one(tmp_path):
    db = Database(batch_size=1)
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20)")
    for _ in range(5):
        db.query("select v from t")
    result = db.query("select query_id from sys.query_log")
    assert len(result.rows) == 5
    assert len({row[0] for row in result.rows}) == 5
    db.close()


def test_sys_scan_is_stable_snapshot_across_batches():
    """A scan materializes its rows at open; entries appended mid-stream
    (here: by the scan itself being preceded by others) don't tear it."""
    db = Database(batch_size=1)
    db.execute("create table t (id int primary key, v int)")
    for i in range(10):
        db.execute(f"insert into t values ({i}, {i * 10})")
    before = len(db.query_log)
    result = db.query("select query_id from sys.query_log")
    assert len(result.rows) == before
    db.close()


def test_sys_tables_under_mvcc_writes(db):
    """Uncommitted writes in another transaction don't disturb sys scans,
    and sys.query_log rows accumulate across transaction boundaries."""
    txn = db.begin()
    db.execute("insert into t values (100, 1000)")  # autocommitted
    n_before = len(db.query("select * from sys.query_log", txn=txn).rows)
    db.query("select count(*) from t")
    n_after = len(db.query("select * from sys.query_log", txn=txn).rows)
    # +1 for the count(*) query, +1 for the first sys scan itself
    assert n_after == n_before + 2
    db.commit(txn)


def test_systable_rejects_writes_directly():
    from repro.catalog.schema import ColumnSchema, TableSchema
    from repro.datatypes import INTEGER

    schema = TableSchema("sys.x", [ColumnSchema("id", INTEGER, nullable=True)])
    table = SysTable(schema, lambda: [(1,)])
    assert table.rows() == [(1,)]
    with pytest.raises(ExecutionError):
        table.insert(None, (2,))


def test_sys_sessions_and_admission_empty_without_serving(db):
    assert db.query("select * from sys.sessions").rows == []
    assert db.query("select * from sys.admission").rows == []


def test_sys_sessions_reflects_live_sessions(db):
    from repro.serving import SessionManager

    manager = SessionManager(db, max_concurrent=2, max_queue=4)
    session = manager.session("acme")
    session.query("select sum(v) from t")
    rows = db.query(
        "select session_id, tenant, state, queries_run, txn_open "
        "from sys.sessions"
    ).rows
    assert rows == [(session.session_id, "acme", "idle", 1, False)]
    session.begin()
    assert db.query("select txn_open from sys.sessions").rows == [(True,)]
    session.rollback()
    session.close()
    assert db.query("select * from sys.sessions").rows == []
    manager.shutdown()


def test_sys_admission_global_and_tenant_rows(db):
    from repro.serving import SessionManager

    manager = SessionManager(db, max_concurrent=2, max_queue=4)
    with manager.session("acme") as session:
        session.query("select count(*) from t")
    rows = db.query(
        "select tenant, queued, running, max_concurrent, queue_capacity, "
        "admitted, breaker_state from sys.admission order by tenant"
    ).rows
    assert rows[0] == ("*", 0, 0, 2, 4, None, None)
    assert rows[1] == ("acme", None, None, None, None, 1, "closed")
    manager.shutdown()


def test_query_log_ring_buffer_capacity():
    db = Database()
    db.execute("create table t (id int primary key)")
    db.query_log.configure(capacity=4)
    for i in range(10):
        db.query("select count(*) from t")
    assert len(db.query_log) == 4
    result = db.query("select query_id from sys.query_log")
    # the sys query itself is not yet logged when it scans
    assert len(result.rows) == 4
    db.close()

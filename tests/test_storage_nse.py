"""NSE page-buffer simulation tests."""

import pytest

from repro.storage.column import ColumnFragments
from repro.storage.nse import PageBuffer, PagedColumn


def make_paged(rows=100, page_rows=10, capacity=3):
    fragments = ColumnFragments(list(range(rows)))
    buffer = PageBuffer(capacity)
    return PagedColumn(fragments, buffer, page_rows), buffer


class TestPageBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PageBuffer(0)

    def test_miss_then_hit(self):
        paged, buffer = make_paged()
        paged.get(0)
        assert (buffer.stats.misses, buffer.stats.hits) == (1, 0)
        paged.get(1)  # same page
        assert (buffer.stats.misses, buffer.stats.hits) == (1, 1)

    def test_lru_eviction(self):
        paged, buffer = make_paged(capacity=2)
        paged.get(0)   # page 0
        paged.get(10)  # page 1
        paged.get(20)  # page 2 -> evicts page 0
        assert buffer.stats.evictions == 1
        assert buffer.resident_pages() == 2
        paged.get(0)   # page 0 again: miss
        assert buffer.stats.misses == 4

    def test_lru_recency_updated_on_hit(self):
        paged, buffer = make_paged(capacity=2)
        paged.get(0)
        paged.get(10)
        paged.get(0)    # touch page 0 -> page 1 is now LRU
        paged.get(20)   # evicts page 1
        paged.get(5)    # page 0 still resident: hit
        assert buffer.stats.hits == 2

    def test_values_correct_under_eviction(self):
        paged, buffer = make_paged(rows=55, page_rows=7, capacity=2)
        assert paged.values() == list(range(55))

    def test_hit_ratio(self):
        paged, buffer = make_paged()
        for _ in range(4):
            paged.get(3)
        assert buffer.stats.hit_ratio == pytest.approx(0.75)

    def test_two_columns_share_one_buffer(self):
        buffer = PageBuffer(4)
        a = PagedColumn(ColumnFragments([1, 2, 3]), buffer, 2)
        b = PagedColumn(ColumnFragments([9, 8, 7]), buffer, 2)
        assert a.get(0) == 1 and b.get(0) == 9  # no page-key collision
        assert buffer.stats.misses == 2

    def test_len_delegates(self):
        paged, _ = make_paged(rows=42)
        assert len(paged) == 42

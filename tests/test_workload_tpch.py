"""``workloads/tpch.py`` end to end at tiny scale.

Loads the generator's output into a real database, sanity-checks the
data (row counts, referential relationships the docstring promises,
aggregate plausibility), then runs the paper's full evaluation suite
through ``Database.query`` — each statement twice, so the second run
takes the plan-cache hit path and must agree with the first.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import create_tpch_schema, load_tpch
from repro.workloads.queries import all_suites

SCALE = 0.002


@pytest.fixture(scope="module")
def tpch_db():
    db = Database(wal_enabled=False)
    create_tpch_schema(db)
    counts = load_tpch(db, scale=SCALE)
    # ta/td: the VDM active/draft analogs the Table 4 / Fig. 13 suite uses.
    db.execute("create table ta (key int primary key, a int, ext int)")
    db.execute("create table td (key int primary key, a int, ext int)")
    db.bulk_load("ta", [(i, i * 10, i * 100) for i in range(100)])
    db.bulk_load("td", [(i, i * 10, i * 100) for i in range(100, 120)])
    return db, counts


def test_load_counts_match_tables(tpch_db):
    db, counts = tpch_db
    assert set(counts) == {
        "region", "nation", "customer", "supplier", "part", "partsupp",
        "orders", "lineitem",
    }
    for table, expected in counts.items():
        assert db.query(f"select count(*) as n from {table}").scalar() == expected


def test_referential_sanity(tpch_db):
    """The generator promises referential relationships without FKs."""
    db, _ = tpch_db
    orphans = db.query(
        "select count(*) as n from lineitem "
        "where l_orderkey not in (select o_orderkey from orders)"
    ).scalar()
    assert orphans == 0
    orphans = db.query(
        "select count(*) as n from orders "
        "where o_custkey not in (select c_custkey from customer)"
    ).scalar()
    assert orphans == 0
    orphans = db.query(
        "select count(*) as n from partsupp "
        "where ps_partkey not in (select p_partkey from part)"
    ).scalar()
    assert orphans == 0


def test_aggregate_sanity(tpch_db):
    db, counts = tpch_db
    assert db.query("select sum(o_totalprice) as s from orders").scalar() > 0
    statuses = db.query(
        "select o_orderstatus, count(*) as n from orders group by o_orderstatus"
    )
    assert len(statuses.rows) == 3  # O / F / P
    assert sum(n for _, n in statuses.rows) == counts["orders"]
    per_order = db.query(
        "select count(*) as n from "
        "(select l_orderkey from lineitem group by l_orderkey) g"
    ).scalar()
    assert per_order == counts["orders"]  # every order has >= 1 line item


def test_uaj_preserves_anchor_cardinality(tpch_db):
    """UAJ 1 is a left outer join on the customer PK: exactly one output
    row per order regardless of whether the join is optimized away."""
    db, counts = tpch_db
    suite = all_suites()["table1"]
    result = db.query(suite[0].sql)
    assert len(result.rows) == counts["orders"]


def test_fig6_paging_rowcount(tpch_db):
    db, _ = tpch_db
    result = db.query(all_suites()["table2"][0].sql)
    assert len(result.rows) == 100


@pytest.mark.parametrize(
    "query",
    [q for suite in all_suites().values() for q in suite],
    ids=lambda q: q.name,
)
def test_suite_query_end_to_end_twice(tpch_db, query):
    db, _ = tpch_db
    first = db.query(query.sql)
    second = db.query(query.sql)  # plan-cache hit path
    assert first.column_names == second.column_names
    assert sorted(map(repr, first.rows)) == sorted(map(repr, second.rows))
    assert len(first.rows) > 0

"""Property-based storage tests: encoding round-trips, MVCC vs. a reference
model, rounding laws, and WAL recovery equivalence."""

import decimal

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import Catalog
from repro.catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from repro.datatypes import INTEGER, varchar
from repro.engine.eval import sql_round
from repro.storage import ColumnTable, TransactionManager, WriteAheadLog
from repro.storage.column import ColumnFragments, MainFragment

settings.register_profile(
    "repro-storage",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-storage")

values_st = st.lists(
    st.one_of(st.none(), st.integers(-1000, 1000)), max_size=200
)


@given(values=values_st)
def test_dictionary_encoding_roundtrip(values):
    fragment = MainFragment(values)
    assert fragment.values() == values
    assert fragment.distinct_count() == len({v for v in values if v is not None})


@given(base=values_st, appended=values_st)
def test_fragments_merge_preserves_content(base, appended):
    fragments = ColumnFragments(base)
    for value in appended:
        fragments.append(value)
    before = fragments.values()
    fragments.merge()
    assert fragments.values() == before
    assert fragments.delta_size == 0


@given(
    value=st.decimals(allow_nan=False, allow_infinity=False,
                      min_value=-10**9, max_value=10**9),
    digits=st.integers(-3, 6),
)
def test_round_is_idempotent_and_bounded(value, digits):
    rounded = sql_round(value, digits)
    assert sql_round(rounded, digits) == rounded
    quantum = decimal.Decimal(1).scaleb(-digits)
    assert abs(rounded - value) <= quantum / 2


# -- MVCC against a reference model --------------------------------------------

operations_st = st.lists(
    st.one_of(
        st.tuples(st.just("begin")),
        st.tuples(st.just("insert"), st.integers(0, 3), st.integers(0, 50)),
        st.tuples(st.just("delete"), st.integers(0, 3), st.integers(0, 50)),
        st.tuples(st.just("commit"), st.integers(0, 3)),
        st.tuples(st.just("rollback"), st.integers(0, 3)),
        st.tuples(st.just("snapshot_check"),),
    ),
    max_size=40,
)


@given(operations=operations_st)
def test_mvcc_matches_reference_model(operations):
    """Replay a random schedule against the engine and a naive model that
    tracks per-transaction pending sets; committed state must agree, and a
    snapshot taken at any point must keep seeing its frozen state."""
    txns = TransactionManager()
    schema = TableSchema(
        "m", [ColumnSchema("k", INTEGER, False)], []  # no uniqueness: pure MVCC
    )
    table = ColumnTable(schema, txns)

    committed: list[int] = []          # reference committed multiset
    active = {}                        # slot -> (txn, local inserts, local deletes)
    snapshots = []                     # (txn, frozen multiset)

    def visible(txn):
        columns, _ = table.read_columns(txn, ["k"])
        return sorted(columns[0])

    for operation in operations:
        kind = operation[0]
        if kind == "begin":
            if len(active) < 4:
                slot = min(set(range(4)) - set(active))
                active[slot] = (txns.begin(), [], [])
        elif kind == "insert":
            _, slot, value = operation
            if slot in active:
                txn, inserts, deletes = active[slot]
                table.insert(txn, (value,))
                inserts.append(value)
        elif kind == "delete":
            _, slot, value = operation
            if slot in active:
                txn, inserts, deletes = active[slot]
                target = None
                for row_id in table.visible_row_ids(txn):
                    if table.column("k").get(row_id) == value and (
                        table.deleted_tids[row_id] == 0
                        or table.deleted_tids[row_id] == txn.tid
                    ):
                        if table.deleted_tids[row_id] == txn.tid:
                            continue
                        target = row_id
                        break
                if target is not None:
                    try:
                        table.delete_row(txn, target)
                    except Exception:
                        continue
                    if value in inserts:
                        inserts.remove(value)
                    else:
                        deletes.append(value)
        elif kind == "commit":
            slot = operation[1]
            if slot in active:
                txn, inserts, deletes = active.pop(slot)
                txns.commit(txn)
                for value in deletes:
                    committed.remove(value)
                committed.extend(inserts)
        elif kind == "rollback":
            slot = operation[1]
            if slot in active:
                txn, _, _ = active.pop(slot)
                txns.rollback(txn)
        else:  # snapshot_check
            reader = txns.begin()
            snapshots.append((reader, visible(reader)))

    # Frozen snapshots never move.
    for reader, frozen in snapshots:
        assert visible(reader) == frozen

    # A fresh snapshot agrees with the reference committed state.
    # (In-flight transactions' work is invisible.)
    fresh = txns.begin()
    assert visible(fresh) == sorted(committed)


@given(
    rows=st.lists(st.tuples(st.integers(0, 30), st.text(max_size=4)),
                  max_size=25, unique_by=lambda r: r[0]),
    delete_keys=st.sets(st.integers(0, 30), max_size=10),
)
def test_wal_recovery_reproduces_state(rows, delete_keys):
    def schema():
        return TableSchema(
            "w",
            [ColumnSchema("k", INTEGER, False), ColumnSchema("v", varchar(10))],
            [UniqueConstraint(("k",), True)],
        )

    wal = WriteAheadLog()
    txns = TransactionManager(wal)
    table = ColumnTable(schema(), txns, wal)
    txn = txns.begin()
    row_ids = {}
    for key, value in rows:
        row_ids[key] = table.insert(txn, (key, value))
    txns.commit(txn)
    txn2 = txns.begin()
    for key in delete_keys:
        if key in row_ids:
            table.delete_row(txn2, row_ids[key])
    txns.commit(txn2)
    reader = txns.begin()
    columns, _ = table.read_columns(reader, ["k", "v"])
    original = sorted(zip(*columns)) if columns[0] else []

    txns2 = TransactionManager()
    catalog = Catalog()
    recovered = ColumnTable(schema(), txns2)
    catalog.create_table(recovered)
    wal.recover(catalog, txns2)
    columns2, _ = recovered.read_columns(txns2.begin(), ["k", "v"])
    replayed = sorted(zip(*columns2)) if columns2[0] else []
    assert replayed == original

"""Workload generator tests: TPC-H subset, S/4 sales data, cardinality tool."""

import decimal

import pytest

from repro import Database
from repro.tools import verify_join_cardinalities
from repro.workloads import create_sales_schema, create_tpch_schema, load_sales, load_tpch
from repro.workloads.tpch import TABLES


class TestTpch:
    def test_all_tables_created_and_loaded(self, tpch_db):
        for table in TABLES:
            assert tpch_db.query(f"select count(*) from {table}").scalar() > 0

    def test_primary_keys_declared(self, tpch_db):
        assert tpch_db.catalog.table_schema("orders").primary_key == ("o_orderkey",)
        assert tpch_db.catalog.table_schema("lineitem").primary_key == (
            "l_orderkey", "l_linenumber",
        )

    def test_no_foreign_keys_by_default(self, tpch_db):
        for table in TABLES:
            assert tpch_db.catalog.table_schema(table).foreign_keys == []

    def test_foreign_keys_optional(self):
        db = Database(wal_enabled=False)
        create_tpch_schema(db, with_foreign_keys=True)
        assert db.catalog.table_schema("orders").foreign_keys

    def test_referential_integrity_of_generated_data(self, tpch_db):
        dangling = tpch_db.query(
            "select count(*) from lineitem l left join orders o "
            "on l.l_orderkey = o.o_orderkey where o.o_orderkey is null"
        ).scalar()
        assert dangling == 0

    def test_determinism(self):
        db1, db2 = Database(wal_enabled=False), Database(wal_enabled=False)
        for db in (db1, db2):
            create_tpch_schema(db)
            load_tpch(db, scale=0.001)
        a = db1.query("select sum(o_totalprice) from orders").scalar()
        b = db2.query("select sum(o_totalprice) from orders").scalar()
        assert a == b

    def test_revenue_query_runs(self, tpch_db):
        revenue = tpch_db.query(
            "select sum(l_extendedprice * (1 - l_discount)) from lineitem"
        ).scalar()
        assert isinstance(revenue, decimal.Decimal) and revenue > 0


class TestSales:
    def test_loaded(self, sales_db):
        assert sales_db.query("select count(*) from salesorderitem").scalar() > 400

    def test_businessplace_has_no_constraints_but_unique_data(self, sales_db):
        schema = sales_db.catalog.table_schema("businessplace")
        assert schema.unique_constraints == []
        report = verify_join_cardinalities(
            sales_db,
            "select s.so_id from salesorderitem s "
            "left outer many to one join businessplace p on s.place_id = p.place_id",
        )
        assert report.ok

    def test_exchange_rates_by_date(self, sales_db):
        rate = sales_db.query(
            "select rate from exchangerate where fromcurr = 'USD' "
            "and ratedate = cast('2025-06-03' as date)"
        ).scalar()
        assert rate is not None


class TestCardinalityTool:
    def test_ok_report_summary(self, tpch_db):
        report = verify_join_cardinalities(
            tpch_db,
            "select o.o_orderkey from orders o "
            "left outer many to one join customer c on o.o_custkey = c.c_custkey",
        )
        assert report.ok and "OK" in report.summary()

    def test_violation_detected(self, tpch_db):
        report = verify_join_cardinalities(
            tpch_db,
            "select l.l_orderkey from orders o "
            "left outer one to many join lineitem l on o.o_orderkey = l.l_orderkey "
            "left outer many to one join customer c on o.o_custkey = c.c_nationkey",
        )
        assert not report.ok
        assert report.violations[0].kind == "duplicate_key"

    def test_exact_one_missing_match(self, tpch_db):
        tpch_db.execute("create table onecust (k int primary key)")
        tpch_db.execute("insert into onecust values (0)")
        report = verify_join_cardinalities(
            tpch_db,
            "select o.o_orderkey from orders o "
            "inner many to exact one join onecust s on o.o_custkey = s.k",
        )
        assert any(v.kind == "missing_match" for v in report.violations)

    def test_undeclared_joins_not_checked(self, tpch_db):
        report = verify_join_cardinalities(
            tpch_db,
            "select o.o_orderkey from orders o "
            "join customer c on o.o_custkey = c.c_custkey",
        )
        assert report.joins_checked == 0 and report.ok

"""EXPLAIN rendering and plan-statistics tests (incl. DAG sharing)."""

import pytest

from repro import Database
from repro.algebra import explain, plan_stats
from repro.algebra.printer import structural_signature


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (k int primary key, a int, b varchar(5))")
    database.execute("create table u (k int primary key, x int)")
    return database


class TestExplain:
    def test_tree_indentation(self, db):
        text = db.explain("select k from t where a > 1", optimize=False)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    Scan(t)")

    def test_show_columns(self, db):
        plan = db.bind("select k from t")
        text = explain(plan, show_columns=True)
        assert "-> [k#" in text

    def test_join_label_contains_condition(self, db):
        text = db.explain(
            "select 1 as x from t join u on t.k = u.k", optimize=False
        )
        assert "InnerJoin on" in text

    def test_cardinality_shown(self, db):
        text = db.explain(
            "select 1 as x from t left outer many to one join u on t.k = u.k",
            optimize=False,
        )
        assert "MANY TO ONE" in text

    def test_case_join_label(self, db):
        text = db.explain(
            "select 1 as x from t case join u on t.k = u.k", optimize=False
        )
        assert "CaseJoin" in text


class TestPlanStats:
    def test_counts(self, db):
        stats = db.plan_statistics(
            "select a, count(*) from t join u on t.k = u.k "
            "where t.b = 'x' group by a order by a limit 3",
            optimize=False,
        )
        assert stats.table_instances == 2
        assert stats.joins == 1
        assert stats.group_bys == 1
        assert stats.filters == 1
        assert stats.sorts == 1
        assert stats.limits == 1

    def test_union_counts(self, db):
        stats = db.plan_statistics(
            "select k from t union all select k from t union all select k from u",
            optimize=False,
        )
        assert stats.union_alls == 1
        assert stats.union_all_children == 3

    def test_summary_text(self, db):
        summary = db.plan_statistics("select k from t", optimize=False).summary()
        assert "table instances" in summary and "joins" in summary


class TestSharing:
    def test_identical_subqueries_share(self, db):
        db.execute("create view sub as select t.k, u.x from t join u on t.k = u.k")
        stats = db.plan_statistics(
            "select a.k from sub a join sub b on a.k = b.k", optimize=False
        )
        # tree: 4 scans; DAG: the two identical `sub` subtrees share -> 2
        assert stats.table_instances == 4
        assert stats.shared_table_instances == 2
        assert stats.joins == 3
        assert stats.shared_joins == 2  # the inner join of `sub` counted once

    def test_bare_scans_do_not_share(self, db):
        stats = db.plan_statistics(
            "select a.k from t a join t b on a.k = b.k", optimize=False
        )
        # the paper counts repeated table instances separately
        assert stats.shared_table_instances == 2

    def test_different_filters_do_not_share(self, db):
        stats = db.plan_statistics(
            "select * from (select k from t where a > 1) x "
            "join (select k from t where a > 2) y on x.k = y.k",
            optimize=False,
        )
        assert stats.shared_table_instances == 2


class TestStructuralSignature:
    def test_cid_erasure(self, db):
        plan_a = db.bind("select k from t where a = 1")
        plan_b = db.bind("select k from t where a = 1")
        assert structural_signature(plan_a) == structural_signature(plan_b)

    def test_different_constants_differ(self, db):
        plan_a = db.bind("select k from t where a = 1")
        plan_b = db.bind("select k from t where a = 2")
        assert structural_signature(plan_a) != structural_signature(plan_b)

    def test_different_tables_differ(self, db):
        plan_a = db.bind("select k from t")
        plan_b = db.bind("select k from u")
        assert structural_signature(plan_a) != structural_signature(plan_b)

"""Perf-history harness: append/load round-trip and regression detection."""

import json

import pytest

from repro.bench.history import (
    MAX_ENTRIES,
    append_run,
    diff_last_two,
    load_history,
    summarize_benchmarks,
)


def _entry(run_at: str, **medians) -> dict:
    return {
        "run_at": run_at,
        "benchmarks": {
            name: {"median_s": median, "mean_s": median, "rounds": 5}
            for name, median in medians.items()
        },
    }


class TestHistoryFile:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.json") == []

    def test_append_round_trips(self, tmp_path):
        path = tmp_path / "h.json"
        append_run(_entry("r1", uaj=0.010), path)
        append_run(_entry("r2", uaj=0.011), path)
        history = load_history(path)
        assert [e["run_at"] for e in history] == ["r1", "r2"]
        assert history[0]["benchmarks"]["uaj"]["median_s"] == 0.010

    def test_run_at_stamped_when_absent(self, tmp_path):
        path = tmp_path / "h.json"
        append_run({"benchmarks": {}}, path)
        (entry,) = load_history(path)
        assert entry["run_at"]   # ISO timestamp added

    def test_file_ring_buffers(self, tmp_path):
        path = tmp_path / "h.json"
        for i in range(MAX_ENTRIES + 5):
            append_run(_entry(f"r{i}"), path)
        history = load_history(path)
        assert len(history) == MAX_ENTRIES
        assert history[0]["run_at"] == "r5"

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError, match="JSON list"):
            load_history(path)


class TestSummarize:
    def test_benchmarks_without_stats_record_null(self):
        class Bare:
            fullname = "bench_x.py::test_y"
            stats = None

        out = summarize_benchmarks([Bare()])
        assert out["bench_x.py::test_y"] == {
            "median_s": None, "mean_s": None, "rounds": 0,
        }

    def test_benchmarks_with_stats(self):
        class Stats:
            data = [0.01, 0.02, 0.03]
            median = 0.02
            mean = 0.02

        class Bench:
            fullname = "bench_x.py::test_y"
            stats = Stats()

        out = summarize_benchmarks([Bench()])
        assert out["bench_x.py::test_y"]["median_s"] == 0.02
        assert out["bench_x.py::test_y"]["rounds"] == 3


class TestDiff:
    def test_needs_two_entries(self):
        with pytest.raises(ValueError, match="at least two"):
            diff_last_two([_entry("only")])

    def test_regression_flagged(self):
        history = [_entry("old", uaj=0.010, asj=0.020),
                   _entry("new", uaj=0.013, asj=0.020)]
        report = diff_last_two(history, threshold=0.20)
        assert [d.name for d in report.regressions] == ["uaj"]
        assert report.regressions[0].delta_pct == pytest.approx(30.0)
        assert "REGRESSION" in report.render()
        assert "1 REGRESSION(S)" in report.render()

    def test_within_threshold_passes(self):
        history = [_entry("old", uaj=0.010), _entry("new", uaj=0.011)]
        report = diff_last_two(history, threshold=0.20)
        assert not report.regressions
        assert "no regressions" in report.render()

    def test_improvement_flagged(self):
        history = [_entry("old", uaj=0.010), _entry("new", uaj=0.005)]
        report = diff_last_two(history, threshold=0.20)
        assert [d.name for d in report.improvements] == ["uaj"]
        assert "improved" in report.render()

    def test_null_timings_skipped(self):
        history = [_entry("old", uaj=0.010, smoke=None),
                   _entry("new", uaj=0.010, smoke=0.003)]
        report = diff_last_two(history, threshold=0.20)
        assert report.skipped == ["smoke"]
        assert [d.name for d in report.deltas] == ["uaj"]
        assert "skipped" in report.render()

    def test_only_common_benchmarks_compared(self):
        history = [_entry("old", uaj=0.010, gone=0.5),
                   _entry("new", uaj=0.010, added=0.5)]
        report = diff_last_two(history, threshold=0.20)
        assert [d.name for d in report.deltas] == ["uaj"]

    def test_uses_last_two_of_longer_history(self):
        history = [_entry("r1", uaj=1.0), _entry("r2", uaj=0.010),
                   _entry("r3", uaj=0.010)]
        report = diff_last_two(history, threshold=0.20)
        assert report.old_run_at == "r2" and report.new_run_at == "r3"
        assert not report.regressions

"""Graceful degradation: rule sandbox, timeouts, retries, health, and
the robustness counters' export surface."""

import json
import threading
import urllib.request

import pytest

from repro.database import Database
from repro.errors import ConstraintError, QueryTimeoutError, TransactionError
from repro.faults import SimulatedCrash
from repro.observability import (
    MetricsServer,
    render_metrics_json,
    render_prometheus,
)
from repro.optimizer import pipeline
from repro.optimizer.pipeline import RuleFailureWarning


def demo_db():
    db = Database()
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    return db


class TestRuleSandbox:
    def test_raising_rule_degrades_not_fails(self, monkeypatch):
        db = demo_db()
        baseline = sorted(db.query("select id, v from t where id > 1").rows)

        def broken(plan, sctx):
            raise RuntimeError("rule bug")

        monkeypatch.setattr(pipeline, "cleanup_plan", broken)
        with pytest.warns(RuleFailureWarning, match="cleanup"):
            degraded = sorted(db.query("select id, v from t where id > 1").rows)
        assert degraded == baseline  # fallback plan, correct answer
        assert db.metrics.counter("optimizer.rule_failures").value > 0
        assert db.health()["status"] == "degraded"

    def test_fault_point_drives_sandbox(self):
        db = demo_db()
        db.faults.arm("optimizer.rule", match={"rule": "simplify"})
        with pytest.warns(RuleFailureWarning, match="simplify"):
            rows = db.query("select count(*) from t").scalar()
        assert rows == 3
        db.faults.disarm()

    def test_sandbox_under_tracing(self, monkeypatch):
        db = demo_db()
        db.tracing = True

        def broken(plan, sctx):
            raise ValueError("boom")

        monkeypatch.setattr(pipeline, "cleanup_plan", broken)
        with pytest.warns(RuleFailureWarning):
            result = db.query("select id from t where id = 2")
        assert result.rows == [(2,)]
        warnings_logged = db.last_trace.events_of("warning")
        assert any("failed" in event.name for event in warnings_logged)

    def test_simulated_crash_escapes_sandbox(self):
        db = demo_db()
        db.faults.arm("optimizer.rule", crash=True, times=1)
        with pytest.raises(SimulatedCrash):
            db.query("select id from t")


class TestTimeout:
    def test_deadline_exceeded_raises_and_counts(self):
        db = demo_db()
        with pytest.raises(QueryTimeoutError):
            db.query("select id from t", timeout=-1.0)  # already expired
        assert db.metrics.counter("query.timeouts").value == 1

    def test_generous_deadline_passes(self):
        db = demo_db()
        result = db.query("select count(*) from t", timeout=60.0)
        assert result.scalar() == 3
        assert db.metrics.counter("query.timeouts").value == 0

    def test_no_timeout_by_default(self):
        db = demo_db()
        assert db.query("select count(*) from t").scalar() == 3


class TestRetry:
    def test_commits_on_first_success(self):
        db = demo_db()
        result = db.run_with_retry(
            lambda txn: db.execute("insert into t values (4, 40)", txn)
        )
        assert result == 1
        assert db.query("select count(*) from t").scalar() == 4
        assert db.metrics.counter("txn.conflict_retries").value == 0

    def test_retries_conflicts_with_backoff(self):
        db = demo_db()
        delays = []
        attempts = {"n": 0}

        def flaky(txn):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ConstraintError("write-write conflict")
            return db.execute("insert into t values (5, 50)", txn)

        result = db.run_with_retry(flaky, sleep=delays.append)
        assert result == 1 and attempts["n"] == 3
        assert db.metrics.counter("txn.conflict_retries").value == 2
        assert len(delays) == 2 and delays[1] > delays[0]  # exponential
        assert db.query("select v from t where id = 5").rows == [(50,)]

    def test_exhausts_attempts_and_reraises(self):
        db = demo_db()

        def always_conflicts(txn):
            raise TransactionError("conflict")

        with pytest.raises(TransactionError, match="conflict"):
            db.run_with_retry(always_conflicts, attempts=3, sleep=lambda s: None)
        assert db.metrics.counter("txn.conflict_retries").value == 2
        assert db.txn_manager.active_count == 0  # everything rolled back

    def test_non_retryable_error_propagates_immediately(self):
        db = demo_db()
        calls = {"n": 0}

        def broken(txn):
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            db.run_with_retry(broken, sleep=lambda s: None)
        assert calls["n"] == 1
        assert db.txn_manager.active_count == 0

    def test_backoff_is_capped(self):
        db = demo_db()
        delays = []

        def always(txn):
            raise TransactionError("conflict")

        with pytest.raises(TransactionError):
            db.run_with_retry(
                always, attempts=10, base_delay_s=0.1, max_delay_s=0.2,
                sleep=delays.append,
            )
        assert max(delays) <= 0.2


class TestHealth:
    def test_ok_by_default(self):
        db = demo_db()
        assert db.health() == {"status": "ok", "reasons": []}

    def test_degraded_while_fault_armed(self):
        db = demo_db()
        db.faults.arm("wal.append")
        health = db.health()
        assert health["status"] == "degraded"
        assert any("wal.append" in r for r in health["reasons"])
        db.faults.disarm()
        assert db.health()["status"] == "ok"

    def test_healthz_endpoint_reports_degraded(self):
        db = demo_db()
        server = MetricsServer(db, port=0).start()
        try:
            body = urllib.request.urlopen(f"{server.url}/healthz").read().decode()
            assert body.startswith("ok")
            db.faults.arm("storage.insert")
            body = urllib.request.urlopen(f"{server.url}/healthz").read().decode()
            assert body.startswith("degraded")
            assert "storage.insert" in body
        finally:
            server.close()


ROBUSTNESS_COUNTERS = (
    "wal.fsyncs",
    "wal.checkpoints",
    "wal.torn_tail_truncations",
    "optimizer.rule_failures",
    "txn.conflict_retries",
    "query.timeouts",
    "faults.injected",
)


class TestCounterExport:
    def test_all_robustness_counters_exported(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))  # durable WAL registers its trio
        db.execute("create table t (id int primary key)")
        prom = render_prometheus(db.metrics)
        snapshot = json.loads(render_metrics_json(db.metrics))
        for name in ROBUSTNESS_COUNTERS:
            assert name in snapshot, name
            assert f"repro_{name.replace('.', '_')}" in prom, name
        db.close()

    def test_counters_move_and_export(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        db.checkpoint()
        db.faults.arm("storage.insert", times=1)
        with pytest.raises(Exception):
            db.execute("insert into t values (2)")
        with pytest.raises(QueryTimeoutError):
            db.query("select id from t", timeout=-1.0)
        snapshot = json.loads(render_metrics_json(db.metrics))
        assert snapshot["wal.fsyncs"] > 0
        assert snapshot["wal.checkpoints"] == 1
        assert snapshot["faults.injected"] == 1
        assert snapshot["query.timeouts"] == 1
        db.close()


class TestMvccThreadSafety:
    def test_concurrent_transactions_stress(self):
        db = demo_db()
        workers, per_worker = 8, 50
        errors = []
        barrier = threading.Barrier(workers)

        def worker(base):
            try:
                barrier.wait()
                for i in range(per_worker):
                    txn = db.begin()
                    db.execute(
                        f"insert into t values ({base + i}, {i})", txn
                    )
                    if i % 7 == 0:
                        db.rollback(txn)
                    else:
                        db.commit(txn)
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1000 * (w + 1),))
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert db.txn_manager.active_count == 0
        committed = workers * sum(1 for i in range(per_worker) if i % 7 != 0)
        assert db.query("select count(*) from t").scalar() == 3 + committed
        # TID allocation never produced duplicates: every insert landed.
        ids = db.query("select id from t").column("id")
        assert len(ids) == len(set(ids))

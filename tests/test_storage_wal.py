"""Write-ahead log and recovery tests."""

import pytest

from repro.catalog import Catalog
from repro.catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from repro.datatypes import INTEGER, decimal_type, varchar
from repro.storage import ColumnTable, TransactionManager, WriteAheadLog


def schema(name="t"):
    return TableSchema(
        name,
        [ColumnSchema("id", INTEGER, False),
         ColumnSchema("v", varchar(20)),
         ColumnSchema("amt", decimal_type(10, 2))],
        [UniqueConstraint(("id",), True)],
    )


def fresh_system(wal=None):
    wal = wal if wal is not None else WriteAheadLog()
    txns = TransactionManager(wal)
    table = ColumnTable(schema(), txns, wal)
    return wal, txns, table


class TestLogging:
    def test_insert_logged_before_commit(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, "a", "10.50"))
        kinds = [r.kind for r in wal.records()]
        assert kinds == ["insert"]
        txns.commit(txn)
        assert [r.kind for r in wal.records()] == ["insert", "commit"]

    def test_abort_logged(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, "a", "1.00"))
        txns.rollback(txn)
        assert [r.kind for r in wal.records()] == ["insert", "abort"]

    def test_lsns_monotonic(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        for i in range(5):
            table.insert(txn, (i, "x", "1.00"))
        txns.commit(txn)
        lsns = [r.lsn for r in wal.records()]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)

    def test_delete_logged(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        row = table.insert(txn, (1, "a", "1.00"))
        table.delete_row(txn, row)
        txns.commit(txn)
        assert [r.kind for r in wal.records()] == ["insert", "delete", "commit"]


def recover_into_fresh(wal):
    txns = TransactionManager()
    catalog = Catalog()
    table = ColumnTable(schema(), txns)
    catalog.create_table(table)
    replayed = wal.recover(catalog, txns)
    return replayed, table, txns


class TestRecovery:
    def test_committed_work_survives(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, "a", "10.50"))
        table.insert(txn, (2, "b", "20.00"))
        txns.commit(txn)
        replayed, recovered, txns2 = recover_into_fresh(wal)
        assert replayed == {"t": 2}
        columns, n = recovered.read_columns(txns2.begin(), ["id", "v"])
        assert n == 2 and sorted(zip(*columns)) == [(1, "a"), (2, "b")]

    def test_uncommitted_work_discarded(self):
        wal, txns, table = fresh_system()
        committed = txns.begin()
        table.insert(committed, (1, "a", "1.00"))
        txns.commit(committed)
        in_flight = txns.begin()
        table.insert(in_flight, (2, "lost", "2.00"))
        # crash: no commit record
        _, recovered, txns2 = recover_into_fresh(wal)
        columns, n = recovered.read_columns(txns2.begin(), ["id"])
        assert (n, columns[0]) == (1, [1])

    def test_aborted_work_discarded(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, "a", "1.00"))
        txns.rollback(txn)
        _, recovered, txns2 = recover_into_fresh(wal)
        assert recovered.visible_row_count(txns2.begin()) == 0

    def test_deletes_replayed(self):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, "a", "1.00"))
        table.insert(txn, (2, "b", "2.00"))
        txns.commit(txn)
        txn2 = txns.begin()
        table.delete_row(txn2, 0)
        txns.commit(txn2)
        _, recovered, txns2 = recover_into_fresh(wal)
        columns, n = recovered.read_columns(txns2.begin(), ["id"])
        assert (n, columns[0]) == (1, [2])

    def test_row_id_remapping_with_interleaved_uncommitted(self):
        """Deletes must resolve even when uncommitted inserts consumed
        row ids in the original execution."""
        wal, txns, table = fresh_system()
        ghost = txns.begin()
        table.insert(ghost, (99, "ghost", "0.00"))  # row id 0, never commits
        txn = txns.begin()
        row = table.insert(txn, (1, "a", "1.00"))   # row id 1
        txns.commit(txn)
        txn2 = txns.begin()
        table.delete_row(txn2, row)
        txns.commit(txn2)
        _, recovered, txns2 = recover_into_fresh(wal)
        assert recovered.visible_row_count(txns2.begin()) == 0

    def test_decimal_and_none_payload_roundtrip(self, tmp_path):
        wal, txns, table = fresh_system()
        txn = txns.begin()
        table.insert(txn, (1, None, "12.34"))
        txns.commit(txn)
        path = str(tmp_path / "wal.jsonl")
        wal.dump_jsonl(path)
        loaded = WriteAheadLog.load_jsonl(path)
        assert len(loaded) == len(wal)
        _, recovered, txns2 = recover_into_fresh(loaded)
        columns, _ = recovered.read_columns(txns2.begin(), ["v", "amt"])
        assert columns[0] == [None]
        assert str(columns[1][0]) == "12.34"

    def test_committed_tids(self):
        wal, txns, table = fresh_system()
        a = txns.begin()
        table.insert(a, (1, "x", "1.00"))
        txns.commit(a)
        b = txns.begin()
        table.insert(b, (2, "y", "1.00"))
        txns.rollback(b)
        assert wal.committed_tids() == {a.tid}

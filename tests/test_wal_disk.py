"""Durable WAL: framing, segments, checkpoints, torn tails, recovery."""

import json
import os
import struct
import zlib

import pytest

from repro.database import Database
from repro.errors import TransactionError
from repro.storage import DiskWriteAheadLog, WriteAheadLog
from repro.storage.wal_disk import FSYNC_POLICIES, _frame, _iter_frames


def segments(wal_dir):
    return sorted(n for n in os.listdir(wal_dir)
                  if n.startswith("wal-") and n.endswith(".seg"))


def checkpoints(wal_dir):
    return sorted(n for n in os.listdir(wal_dir)
                  if n.startswith("checkpoint-") and n.endswith(".ckpt"))


def rows_of(db, table="t"):
    return sorted(db.query(f"select id, v from {table}").rows)


class TestFraming:
    def test_frame_round_trip(self):
        data = _frame(b"alpha") + _frame(b"beta")
        assert [p for _, p in _iter_frames(data)] == [b"alpha", b"beta"]

    def test_iter_frames_stops_at_bad_crc(self):
        good = _frame(b"alpha")
        bad = struct.pack("<II", 4, zlib.crc32(b"good")) + b"evil"
        assert [p for _, p in _iter_frames(good + bad + _frame(b"beta"))] == [b"alpha"]

    def test_iter_frames_stops_at_short_payload(self):
        torn = _frame(b"alpha") + struct.pack("<II", 100, 0) + b"short"
        ends = [end for end, _ in _iter_frames(torn)]
        assert ends == [len(_frame(b"alpha"))]

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            DiskWriteAheadLog(str(tmp_path), fsync="sometimes")
        assert set(FSYNC_POLICIES) == {"always", "commit", "never"}


class TestDurableRoundTrip:
    @pytest.mark.parametrize("fsync", FSYNC_POLICIES)
    def test_committed_rows_survive(self, tmp_path, fsync):
        db = Database(wal_dir=str(tmp_path), fsync=fsync)
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10), (2, 20)")
        db.close()
        recovered = Database.recover(str(tmp_path), fsync=fsync)
        assert rows_of(recovered) == [(1, 10), (2, 20)]
        recovered.close()

    def test_uncommitted_transaction_dropped(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        txn = db.begin()
        db.execute("insert into t values (2, 20)", txn)
        db.close()  # crash before commit
        recovered = Database.recover(str(tmp_path))
        assert rows_of(recovered) == [(1, 10)]
        recovered.close()

    def test_deletes_and_updates_replay(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
        db.execute("delete from t where id = 2")
        db.execute("update t set v = 99 where id = 3")
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert rows_of(recovered) == [(1, 10), (3, 99)]
        recovered.close()

    def test_bulk_load_survives_recovery(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.bulk_load("t", [(i, i * 10) for i in range(50)])
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert recovered.query("select count(*) from t").scalar() == 50
        recovered.close()

    def test_views_and_drops_replay(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("create table gone (id int primary key)")
        db.execute("insert into t values (1, 5)")
        db.execute("create view doubled as select id, v * 2 as v2 from t")
        db.execute("drop table gone")
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert recovered.query("select v2 from doubled").rows == [(10,)]
        assert not recovered.catalog.has_table("gone")
        recovered.close()

    def test_work_after_recovery_is_durable(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        db.close()
        mid = Database.recover(str(tmp_path))
        mid.execute("insert into t values (2, 20)")
        mid.execute("delete from t where id = 1")
        mid.close()
        final = Database.recover(str(tmp_path))
        assert rows_of(final) == [(2, 20)]
        final.close()


class TestCheckpoint:
    def test_checkpoint_truncates_log(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10), (2, 20)")
        assert len(db.wal.records()) > 0
        db.checkpoint()
        assert db.wal.records() == []
        assert len(checkpoints(str(tmp_path))) == 1
        assert db.metrics.counter("wal.checkpoints").value == 1
        db.execute("insert into t values (3, 30)")
        db.close()
        recovered = Database.recover(str(tmp_path))
        assert rows_of(recovered) == [(1, 10), (2, 20), (3, 30)]
        recovered.close()

    def test_checkpoint_requires_durable_wal(self):
        db = Database()
        with pytest.raises(TransactionError, match="durable WAL"):
            db.checkpoint()

    def test_checkpoint_refuses_active_transactions(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        txn = db.begin()
        db.execute("insert into t values (1, 1)", txn)
        with pytest.raises(TransactionError, match="active transactions"):
            db.checkpoint()
        db.commit(txn)
        db.checkpoint()  # fine once the transaction is closed
        db.close()

    def test_recovery_ends_with_fresh_checkpoint(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        db.close()
        recovered = Database.recover(str(tmp_path))
        # Replay compacts row ids; a fresh checkpoint keeps the log from
        # mixing pre- and post-recovery id spaces.
        assert len(checkpoints(str(tmp_path))) == 1
        assert recovered.wal.records() == []
        recovered.close()

    def test_corrupt_checkpoint_falls_back(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        db.checkpoint()
        db.execute("insert into t values (2, 20)")
        db.close()
        (ckpt,) = checkpoints(str(tmp_path))
        path = os.path.join(str(tmp_path), ckpt)
        with open(path, "r+b") as handle:
            handle.seek(12)
            handle.write(b"\x00\x00\x00\x00")  # corrupt the payload
        with pytest.warns(UserWarning, match="corrupt"):
            recovered = Database.recover(str(tmp_path))
        # The only checkpoint is gone — and with it the DDL covering the
        # post-checkpoint records.  The engine still comes up, loudly
        # degraded, rather than refusing to start.
        assert recovered.metrics.counter("wal.torn_tail_truncations").value >= 1
        assert recovered.metrics.counter("wal.replay_skips").value >= 1
        assert recovered.health()["status"] == "degraded"
        assert not recovered.catalog.has_table("t")
        recovered.close()


class TestTornTail:
    def test_garbage_tail_truncated(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        seg_path = db.wal._segment_path
        db.close()
        with open(seg_path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn by a crash")
        with pytest.warns(UserWarning, match="torn tail"):
            recovered = Database.recover(str(tmp_path))
        assert rows_of(recovered) == [(1, 10)]
        assert recovered.metrics.counter("wal.torn_tail_truncations").value == 1
        recovered.close()

    def test_truncation_is_persistent(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        seg_path = db.wal._segment_path
        clean_size = os.path.getsize(seg_path)
        db.close()
        with open(seg_path, "ab") as handle:
            handle.write(b"garbage")
        # checkpoint_after=False keeps the old segments around so the
        # in-place truncation is observable.
        with pytest.warns(UserWarning, match="torn tail"):
            recovered = Database.recover(str(tmp_path), checkpoint_after=False)
        recovered.close()
        assert os.path.getsize(seg_path) == clean_size

    def test_segments_after_tear_ignored(self, tmp_path):
        wal = DiskWriteAheadLog(str(tmp_path), fsync="never")
        wal.log_insert(0, "t", (1,), 0)
        wal.close()
        torn = os.path.join(str(tmp_path), segments(str(tmp_path))[0])
        with open(torn, "ab") as handle:
            handle.write(b"XX")
        bogus = os.path.join(str(tmp_path), "wal-00000099.seg")
        with open(bogus, "wb") as handle:
            handle.write(_frame(json.dumps(
                {"lsn": 9, "tid": 9, "kind": "insert", "table": "t",
                 "payload": [9], "row_id": 9}).encode()))
        with pytest.warns(UserWarning, match="follows a torn tail"):
            reloaded = DiskWriteAheadLog(str(tmp_path), fsync="never")
        assert [r.lsn for r in reloaded.records()] == [1]
        reloaded.close()


class TestSegments:
    def test_segment_rolls_at_size_limit(self, tmp_path):
        wal = DiskWriteAheadLog(str(tmp_path), fsync="never", segment_bytes=256)
        for i in range(20):
            wal.log_insert(0, "t", (i, "x" * 30), i)
        wal.close()
        assert len(segments(str(tmp_path))) > 1
        reloaded = DiskWriteAheadLog(str(tmp_path), fsync="never")
        assert len(reloaded.records()) == 20
        reloaded.close()

    def test_fresh_segment_per_attach(self, tmp_path):
        wal = DiskWriteAheadLog(str(tmp_path), fsync="never")
        wal.log_insert(0, "t", (1,), 0)
        wal.close()
        second = DiskWriteAheadLog(str(tmp_path), fsync="never")
        second.log_insert(0, "t", (2,), 1)
        second.close()
        assert len(segments(str(tmp_path))) == 2
        reloaded = DiskWriteAheadLog(str(tmp_path), fsync="never")
        assert [r.payload for r in reloaded.records()] == [(1,), (2,)]
        reloaded.close()

    def test_fsync_counter(self, tmp_path):
        db = Database(wal_dir=str(tmp_path), fsync="commit")
        db.execute("create table t (id int primary key)")
        before = db.metrics.counter("wal.fsyncs").value
        db.execute("insert into t values (1)")
        assert db.metrics.counter("wal.fsyncs").value == before + 1  # commit only
        db.close()


class TestJsonlHardening:
    def _dump(self, tmp_path):
        wal, = [WriteAheadLog()]
        wal.log_insert(1, "t", (1, "a"), 0)
        wal.log_commit(1)
        path = str(tmp_path / "wal.jsonl")
        wal.dump_jsonl(path)
        return path

    def test_round_trip(self, tmp_path):
        path = self._dump(tmp_path)
        loaded = WriteAheadLog.load_jsonl(path)
        assert [r.kind for r in loaded.records()] == ["insert", "commit"]

    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        path = self._dump(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 3, "tid": 2, "kind": "ins')  # torn write
        with pytest.warns(UserWarning, match="torn final line"):
            loaded = WriteAheadLog.load_jsonl(path)
        assert [r.kind for r in loaded.records()] == ["insert", "commit"]

    def test_malformed_middle_line_raises_transaction_error(self, tmp_path):
        path = self._dump(tmp_path)
        lines = open(path, encoding="utf-8").readlines()
        lines.insert(1, "not json at all\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(TransactionError, match="malformed WAL record at .*:2"):
            WriteAheadLog.load_jsonl(path)

    def test_missing_key_middle_line_raises(self, tmp_path):
        path = self._dump(tmp_path)
        lines = open(path, encoding="utf-8").readlines()
        lines.insert(1, '{"lsn": 99}\n')
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(TransactionError, match="malformed"):
            WriteAheadLog.load_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = self._dump(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        loaded = WriteAheadLog.load_jsonl(path)
        assert len(loaded.records()) == 2

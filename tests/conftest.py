"""Shared fixtures.

``db``            — a fresh empty database per test.
``tpch_db``       — module-scoped TPC-H database (small deterministic scale).
``vdm_tables_db`` — tpch_db plus the paper's ta/td active/draft tables.
``sales_db``      — module-scoped §7 sales workload.
``journal_db``    — session-scoped JournalEntryItemBrowser model (read-only!).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import create_sales_schema, create_tpch_schema, load_sales, load_tpch


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture(scope="module")
def tpch_db() -> Database:
    database = Database(wal_enabled=False)
    create_tpch_schema(database)
    load_tpch(database, scale=0.002)
    return database


def add_vdm_tables(database: Database) -> None:
    """The ta/td active/draft pair used by the Fig. 12/13 queries."""
    database.execute("create table ta (key int primary key, a int, ext int)")
    database.execute("create table td (key int primary key, a int, ext int)")
    database.bulk_load("ta", [(i, i * 10, i * 100) for i in range(20)])
    database.bulk_load("td", [(i, i * 10, i * 100) for i in range(20, 27)])


@pytest.fixture(scope="module")
def vdm_tables_db() -> Database:
    database = Database(wal_enabled=False)
    create_tpch_schema(database)
    load_tpch(database, scale=0.002)
    add_vdm_tables(database)
    return database


@pytest.fixture(scope="module")
def sales_db() -> Database:
    database = Database(wal_enabled=False)
    create_sales_schema(database)
    load_sales(database, orders=400)
    return database


@pytest.fixture(scope="session")
def journal_db():
    from repro.vdm.journal import JournalModel

    database = Database(wal_enabled=False)
    model = JournalModel(database, rows=400).build()
    return database, model


def rows_equal(a, b) -> bool:
    """Order-insensitive result comparison (repr-normalized for Decimals)."""
    return sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))


def assert_equivalent(database: Database, sql: str, profile: str = "hana") -> None:
    """The central optimizer-correctness check: optimized and unoptimized
    plans must return the same multiset of rows."""
    old = database.profile
    database.set_profile(profile)
    try:
        optimized = database.query(sql)
        unoptimized = database.query(sql, optimize=False)
    finally:
        database.set_profile(old)
    assert sorted(map(repr, optimized.rows)) == sorted(map(repr, unoptimized.rows)), (
        f"optimized result differs for {sql!r}"
    )

"""Serving primitives: admission control, token buckets, circuit breakers.

The load-bearing regression here is **queue-wait-inclusive deadlines**:
a statement's timeout is stamped at submission, so time spent waiting in
the admission queue counts against the budget and a statement that spent
its whole budget queued fails with ``QueryTimeoutError`` without ever
executing (ISSUE 8 satellite 1).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.database import Database
from repro.errors import (
    CircuitOpenError,
    OverloadError,
    QueryTimeoutError,
    RateLimitedError,
)
from repro.serving import AdmissionController, CircuitBreaker, TokenBucket


# -- AdmissionController -----------------------------------------------------


def test_admission_fast_path_no_queue():
    controller = AdmissionController(max_concurrent=2, max_queue=4)
    assert controller.acquire() == 0.0
    assert controller.running == 1
    controller.release(0.01)
    assert controller.running == 0


def test_admission_sheds_when_queue_full():
    controller = AdmissionController(max_concurrent=1, max_queue=0)
    controller.acquire()
    with pytest.raises(OverloadError) as excinfo:
        controller.acquire()
    assert excinfo.value.retry_after is not None
    assert excinfo.value.retry_after >= 0.05
    controller.release()


def test_admission_run_releases_on_error():
    controller = AdmissionController(max_concurrent=1, max_queue=0)
    with pytest.raises(ValueError):
        controller.run(lambda: (_ for _ in ()).throw(ValueError("boom")))
    assert controller.running == 0
    controller.run(lambda: None)  # the slot came back


def test_queue_wait_counts_against_deadline():
    """The regression: a statement whose budget is spent queued must fail
    with QueryTimeoutError before executing, not run late."""
    controller = AdmissionController(max_concurrent=1, max_queue=4)
    release = threading.Event()
    holder_in = threading.Event()

    def hog():
        controller.run(lambda: (holder_in.set(), release.wait(5)))

    holder = threading.Thread(target=hog)
    holder.start()
    assert holder_in.wait(5)

    executed = []
    started = time.monotonic()
    with pytest.raises(QueryTimeoutError, match="admission queue"):
        controller.run(lambda: executed.append(1),
                       deadline=time.monotonic() + 0.1)
    waited = time.monotonic() - started
    assert not executed, "the statement must never run after its deadline"
    assert 0.05 <= waited < 2.0
    release.set()
    holder.join(timeout=5)
    assert controller.running == 0
    assert controller.queued == 0


def test_queued_statement_runs_when_slot_frees_in_time():
    controller = AdmissionController(max_concurrent=1, max_queue=4)
    release = threading.Event()
    holder_in = threading.Event()
    holder = threading.Thread(
        target=lambda: controller.run(lambda: (holder_in.set(), release.wait(5)))
    )
    holder.start()
    assert holder_in.wait(5)

    outcome = []

    def queued():
        outcome.append(
            controller.run(lambda: "ran", deadline=time.monotonic() + 5)
        )

    waiter = threading.Thread(target=queued)
    waiter.start()
    time.sleep(0.05)
    release.set()
    waiter.join(timeout=5)
    holder.join(timeout=5)
    assert outcome == ["ran"]


def test_admission_close_sheds_queued_and_drains_running():
    controller = AdmissionController(max_concurrent=1, max_queue=4)
    release = threading.Event()
    holder_in = threading.Event()
    holder = threading.Thread(
        target=lambda: controller.run(lambda: (holder_in.set(), release.wait(5)))
    )
    holder.start()
    assert holder_in.wait(5)

    shed: list[BaseException] = []

    def queued():
        try:
            controller.run(lambda: "ran")
        except OverloadError as error:
            shed.append(error)

    waiter = threading.Thread(target=queued)
    waiter.start()
    time.sleep(0.05)

    closer_done = []
    closer = threading.Thread(
        target=lambda: closer_done.append(controller.close(drain_timeout=5))
    )
    closer.start()
    time.sleep(0.05)
    release.set()
    for thread in (holder, waiter, closer):
        thread.join(timeout=5)
    assert closer_done == [True], "drain must complete once the holder exits"
    assert len(shed) == 1, "the queued statement is shed, not run"
    with pytest.raises(OverloadError):
        controller.acquire()


def test_admission_close_times_out_on_stuck_statement():
    controller = AdmissionController(max_concurrent=1, max_queue=0)
    release = threading.Event()
    holder = threading.Thread(
        target=lambda: controller.run(lambda: release.wait(10))
    )
    holder.start()
    time.sleep(0.05)
    assert controller.close(drain_timeout=0.1) is False
    release.set()
    holder.join(timeout=5)


def test_admission_metrics(tmp_path):
    db = Database()
    controller = AdmissionController(max_concurrent=1, max_queue=0,
                                     metrics=db.metrics)
    controller.run(lambda: None)
    controller.acquire()
    with pytest.raises(OverloadError):
        controller.acquire()
    controller.release()
    snapshot = db.metrics.snapshot()
    assert snapshot["serving.admitted"] == 2
    assert snapshot["serving.shed"] == 1
    db.close()


# -- Database.query deadline stamped at submission ---------------------------


def test_database_query_deadline_before_execution(tmp_path):
    db = Database()
    db.execute("create table t (id int primary key)")
    db.execute("insert into t values (1)")
    with pytest.raises(QueryTimeoutError, match="before execution began"):
        db.query("select * from t", deadline=time.monotonic() - 0.01)
    entry = db.query_log.last()
    assert entry is not None and entry.status == "timeout"
    db.close()


def test_database_query_deadline_earlier_of_two(tmp_path):
    db = Database()
    db.execute("create table t (id int primary key)")
    # A generous timeout but an already-expired submission deadline: the
    # earlier of the two wins.
    with pytest.raises(QueryTimeoutError):
        db.query("select * from t", timeout=60.0,
                 deadline=time.monotonic() - 0.01)
    # And vice versa: an expired timeout with a generous deadline.
    with pytest.raises(QueryTimeoutError):
        db.query("select * from t", timeout=-0.01,
                 deadline=time.monotonic() + 60.0)
    db.close()


# -- TokenBucket -------------------------------------------------------------


def test_token_bucket_burst_then_limits():
    clock = [0.0]
    bucket = TokenBucket(10.0, burst=2, clock=lambda: clock[0])
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    hint = bucket.try_acquire()
    assert hint > 0, "the burst is exhausted"
    clock[0] += 0.2  # two tokens refill at 10/s
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0


def test_token_bucket_hint_is_time_to_refill():
    clock = [0.0]
    bucket = TokenBucket(2.0, burst=1, clock=lambda: clock[0])
    assert bucket.try_acquire() == 0.0
    hint = bucket.try_acquire()
    assert hint == pytest.approx(0.5, abs=0.01)


def test_token_bucket_does_not_exceed_burst():
    clock = [0.0]
    bucket = TokenBucket(100.0, burst=3, clock=lambda: clock[0])
    clock[0] += 60
    assert bucket.tokens == 3


# -- CircuitBreaker ----------------------------------------------------------


def test_breaker_trips_after_threshold():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=3, cooldown_s=1.0,
                             clock=lambda: clock[0])
    for _ in range(2):
        breaker.record_failure()
    breaker.allow()  # still closed below the threshold
    breaker.record_failure()
    assert breaker.state == "open"
    with pytest.raises(CircuitOpenError) as excinfo:
        breaker.allow()
    assert excinfo.value.retry_after == pytest.approx(1.0, abs=0.01)


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker("t1", failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed", "non-consecutive failures never trip"


def test_breaker_half_open_probe_recovery():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=1, cooldown_s=1.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    assert breaker.state == "open"
    clock[0] += 1.5
    assert breaker.state == "half_open"
    breaker.allow()  # the probe
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    breaker.allow()


def test_breaker_failed_probe_reopens():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=1, cooldown_s=1.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] += 1.5
    breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 2
    with pytest.raises(CircuitOpenError):
        breaker.allow()


def test_breaker_allow_reports_probe_grant():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=1, cooldown_s=1.0,
                             clock=lambda: clock[0])
    assert breaker.allow() is False  # closed: not a probe
    breaker.record_failure()
    clock[0] += 1.5
    assert breaker.allow() is True   # the half-open probe


def test_breaker_cancel_probe_frees_the_slot():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=1, cooldown_s=1.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] += 1.5
    assert breaker.allow() is True
    # the probe statement was abandoned before any engine verdict
    # (rate-limited / shed / parse error): the slot must come back
    breaker.cancel_probe()
    assert breaker.state == "half_open"
    assert breaker.allow() is True   # the next statement may probe again
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_straggler_success_does_not_close_open_breaker():
    clock = [0.0]
    breaker = CircuitBreaker("t1", failure_threshold=1, cooldown_s=10.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    assert breaker.state == "open"
    # a slow statement admitted before the trip later succeeds: the
    # breaker must stay open — recovery goes through the cooldown +
    # half-open probe, never around it
    breaker.record_success()
    assert breaker.state == "open"
    with pytest.raises(CircuitOpenError):
        breaker.allow()
    clock[0] += 10.5
    assert breaker.allow() is True
    breaker.record_success()
    assert breaker.state == "closed"

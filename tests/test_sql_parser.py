"""Unit tests for the SQL parser (including the HANA-style extensions)."""

import decimal

import pytest

from repro.datatypes import TypeKind
from repro.errors import SqlSyntaxError
from repro.sql import ast, parse_expression, parse_sql, parse_statement


class TestSelectBasics:
    def test_minimal_select(self):
        q = parse_statement("select a from t")
        assert isinstance(q, ast.Select)
        assert isinstance(q.items[0].expr, ast.ColumnName)
        assert isinstance(q.from_clause, ast.TableRef)

    def test_star_and_qualified_star(self):
        q = parse_statement("select *, t.* from t")
        assert isinstance(q.items[0].expr, ast.Star)
        assert q.items[1].expr.qualifier == "t"

    def test_aliases(self):
        q = parse_statement("select a as x, b y from t tt")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"
        assert q.from_clause.alias == "tt"

    def test_distinct(self):
        assert parse_statement("select distinct a from t").distinct

    def test_where_group_having(self):
        q = parse_statement(
            "select a, count(*) from t where b > 1 group by a having count(*) > 2"
        )
        assert q.where is not None
        assert len(q.group_by) == 1
        assert q.having is not None

    def test_order_by_directions(self):
        q = parse_statement("select a from t order by a desc, b asc, c")
        assert [o.ascending for o in q.order_by] == [False, True, True]

    def test_limit_offset(self):
        q = parse_statement("select a from t limit 10 offset 5")
        assert (q.limit, q.offset) == (10, 5)

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select a from t limit x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select a from t garbage garbage")

    def test_script_with_semicolons(self):
        statements = parse_sql("select a from t; select b from u;")
        assert len(statements) == 2


class TestJoins:
    def test_inner_join_default(self):
        q = parse_statement("select * from a join b on a.x = b.y")
        assert q.from_clause.kind is ast.JoinKind.INNER

    def test_left_outer_join(self):
        q = parse_statement("select * from a left join b on a.x = b.y")
        assert q.from_clause.kind is ast.JoinKind.LEFT_OUTER
        q2 = parse_statement("select * from a left outer join b on a.x = b.y")
        assert q2.from_clause.kind is ast.JoinKind.LEFT_OUTER

    def test_cross_join(self):
        q = parse_statement("select * from a cross join b")
        assert q.from_clause.kind is ast.JoinKind.CROSS
        assert q.from_clause.condition is None

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select * from a join b")

    def test_case_join(self):
        q = parse_statement("select * from a case join b on a.x = b.y")
        assert q.from_clause.kind is ast.JoinKind.CASE_JOIN

    def test_cardinality_specification(self):
        q = parse_statement(
            "select * from a left outer many to one join b on a.x = b.y"
        )
        card = q.from_clause.cardinality
        assert card.left is ast.CardinalityBound.MANY
        assert card.right is ast.CardinalityBound.ONE

    def test_exact_one_cardinality(self):
        q = parse_statement(
            "select * from a inner many to exact one join b on a.x = b.y"
        )
        assert q.from_clause.cardinality.right is ast.CardinalityBound.EXACT_ONE

    def test_one_to_one_cardinality(self):
        q = parse_statement("select * from a one to one join b on a.x = b.y")
        assert q.from_clause.cardinality.left is ast.CardinalityBound.ONE

    def test_join_chain_left_associative(self):
        q = parse_statement(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        outer = q.from_clause
        assert isinstance(outer.left, ast.JoinClause)
        assert isinstance(outer.right, ast.TableRef) and outer.right.name == "c"

    def test_derived_table(self):
        q = parse_statement("select * from (select a from t) s")
        assert isinstance(q.from_clause, ast.DerivedTable)
        assert q.from_clause.alias == "s"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select * from (select a from t)")

    def test_parenthesized_join_tree(self):
        q = parse_statement("select * from (a join b on a.x = b.x) join c on a.y = c.y")
        assert isinstance(q.from_clause.left, ast.JoinClause)


class TestUnionAll:
    def test_union_all(self):
        q = parse_statement("select a from t union all select a from u")
        assert isinstance(q, ast.SetOp) and q.op == "UNION ALL"

    def test_union_with_order_limit(self):
        q = parse_statement(
            "select a from t union all select a from u order by a limit 3"
        )
        assert q.limit == 3 and len(q.order_by) == 1

    def test_union_chain(self):
        q = parse_statement("select a from t union all select a from u union all select a from v")
        assert isinstance(q.left, ast.SetOp)

    def test_plain_union_unsupported(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select a from t union select a from u")


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a or b and c")
        assert e.op == "OR"
        assert e.right.op == "AND"

    def test_precedence_arith(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_comparison_chain_not_allowed_naturally(self):
        e = parse_expression("a < b")
        assert e.op == "<"

    def test_not_equals_normalized(self):
        assert parse_expression("a != b").op == "<>"

    def test_unary_minus_and_plus(self):
        assert isinstance(parse_expression("-a"), ast.UnaryOp)
        assert isinstance(parse_expression("+a"), ast.ColumnName)

    def test_not(self):
        e = parse_expression("not a = b")
        assert e.op == "NOT"

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a is null").negated is False
        assert parse_expression("a is not null").negated is True

    def test_in_list(self):
        e = parse_expression("a in (1, 2, 3)")
        assert isinstance(e, ast.InList) and len(e.items) == 3

    def test_not_in(self):
        assert parse_expression("a not in (1)").negated

    def test_between(self):
        e = parse_expression("a between 1 and 10")
        assert isinstance(e, ast.BetweenExpr)

    def test_not_between(self):
        assert parse_expression("a not between 1 and 2").negated

    def test_like_and_not_like(self):
        assert parse_expression("a like 'x%'").op == "LIKE"
        negated = parse_expression("a not like 'x%'")
        assert negated.op == "NOT"

    def test_case_when(self):
        e = parse_expression("case when a > 1 then 'hi' when a > 0 then 'mid' else 'lo' end")
        assert isinstance(e, ast.CaseWhen) and len(e.branches) == 2
        assert e.else_value is not None

    def test_case_requires_branch(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("case else 1 end")

    def test_cast(self):
        e = parse_expression("cast(a as decimal(10, 4))")
        assert isinstance(e, ast.CastExpr)
        assert e.target.scale == 4

    def test_cast_varchar(self):
        assert parse_expression("cast(a as varchar(9))").target.length == 9

    def test_function_call_and_count_star(self):
        e = parse_expression("count(*)")
        assert isinstance(e.args[0], ast.Star)
        e2 = parse_expression("round(x, 2)")
        assert e2.name == "ROUND" and len(e2.args) == 2

    def test_count_distinct(self):
        assert parse_expression("count(distinct a)").distinct

    def test_concat_operator(self):
        assert parse_expression("a || b").op == "||"

    def test_string_literal_and_null_true_false(self):
        assert parse_expression("'abc'").value == "abc"
        assert parse_expression("null").value is None
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_decimal_literal(self):
        assert parse_expression("1.25").value == decimal.Decimal("1.25")


class TestDDL:
    def test_create_table_with_constraints(self):
        s = parse_statement(
            "create table t (a int primary key, b decimal(15,2) not null, "
            "c varchar(10) unique, d date, primary key (a), unique (b, c))"
        )
        assert isinstance(s, ast.CreateTable)
        assert s.columns[0].primary_key
        assert not s.columns[1].nullable
        assert s.columns[2].unique
        assert s.constraints[0].kind == "PRIMARY KEY"
        assert s.constraints[1].columns == ("b", "c")

    def test_create_table_if_not_exists(self):
        s = parse_statement("create table if not exists t (a int)")
        assert s.if_not_exists

    def test_key_as_column_name(self):
        s = parse_statement("create table t (key int primary key, a int)")
        assert s.columns[0].name == "key"

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("create table t (a blob)")

    def test_create_view(self):
        s = parse_statement("create view v as select a from t")
        assert isinstance(s, ast.CreateView) and not s.or_replace

    def test_create_or_replace_view_with_columns(self):
        s = parse_statement("create or replace view v (x, y) as select a, b from t")
        assert s.or_replace and s.column_names == ("x", "y")

    def test_create_view_with_expression_macros(self):
        s = parse_statement(
            "create view v as select * from t with expression macros "
            "(sum(a)/sum(b) as ratio, sum(a) as total)"
        )
        assert [m.name for m in s.macros] == ["ratio", "total"]

    def test_drop_table_and_view(self):
        assert parse_statement("drop table t").kind == "TABLE"
        s = parse_statement("drop view if exists v")
        assert s.kind == "VIEW" and s.if_exists


class TestDML:
    def test_insert_values(self):
        s = parse_statement("insert into t values (1, 'x'), (2, 'y')")
        assert isinstance(s, ast.Insert) and len(s.rows) == 2

    def test_insert_with_columns(self):
        s = parse_statement("insert into t (a, b) values (1, 2)")
        assert s.columns == ("a", "b")

    def test_insert_from_query(self):
        s = parse_statement("insert into t select a, b from u")
        assert s.query is not None

    def test_update(self):
        s = parse_statement("update t set a = a + 1, b = 'x' where c > 0")
        assert isinstance(s, ast.Update) and len(s.assignments) == 2
        assert s.where is not None

    def test_delete(self):
        s = parse_statement("delete from t where a = 1")
        assert isinstance(s, ast.Delete)

    def test_delete_without_where(self):
        assert parse_statement("delete from t").where is None


class TestSubquerySyntax:
    def test_exists(self):
        q = parse_statement("select a from t where exists (select b from u)")
        assert isinstance(q.where, ast.ExistsExpr) and not q.where.negated

    def test_not_exists(self):
        q = parse_statement("select a from t where not exists (select b from u)")
        assert isinstance(q.where, ast.ExistsExpr) and q.where.negated

    def test_in_subquery(self):
        q = parse_statement("select a from t where a in (select b from u)")
        assert isinstance(q.where, ast.InSubquery) and not q.where.negated

    def test_not_in_subquery(self):
        q = parse_statement("select a from t where a not in (select b from u)")
        assert isinstance(q.where, ast.InSubquery) and q.where.negated

    def test_in_list_still_works(self):
        q = parse_statement("select a from t where a in (1, 2)")
        assert isinstance(q.where, ast.InList)

    def test_scalar_subquery_in_comparison(self):
        q = parse_statement("select a from t where a > (select max(b) from u)")
        assert isinstance(q.where.right, ast.ScalarQuery)

    def test_scalar_subquery_in_select_list(self):
        q = parse_statement("select (select max(b) from u) as m from t")
        assert isinstance(q.items[0].expr, ast.ScalarQuery)

    def test_parenthesized_expression_not_a_subquery(self):
        e = parse_expression("(1 + 2)")
        assert isinstance(e, ast.BinaryOp)


class TestExtensions:
    def test_allow_precision_loss_parses_as_call(self):
        q = parse_statement("select allow_precision_loss(sum(round(p, 2))) from t")
        call = q.items[0].expr
        assert call.name == "ALLOW_PRECISION_LOSS"

    def test_expression_macro_reference(self):
        q = parse_statement("select expression_macro(margin) from v group by k")
        assert q.items[0].expr.name == "EXPRESSION_MACRO"

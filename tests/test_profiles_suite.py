"""The paper's full evaluation suite, run under every optimizer profile.

This is the test-level mirror of the E1-E4 benchmarks: the optimizer runs
under each capability profile and the observed plan is compared
cell-for-cell against the paper's Tables 1-4.
"""

import pytest

from repro.algebra.ops import Join, Limit, Scan
from repro.optimizer.profiles import PROFILES, get_profile
from repro.workloads import queries
from tests.conftest import assert_equivalent


def observed_uaj(db, sql, profile):
    db.set_profile(profile)
    plan = db.plan_for(sql)
    return "Y" if not any(isinstance(n, Join) for n in plan.walk()) else "-"


def observed_limit_pushdown(db, sql, profile):
    db.set_profile(profile)
    plan = db.plan_for(sql)
    for node in plan.walk():
        if isinstance(node, Join):
            pushed = any(isinstance(x, Limit) for x in node.left.walk())
            return "Y" if pushed else "-"
    return "Y"  # join gone entirely also counts as optimized

def observed_asj(db, sql, profile, table="customer"):
    db.set_profile(profile)
    plan = db.plan_for(sql)
    scans = sum(
        1 for n in plan.walk() if isinstance(n, Scan) and n.schema.name == table
    )
    return "Y" if scans <= 1 else "-"


class TestTable1:
    @pytest.mark.parametrize("query", queries.UAJ_SUITE, ids=lambda q: q.name)
    def test_matrix_row(self, tpch_db, query):
        row = "".join(
            observed_uaj(tpch_db, query.sql, p) for p in queries.PROFILE_ORDER
        )
        assert row == query.expected, f"{query.name}: got {row}"
        tpch_db.set_profile("hana")

    @pytest.mark.parametrize("query", queries.UAJ_SUITE, ids=lambda q: q.name)
    def test_results_unchanged_by_optimization(self, tpch_db, query):
        for profile in queries.PROFILE_ORDER:
            assert_equivalent(tpch_db, query.sql, profile)


class TestTable2:
    def test_matrix_row(self, tpch_db):
        query = queries.FIG6_PAGING
        row = "".join(
            observed_limit_pushdown(tpch_db, query.sql, p)
            for p in queries.PROFILE_ORDER
        )
        assert row == query.expected
        tpch_db.set_profile("hana")

    def test_row_count_correct_under_every_profile(self, tpch_db):
        for profile in queries.PROFILE_ORDER:
            tpch_db.set_profile(profile)
            assert len(tpch_db.query(queries.FIG6_PAGING.sql).rows) == 100
        tpch_db.set_profile("hana")


class TestTable3:
    @pytest.mark.parametrize("query", queries.ASJ_SUITE, ids=lambda q: q.name)
    def test_matrix_row(self, tpch_db, query):
        row = "".join(
            observed_asj(tpch_db, query.sql, p) for p in queries.PROFILE_ORDER
        )
        assert row == query.expected
        tpch_db.set_profile("hana")

    @pytest.mark.parametrize("query", queries.ASJ_SUITE, ids=lambda q: q.name)
    def test_results_unchanged_by_optimization(self, tpch_db, query):
        for profile in queries.PROFILE_ORDER:
            assert_equivalent(tpch_db, query.sql, profile)

    def test_negative_control_never_removed(self, tpch_db):
        row = "".join(
            observed_asj(tpch_db, queries.ASJ_NEGATIVE.sql, p)
            for p in queries.PROFILE_ORDER
        )
        assert row == queries.ASJ_NEGATIVE.expected
        assert_equivalent(tpch_db, queries.ASJ_NEGATIVE.sql)


class TestTable4:
    @pytest.mark.parametrize("query", queries.UNION_UAJ_SUITE, ids=lambda q: q.name)
    def test_matrix_row(self, vdm_tables_db, query):
        row = "".join(
            observed_uaj(vdm_tables_db, query.sql, p) for p in queries.PROFILE_ORDER
        )
        assert row == query.expected
        vdm_tables_db.set_profile("hana")

    @pytest.mark.parametrize("query", queries.UNION_UAJ_SUITE, ids=lambda q: q.name)
    def test_results_unchanged_by_optimization(self, vdm_tables_db, query):
        for profile in queries.PROFILE_ORDER:
            assert_equivalent(vdm_tables_db, query.sql, profile)


class TestFig13:
    def test_fig13a(self, vdm_tables_db):
        query = queries.FIG13A
        row = "".join(
            observed_asj(vdm_tables_db, query.sql, p, table="ta")
            for p in queries.PROFILE_ORDER
        )
        # "Y" here means the augmenter's extra ta scan was eliminated:
        # 2 anchor scans remain, so adapt the observation
        vdm_tables_db.set_profile("hana")
        from repro.algebra.ops import Join
        plan = vdm_tables_db.plan_for(query.sql)
        assert not any(isinstance(n, Join) for n in plan.walk())
        assert_equivalent(vdm_tables_db, query.sql)

    @pytest.mark.parametrize(
        "query", [queries.FIG13B_CASE_JOIN, queries.FIG13B_PLAIN],
        ids=lambda q: q.name,
    )
    def test_fig13b(self, vdm_tables_db, query):
        row = "".join(
            observed_uaj(vdm_tables_db, query.sql, p) for p in queries.PROFILE_ORDER
        )
        assert row == query.expected
        vdm_tables_db.set_profile("hana")
        for profile in queries.PROFILE_ORDER:
            assert_equivalent(vdm_tables_db, query.sql, profile)


class TestProfileRegistry:
    def test_all_profiles_resolvable(self):
        for name in PROFILES:
            assert get_profile(name).name == name

    def test_unknown_profile_rejected(self):
        from repro.errors import OptimizerError
        with pytest.raises(OptimizerError):
            get_profile("oracle")

    def test_without_and_with_caps(self):
        hana = get_profile("hana")
        reduced = hana.without("asj")
        assert not reduced.has("asj") and hana.has("asj")
        restored = reduced.with_caps("asj")
        assert restored.has("asj")

    def test_hana_is_superset_of_all(self):
        hana = get_profile("hana")
        for name, profile in PROFILES.items():
            assert profile.caps <= hana.caps, name

"""Property-based tests (hypothesis): optimizer correctness invariants.

The central invariant of the whole paper: every rewrite the optimizer
performs must be semantics-preserving — an optimized plan returns the same
multiset of rows as the bound plan, for every profile.  We drive randomized
data and randomized queries drawn from the paper's AJ/ASJ/Union grammar.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.optimizer.profiles import PROFILE_ORDER

settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

key_values = st.integers(min_value=0, max_value=12)
attr_values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


def build_db(fact_rows, dim_rows, dup_rows):
    db = Database(wal_enabled=False)
    db.execute(
        "create table f (fk int primary key, d int, a int, s varchar(3) not null)"
    )
    db.execute("create table dim (k int primary key, v int, w varchar(3))")
    db.execute("create table dup (k int, v int)")
    db.bulk_load(
        "f",
        [
            (i, d, a, "ABC"[i % 3])
            for i, (d, a) in enumerate(fact_rows)
        ],
    )
    db.bulk_load("dim", [(k, v, "xyz"[k % 3]) for k, v in dim_rows.items()])
    db.bulk_load("dup", dup_rows)
    return db


fact_rows_st = st.lists(st.tuples(st.one_of(st.none(), key_values), attr_values),
                        min_size=0, max_size=25)
dim_rows_st = st.dictionaries(key_values, st.integers(-3, 3), max_size=13)
dup_rows_st = st.lists(st.tuples(key_values, st.integers(-3, 3)), max_size=15)

QUERY_TEMPLATES = [
    # UAJ shapes
    "select f.fk from f left join dim on f.d = dim.k",
    "select f.fk, f.a from f left join dim on f.d = dim.k where f.a > {c}",
    "select f.fk from f left join (select k, sum(v) as sv from dup group by k) g on f.d = g.k",
    "select f.fk, dim.v from f left join dim on f.d = dim.k",
    "select count(*) from f left join dim on f.d = dim.k left join dup on f.d = dup.k",
    # ASJ shapes
    "select v.fk, x.a from (select fk from f) v left join f x on v.fk = x.fk",
    "select v.fk, x.a from (select fk from f where a > {c}) v "
    "left join (select fk, a from f where a > {c}) x on v.fk = x.fk",
    "select v.fk, x.s from (select fk, d from f) v join f x on v.fk = x.fk",
    # Union shapes
    "select f.fk from f left join (select fk from f where s = 'A' "
    "union all select fk from f where s = 'B') u on f.fk = u.fk",
    "select u.fk, x.a from (select fk from f where s = 'A' union all "
    "select fk from f where s <> 'A') u left join f x on u.fk = x.fk",
    # limit / paging (compare row COUNTS, not content: LIMIT w/o ORDER BY is
    # nondeterministic) — handled separately below
    # aggregation
    "select f.s, count(*), sum(f.a) from f left join dim on f.d = dim.k group by f.s",
    "select dim.w, sum(f.a) from f join dim on f.d = dim.k group by dim.w having count(*) > 1",
    # distinct
    "select distinct f.s from f left join dim on f.d = dim.k",
    # semi / anti joins (EXISTS, IN, NOT IN with its NULL semantics)
    "select f.fk from f where f.d in (select k from dim)",
    "select f.fk from f where f.a not in (select v from dim where v > {c})",
    "select f.fk from f where exists (select k from dim where v > {c})",
    # scalar subqueries
    "select f.fk from f where f.a > (select min(v) from dim)",
]


@given(
    fact=fact_rows_st,
    dims=dim_rows_st,
    dups=dup_rows_st,
    template=st.sampled_from(QUERY_TEMPLATES),
    constant=st.integers(-5, 5),
)
def test_optimized_equals_unoptimized(fact, dims, dups, template, constant):
    db = build_db(fact, dims, dups)
    sql = template.format(c=constant)
    reference = sorted(map(repr, db.query(sql, optimize=False).rows))
    for profile in PROFILE_ORDER:
        db.set_profile(profile)
        observed = sorted(map(repr, db.query(sql).rows))
        assert observed == reference, (profile, sql)


@given(
    fact=fact_rows_st,
    dims=dim_rows_st,
    limit=st.integers(0, 30),
    offset=st.integers(0, 5),
)
def test_limit_pushdown_preserves_cardinality(fact, dims, limit, offset):
    db = build_db(fact, dims, [])
    sql = f"select * from f left join dim on f.d = dim.k limit {limit} offset {offset}"
    optimized = db.query(sql)
    unoptimized = db.query(sql, optimize=False)
    assert len(optimized.rows) == len(unoptimized.rows)
    # every returned row must be a real row of the full join
    full = set(map(repr, db.query(
        "select * from f left join dim on f.d = dim.k", optimize=False).rows))
    assert all(repr(r) in full for r in optimized.rows)


@given(
    fact=fact_rows_st,
    dims=dim_rows_st,
    keys=st.sets(key_values, min_size=1, max_size=4),
)
def test_topn_pushdown_preserves_order(fact, dims, keys):
    db = build_db(fact, dims, [])
    sql = "select f.fk, dim.w from f left join dim on f.d = dim.k order by f.fk limit 5"
    optimized = [r[0] for r in db.query(sql).rows]
    unoptimized = [r[0] for r in db.query(sql, optimize=False).rows]
    assert optimized == unoptimized


@given(fact=fact_rows_st, dims=dim_rows_st)
def test_derived_keys_are_actually_unique(fact, dims):
    """Soundness of the uniqueness derivation: any derived key of any
    subplan must hold on the actual data (non-NULL key tuples distinct)."""
    from repro.algebra.properties import DerivationContext
    from repro.engine.executor import Executor
    from repro.optimizer.profiles import get_profile

    db = build_db(fact, dims, [])
    sql = (
        "select f.fk, f.d, f.a, dim.v from f left join dim on f.d = dim.k "
        "where f.a is not null"
    )
    plan = db.bind(sql)
    ctx = DerivationContext(get_profile("hana").caps)
    executor = Executor(db.catalog)
    txn = db.begin()
    try:
        for node in plan.walk():
            keys = ctx.unique_keys(node)
            if not keys:
                continue
            result = executor.execute(node, txn)
            position = {c.cid: i for i, c in enumerate(node.output)}
            for key in keys:
                if not all(cid in position for cid in key):
                    continue
                seen = set()
                for row in result.rows:
                    tup = tuple(row[position[cid]] for cid in key)
                    if None in tup:
                        continue
                    assert tup not in seen, (key, tup)
                    seen.add(tup)
    finally:
        db.commit(txn)

"""Zone-map block-pruning tests (§2.2 partition-pruning behaviour)."""

import pytest

from repro import Database
from repro.storage.column import BLOCK_ROWS, MainFragment


@pytest.fixture(scope="module")
def db():
    database = Database(wal_enabled=False)
    database.execute(
        "create table events (eid int primary key, day int not null, "
        "kind varchar(4), v decimal(10,2))"
    )
    # day is correlated with insertion order -> zone maps are selective,
    # mirroring the paper's time-based range partitioning.
    rows = [
        (i, i // BLOCK_ROWS, "KND" + str(i % 3), f"{i % 97}.25")
        for i in range(BLOCK_ROWS * 8)
    ]
    database.bulk_load("events", rows, merge=True)
    return database


class TestZoneMaps:
    def test_zone_map_blocks_and_bounds(self):
        fragment = MainFragment(list(range(BLOCK_ROWS * 2 + 10)))
        zones = fragment.zone_map()
        assert len(zones) == 3
        assert zones[0] == (0, BLOCK_ROWS - 1, False)
        assert zones[2][0] == BLOCK_ROWS * 2

    def test_zone_map_nulls_flagged(self):
        fragment = MainFragment([None, 5, None])
        assert fragment.zone_map() == [(5, 5, True)]

    def test_all_null_block(self):
        fragment = MainFragment([None] * 4)
        assert fragment.zone_map() == [(None, None, True)]

    def test_zone_map_cached(self):
        fragment = MainFragment([1, 2, 3])
        assert fragment.zone_map() is fragment.zone_map()


class TestPrunedExecution:
    def test_equality_on_correlated_column(self, db):
        rows = db.query("select eid from events where day = 3").rows
        assert len(rows) == BLOCK_ROWS
        assert all(3 * BLOCK_ROWS <= r[0] < 4 * BLOCK_ROWS for r in rows)

    def test_range_predicates(self, db):
        n = db.query("select count(*) from events where day >= 6").scalar()
        assert n == 2 * BLOCK_ROWS
        n = db.query("select count(*) from events where day < 2").scalar()
        assert n == 2 * BLOCK_ROWS

    def test_combined_predicates(self, db):
        rows = db.query(
            "select eid from events where day = 2 and kind = 'KND0'"
        ).rows
        expect = [i for i in range(2 * BLOCK_ROWS, 3 * BLOCK_ROWS) if i % 3 == 0]
        assert sorted(r[0] for r in rows) == expect

    def test_unprunable_predicate_still_correct(self, db):
        n = db.query("select count(*) from events where kind <> 'KND0'").scalar()
        total = db.query("select count(*) from events").scalar()
        assert n == total - db.query(
            "select count(*) from events where kind = 'KND0'"
        ).scalar()

    def test_out_of_range_constant(self, db):
        assert db.query("select count(*) from events where day = 999").scalar() == 0

    def test_delta_rows_always_visible(self, db):
        db.execute("insert into events values (900000, 3, 'KNDX', 1.00)")
        rows = db.query("select eid from events where day = 3 and kind = 'KNDX'").rows
        assert rows == [(900000,)]
        db.execute("delete from events where eid = 900000")

    def test_mvcc_versions_respected(self, db):
        txn = db.begin()
        db.execute("delete from events where eid = 0", txn=txn)
        # uncommitted delete: other snapshots still see the row
        assert db.query("select count(*) from events where day = 0").scalar() == BLOCK_ROWS
        db.commit(txn)
        assert db.query(
            "select count(*) from events where day = 0"
        ).scalar() == BLOCK_ROWS - 1

    def test_pruning_is_faster(self, db):
        import time

        pruned_plan = db.plan_for("select count(*) from events where day = 7")
        full_plan = db.plan_for("select count(*) from events where kind like 'K%'")

        def run(plan):
            samples = []
            for _ in range(3):
                txn = db.begin()
                start = time.perf_counter()
                db._executor.execute(plan, txn)
                samples.append(time.perf_counter() - start)
                db.commit(txn)
            return sorted(samples)[1]

        assert run(pruned_plan) < run(full_plan)

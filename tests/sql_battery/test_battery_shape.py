"""Drive the SQL battery: every statement twice, shapes asserted.

One module-scoped database serves all 300+ statements.  Each statement
runs twice so the second execution takes the plan-cache hit path (the
shape was promoted after the first pair of runs of any repeated shape),
and the two runs must agree on columns and rows — a built-in
cached-vs-fresh differential across the whole battery.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import BindError, SqlSyntaxError

from .statements import STATEMENTS, Case, load

_ERROR_CLASSES = {"syntax": SqlSyntaxError, "bind": BindError}


@pytest.fixture(scope="module")
def battery_db() -> Database:
    db = Database(wal_enabled=False, plan_cache_size=256)
    load(db)
    return db


def _key(rows: list[tuple]) -> list[str]:
    # repr-sort: rows may mix None with non-comparable types.
    return sorted(repr(row) for row in rows)


@pytest.mark.parametrize(
    "case", STATEMENTS, ids=[c.sql[:70] for c in STATEMENTS],
)
def test_battery_statement(battery_db: Database, case: Case):
    if case.error is not None:
        exc = _ERROR_CLASSES[case.error]
        with pytest.raises(exc):
            battery_db.query(case.sql)
        with pytest.raises(exc):  # errors must be stable on re-run too
            battery_db.query(case.sql)
        return

    first = battery_db.query(case.sql)
    second = battery_db.query(case.sql)  # plan-cache hit path

    if case.columns is not None:
        assert tuple(first.column_names) == case.columns
    if case.rows is not None:
        assert len(first.rows) == case.rows
    for row in first.rows:
        assert len(row) == len(first.column_names)

    assert tuple(second.column_names) == tuple(first.column_names)
    if not case.volatile:
        assert _key(second.rows) == _key(first.rows)


def test_battery_size():
    assert len(STATEMENTS) >= 300


def test_battery_exercised_plan_cache(battery_db: Database):
    """Runs after the parametrized battery (same module order): the
    double-execution pattern must have produced real cache traffic."""
    cache = battery_db.plan_cache
    assert cache is not None
    assert cache.hits > 100, (cache.hits, cache.misses)
    ok_cases = sum(1 for c in STATEMENTS if c.error is None)
    assert cache.hits + cache.misses >= ok_cases

"""The SQL battery: 300+ one-line statements with expected shapes.

Opteryx-style: a flat list of :class:`Case` records, each one statement
plus what we assert about it — expected column names, expected row
count, or the error class it must raise.  The driving test
(``test_battery_shape.py``) runs every statement twice against one
module-scoped database so the second run exercises the plan-cache hit
path, and asserts the two runs agree.

Expected row counts are *computed* from a Python mirror of the loaded
data (``ITEMS``/``GROUPS``/``EXT``), not hand-maintained — change the
data and the expectations follow.
"""

from __future__ import annotations

import datetime
import decimal
from dataclasses import dataclass


@dataclass(frozen=True)
class Case:
    sql: str
    #: Expected column names (None = don't assert).
    columns: tuple[str, ...] | None = None
    #: Expected row count (None = don't assert).
    rows: int | None = None
    #: "syntax" (SqlSyntaxError) or "bind" (BindError); None = must run.
    error: str | None = None
    #: True for statements whose results legitimately change between the
    #: two runs (sys.* tables grow as the battery itself executes).
    volatile: bool = False


# ---------------------------------------------------------------------------
# data model — mirrored in Python so counts below are computed
# ---------------------------------------------------------------------------

N_ITEMS = 24


def _name(i: int) -> str:
    return "it's 7" if i == 7 else f"item {i}"


ITEMS = [
    (
        i,                                    # id
        i % 4,                                # grp (grp 3 has no bt_grp row)
        i * 3,                                # qty
        (1 << 40) + i,                        # big
        i * 1.5,                              # price
        decimal.Decimal(i * 25) / 100,        # amt
        _name(i),                             # name
        i % 2 == 0,                           # flag
        datetime.date(2020, 1, 1) + datetime.timedelta(days=i),  # dt
    )
    for i in range(N_ITEMS)
]
GROUPS = [(0, "grp 0"), (1, "grp 1"), (2, "grp 2")]
EXT = [(i, i * 100) for i in range(10)]

_GIDS = {gid for gid, _ in GROUPS}
_EXT_IDS = {i for i, _ in EXT}


def load(db) -> None:
    """Create the battery schema (tables + a nested view stack) and load
    the mirrored data."""
    db.execute(
        "create table bt_item (id int primary key, grp int, qty int, "
        "big bigint, price double, amt decimal(10,2), name varchar(20), "
        "flag boolean, dt date)"
    )
    db.execute("create table bt_grp (gid int primary key, gname varchar(20))")
    db.execute("create table bt_ext (id int primary key, ext int)")
    db.bulk_load("bt_item", ITEMS)
    db.bulk_load("bt_grp", GROUPS)
    db.bulk_load("bt_ext", EXT)
    db.execute(
        "create view bv_base as "
        "select id, grp, qty, big, price, amt, name, flag, dt from bt_item"
    )
    db.execute(
        "create view bv_filt as "
        "select id, grp, qty, price, name from bv_base where qty >= 0"
    )
    db.execute(
        "create view bv_join as "
        "select f.id, f.qty, f.name, g.gname from bv_filt f "
        "left outer join bt_grp g on f.grp = g.gid"
    )
    db.execute(
        "create view bv_agg as "
        "select grp, count(*) as n, sum(qty) as total from bv_filt group by grp"
    )


def _count(pred) -> int:
    return sum(1 for row in ITEMS if pred(row))


STATEMENTS: list[Case] = []


# ---------------------------------------------------------------------------
# 1. literal projections — every literal type the lexer knows
# ---------------------------------------------------------------------------

_LITERALS = [
    "0", "1", "-1", "42", "2147483647", "2147483648", "-9999999999",
    "1099511627776",                    # 2^40: BIGINT
    "0.5", "2.50", "-3.14", "123.456",  # DECIMAL
    "1e3", "2.5e-2", "-1e2",            # DOUBLE
    "'x'", "''", "'it''s'", "'a b  c'", "'100'", "'null'",
    "true", "false", "null",
]
for lit in _LITERALS:
    STATEMENTS.append(Case(
        f"select {lit} as v from bt_grp where gid = 0",
        columns=("v",), rows=1,
    ))
    STATEMENTS.append(Case(
        f"select {lit} as v, gid from bt_grp order by gid",
        columns=("v", "gid"), rows=len(GROUPS),
    ))


# ---------------------------------------------------------------------------
# 2. one shape, many parameter values (the plan cache's bread and butter)
# ---------------------------------------------------------------------------

for k in range(N_ITEMS + 6):  # last 6 probe beyond the data: 0 rows
    STATEMENTS.append(Case(
        f"select id, qty from bt_item where id = {k}",
        columns=("id", "qty"), rows=1 if k < N_ITEMS else 0,
    ))


# ---------------------------------------------------------------------------
# 3. every comparison operator over int / double / string columns
# ---------------------------------------------------------------------------

_OPS = {
    "=": lambda a, b: a == b, "<": lambda a, b: a < b,
    ">": lambda a, b: a > b, "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b, "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
}
for op, fn in _OPS.items():
    STATEMENTS.append(Case(
        f"select id from bt_item where qty {op} 30",
        columns=("id",), rows=_count(lambda r: fn(r[2], 30)),
    ))
    STATEMENTS.append(Case(
        f"select id from bt_item where price {op} 10.5",
        columns=("id",), rows=_count(lambda r: fn(r[4], 10.5)),
    ))
    STATEMENTS.append(Case(
        f"select id from bt_item where name {op} 'item 5'",
        columns=("id",), rows=_count(lambda r: fn(r[6], "item 5")),
    ))


# ---------------------------------------------------------------------------
# 4. DISTINCT x ORDER BY x LIMIT/OFFSET grid over tables and views
# ---------------------------------------------------------------------------

_GRID_BASES = [
    ("select {d}grp from bt_item", "grp", [(r[1],) for r in ITEMS]),
    (
        "select {d}qty, grp from bt_item where qty > 30", "qty",
        [(r[2], r[1]) for r in ITEMS if r[2] > 30],
    ),
    ("select {d}name from bv_filt", "name", [(r[6],) for r in ITEMS]),
]
for template, order_col, model_rows in _GRID_BASES:
    for distinct in ("", "distinct "):
        base_n = len(set(model_rows)) if distinct else len(model_rows)
        for order in ("", f" order by {order_col}", f" order by {order_col} desc"):
            for limit, cap in (
                ("", None), (" limit 5", 5), (" limit 5 offset 2", (5, 2)),
                (" limit 100", 100), (" limit 0", 0),
            ):
                if cap is None:
                    n = base_n
                elif isinstance(cap, tuple):
                    n = min(cap[0], max(0, base_n - cap[1]))
                else:
                    n = min(cap, base_n)
                STATEMENTS.append(Case(
                    template.format(d=distinct) + order + limit, rows=n,
                ))


# ---------------------------------------------------------------------------
# 5. scalar functions
# ---------------------------------------------------------------------------

for expr in (
    "round(price, 1)", "round(price)", "abs(0 - qty)", "floor(price)",
    "ceil(price)", "coalesce(name, 'x')", "ifnull(name, 'x')",
    "nullif(qty, 9)", "upper(name)", "lower(name)", "length(name)",
    "substr(name, 1, 4)", "substring(name, 2)", "concat(name, '!')",
    "year(dt)", "month(dt)", "dayofmonth(dt)",
):
    STATEMENTS.append(Case(
        f"select {expr} as v from bt_item where id = 3",
        columns=("v",), rows=1,
    ))


# ---------------------------------------------------------------------------
# 6. aggregates, GROUP BY, HAVING
# ---------------------------------------------------------------------------

_N_GRPS = len({r[1] for r in ITEMS})
STATEMENTS += [
    Case("select count(*) as n from bt_item", columns=("n",), rows=1),
    Case("select count(qty) as n from bt_item", columns=("n",), rows=1),
    Case("select sum(qty) as s from bt_item", columns=("s",), rows=1),
    Case("select min(price) as v from bt_item", columns=("v",), rows=1),
    Case("select max(price) as v from bt_item", columns=("v",), rows=1),
    Case("select avg(qty) as v from bt_item", columns=("v",), rows=1),
    Case("select grp, count(*) as n from bt_item group by grp",
         columns=("grp", "n"), rows=_N_GRPS),
    Case("select grp, sum(qty) as s from bt_item group by grp order by grp",
         columns=("grp", "s"), rows=_N_GRPS),
    Case("select grp, min(name) as v from bt_item group by grp",
         columns=("grp", "v"), rows=_N_GRPS),
    Case("select grp, avg(price) as v from bt_item group by grp having count(*) > 1",
         columns=("grp", "v"), rows=_N_GRPS),
    Case("select grp, count(*) as n from bt_item group by grp having count(*) > 99",
         columns=("grp", "n"), rows=0),
    Case("select flag, count(*) as n from bt_item group by flag",
         columns=("flag", "n"), rows=2),
]


# ---------------------------------------------------------------------------
# 7. ASJ shapes — EXISTS / NOT EXISTS against bt_ext
# ---------------------------------------------------------------------------

_N_IN_EXT = _count(lambda r: r[0] in _EXT_IDS)
STATEMENTS += [
    Case("select id from bt_item where id in (select id from bt_ext)",
         columns=("id",), rows=_N_IN_EXT),
    Case("select id from bt_item where id not in (select id from bt_ext)",
         columns=("id",), rows=N_ITEMS - _N_IN_EXT),
    Case("select id from bt_item where id in "
         "(select id from bt_ext where ext > 500)",
         columns=("id",),
         rows=_count(lambda r: r[0] in {i for i, e in EXT if e > 500})),
    Case("select id from bt_item where id not in (select id from bt_ext) "
         "and qty > 30",
         columns=("id",),
         rows=_count(lambda r: r[0] not in _EXT_IDS and r[2] > 30)),
    Case("select id from bv_filt where id in (select id from bt_ext) "
         "order by id limit 3",
         columns=("id",), rows=min(3, _N_IN_EXT)),
    Case("select count(*) as n from bt_item where id not in "
         "(select id from bt_ext)",
         columns=("n",), rows=1),
    Case("select id from bt_item where exists (select gid from bt_grp)",
         columns=("id",), rows=N_ITEMS),
    Case("select id from bt_item where not exists "
         "(select gid from bt_grp where gid > 99)",
         columns=("id",), rows=N_ITEMS),
]


# ---------------------------------------------------------------------------
# 8. UAJ shapes — left outer (augmentation) joins
# ---------------------------------------------------------------------------

_N_NULL_GRP = _count(lambda r: r[1] not in _GIDS)
STATEMENTS += [
    Case("select i.id, g.gname from bt_item i "
         "left outer join bt_grp g on i.grp = g.gid",
         columns=("id", "gname"), rows=N_ITEMS),
    Case("select i.id, g.gname from bt_item i "
         "left outer join bt_grp g on i.grp = g.gid where g.gname is null",
         columns=("id", "gname"), rows=_N_NULL_GRP),
    Case("select i.id, g.gname from bt_item i "
         "left outer join bt_grp g on i.grp = g.gid where g.gname is not null",
         columns=("id", "gname"), rows=N_ITEMS - _N_NULL_GRP),
    Case("select i.id from bt_item i "
         "left outer join bt_grp g on i.grp = g.gid order by i.id limit 4",
         columns=("id",), rows=4),
    Case("select i.id, g.gname, e.ext from bt_item i "
         "left outer join bt_grp g on i.grp = g.gid "
         "left outer join bt_ext e on i.id = e.id",
         columns=("id", "gname", "ext"), rows=N_ITEMS),
    Case("select i.id from bt_item i join bt_ext e on i.id = e.id",
         columns=("id",), rows=_N_IN_EXT),
    Case("select i.id from bt_item i inner join bt_grp g on i.grp = g.gid",
         columns=("id",), rows=N_ITEMS - _N_NULL_GRP),
    Case("select a.id from bt_ext a cross join bt_grp b",
         columns=("id",), rows=len(EXT) * len(GROUPS)),
]


# ---------------------------------------------------------------------------
# 9. UNION ALL shapes
# ---------------------------------------------------------------------------

STATEMENTS += [
    Case("select id from bt_item union all select id from bt_ext",
         columns=("id",), rows=N_ITEMS + len(EXT)),
    Case("select id, qty from bt_item where qty > 30 "
         "union all select id, ext from bt_ext",
         columns=("id", "qty"),
         rows=_count(lambda r: r[2] > 30) + len(EXT)),
    Case("select id from bt_item union all select id from bt_ext "
         "union all select gid from bt_grp",
         columns=("id",), rows=N_ITEMS + len(EXT) + len(GROUPS)),
    Case("select u.id from (select id from bt_item "
         "union all select id from bt_ext) u where u.id < 5",
         columns=("id",), rows=10),
    Case("select u.id from (select id from bt_item "
         "union all select id from bt_ext) u order by u.id limit 6",
         columns=("id",), rows=6),
    Case("select count(*) as n from (select id from bt_item "
         "union all select id from bt_ext) u",
         columns=("n",), rows=1),
]


# ---------------------------------------------------------------------------
# 10. nested views — the VDM stack
# ---------------------------------------------------------------------------

STATEMENTS += [
    Case("select * from bv_base",
         columns=("id", "grp", "qty", "big", "price", "amt", "name", "flag",
                  "dt"),
         rows=N_ITEMS),
    Case("select id, name from bv_filt where qty > 30",
         columns=("id", "name"), rows=_count(lambda r: r[2] > 30)),
    Case("select * from bv_join",
         columns=("id", "qty", "name", "gname"), rows=N_ITEMS),
    Case("select id, gname from bv_join where gname is null",
         columns=("id", "gname"), rows=_N_NULL_GRP),
    Case("select * from bv_agg order by grp",
         columns=("grp", "n", "total"), rows=_N_GRPS),
    Case("select grp, total from bv_agg where total > 0",
         columns=("grp", "total"), rows=_N_GRPS),
    Case("select v.id from bv_join v join bt_ext e on v.id = e.id",
         columns=("id",), rows=_N_IN_EXT),
    Case("select count(*) as n from bv_join where qty >= 0",
         columns=("n",), rows=1),
    Case("select name from bv_join order by id desc limit 2",
         columns=("name",), rows=2),
    Case("select a.grp from bv_agg a where a.grp in "
         "(select g.gid from bt_grp g)",
         columns=("grp",), rows=len(GROUPS)),
]


# ---------------------------------------------------------------------------
# 11. sys.* virtual tables (volatile: the battery itself grows them)
# ---------------------------------------------------------------------------

for sys_table in (
    "sys.query_log", "sys.operator_stats", "sys.plan_feedback",
    "sys.query_shapes", "sys.metrics", "sys.rewrite_fires",
    "sys.cache_entries", "sys.wal_segments", "sys.active_spans",
    "sys.fault_points", "sys.sessions", "sys.admission", "sys.plan_cache",
):
    STATEMENTS.append(Case(
        f"select * from {sys_table} limit 3", volatile=True,
    ))


# ---------------------------------------------------------------------------
# 12. predicates and expressions — IN, BETWEEN, LIKE, IS NULL, CASE, CAST
# ---------------------------------------------------------------------------

STATEMENTS += [
    Case("select id from bt_item where id in (1, 2, 99)",
         columns=("id",), rows=2),
    Case("select id from bt_item where name in ('item 5', 'it''s 7')",
         columns=("id",), rows=2),
    Case("select id from bt_item where qty between 9 and 30",
         columns=("id",), rows=_count(lambda r: 9 <= r[2] <= 30)),
    Case("select id from bt_item where name like 'item 1%'",
         columns=("id",),
         rows=_count(lambda r: r[6].startswith("item 1"))),
    Case("select id from bt_item where name like '%''%'",
         columns=("id",), rows=1),
    Case("select id from bt_item where name is null",
         columns=("id",), rows=0),
    Case("select id from bt_item where name is not null",
         columns=("id",), rows=N_ITEMS),
    Case("select id from bt_item where not (qty > 30)",
         columns=("id",), rows=_count(lambda r: not r[2] > 30)),
    Case("select id from bt_item where qty > 30 and flag = true",
         columns=("id",), rows=_count(lambda r: r[2] > 30 and r[7])),
    Case("select id from bt_item where qty > 60 or flag = false",
         columns=("id",), rows=_count(lambda r: r[2] > 60 or not r[7])),
    Case("select case when qty > 30 then 'hi' else 'lo' end as bucket "
         "from bt_item",
         columns=("bucket",), rows=N_ITEMS),
    Case("select id, case when flag then qty else 0 end as v from bt_item",
         columns=("id", "v"), rows=N_ITEMS),
    Case("select cast(qty as double) as v from bt_item where id = 2",
         columns=("v",), rows=1),
    Case("select cast(price as int) as v from bt_item where id = 2",
         columns=("v",), rows=1),
    Case("select cast('2020-01-05' as date) as v from bt_item where id = 0",
         columns=("v",), rows=1),
    Case("select id from bt_item where dt = cast('2020-01-05' as date)",
         columns=("id",), rows=1),
    Case("select id, qty + 1 from bt_item where id = 1",
         rows=1),
    Case("select qty * 2 - 1 as v, qty / 3 as w, qty % 5 as m "
         "from bt_item where id = 9",
         columns=("v", "w", "m"), rows=1),
    Case("select (qty + 1) * (qty - 1) as v from bt_item where id = 4",
         columns=("v",), rows=1),
    Case("select id from bt_item where (qty + 3) / 3 = id + 1",
         columns=("id",), rows=N_ITEMS),
]


# ---------------------------------------------------------------------------
# 13. deliberate errors — parse and bind failures
# ---------------------------------------------------------------------------

STATEMENTS += [
    Case("selec id from bt_item", error="syntax"),
    Case("select from bt_item", error="syntax"),
    Case("select id from", error="syntax"),
    Case("select id from bt_item order", error="syntax"),
    Case("select id from bt_item limit", error="syntax"),
    Case("select id from bt_item where", error="syntax"),
    Case("select id from bt_item group by", error="syntax"),
    Case("select 'unterminated from bt_item", error="syntax"),
    Case("select (id from bt_item", error="syntax"),
    Case("select id from bt_item union select id from bt_item",
         error="syntax"),
    Case("select id from bt_item where qty ~ 3", error="syntax"),
    Case("select case when qty > 1 then 1 from bt_item", error="syntax"),
    Case("select * from nosuch_table", error="bind"),
    Case("select nosuch_col from bt_item", error="bind"),
    Case("select i.nosuch from bt_item i", error="bind"),
    Case("select x.id from bt_item i", error="bind"),
    Case("select id from bt_item cross join bt_ext", error="bind"),
    Case("select nosuchfn(id) as v from bt_item", error="bind"),
    Case("select abs(id, id) as v from bt_item", error="bind"),
    Case("select id from bt_item where sum(qty) > 1", error="bind"),
    Case("select id, grp from bt_item group by grp", error="bind"),
    Case("select id from bt_item union all select id, ext from bt_ext",
         error="bind"),
    Case("select id from bt_item order by nosuch", error="bind"),
    Case("select * from sys.nosuch", error="bind"),
]


assert len(STATEMENTS) >= 300, len(STATEMENTS)

"""The streaming batch executor: physical planning, pipelined limits,
per-batch deadlines, zero-column batches, early termination, and the
``executor.batch`` fault point."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine import physical
from repro.engine.chunk import Chunk
from repro.engine.physical import (
    BatchScanExec,
    FilterExec,
    HashJoinExec,
    LimitExec,
    ProjectExec,
)
from repro.errors import FaultInjectedError, QueryTimeoutError
from repro.observability import ExecutionCollector

ORDERS = 2000
CUSTS = 100
PAGING_SQL = (
    "select * from bigorders o left outer join pagecust c "
    "on o.cust = c.ckey limit 10 offset 5"
)


def paging_db(batch_size: int) -> Database:
    """The Fig. 6 paging workload: a wide anchor augmented by a unique-key
    left outer join, paged with LIMIT/OFFSET."""
    db = Database(batch_size=batch_size)
    db.execute("create table bigorders (okey int primary key, cust int not null)")
    db.execute("create table pagecust (ckey int primary key, cname varchar(20))")
    db.bulk_load("bigorders", [(i, i % CUSTS) for i in range(ORDERS)])
    db.bulk_load("pagecust", [(i, f"c{i}") for i in range(CUSTS)])
    return db


def analyzed_scan_count(db: Database, sql: str, optimize: bool) -> tuple[int, list]:
    plan = db.plan_for(sql, optimize=optimize)
    collector = ExecutionCollector()
    txn = db.begin()
    try:
        result = db._executor.execute(plan, txn, collector=collector)
    finally:
        db.commit(txn)
    return collector.rows_scanned(), result.rows


UAJ_PAGING_SQL = (
    "select o.okey from bigorders o left outer join pagecust c "
    "on o.cust = c.ckey limit 10 offset 5"
)


class TestLimitPushdownScansLess:
    """Satellite: rows_scanned must drop for the Fig. 6 paging workload,
    across batch sizes {1, 7, 1024}."""

    @pytest.mark.parametrize("batch_size", [1, 7, 1024])
    def test_rows_scanned_drops_vs_unoptimized(self, batch_size):
        # The UAJ shape: no augmenter column is selected, so the optimizer
        # eliminates the join and pushes the limit straight onto the scan.
        db = paging_db(batch_size)
        scanned_opt, rows_opt = analyzed_scan_count(db, UAJ_PAGING_SQL, optimize=True)
        scanned_raw, rows_raw = analyzed_scan_count(db, UAJ_PAGING_SQL, optimize=False)
        assert rows_opt == rows_raw  # same answer either way
        assert len(rows_opt) == 10
        need = 15  # offset 5 + limit 10
        batches = -(-need // batch_size)  # ceil
        # Optimized: join gone — only O(k·batch_size) anchor rows decode.
        assert scanned_opt <= batches * batch_size
        # Unoptimized: the augmentation side is still read in full.
        assert scanned_raw >= CUSTS
        assert scanned_opt < scanned_raw

    @pytest.mark.parametrize("batch_size", [1, 7, 1024])
    def test_streaming_scans_o_of_k_not_o_of_table(self, batch_size):
        # With the augmenter columns selected the join survives, but the
        # streaming pipeline still bounds the anchor scan by the limit:
        # O(k·batch_size) anchor rows plus the (small) augmentation side —
        # while a materializing execution (one table-sized batch) decodes
        # every row of both tables.
        db = paging_db(batch_size)
        scanned_opt, rows_opt = analyzed_scan_count(db, PAGING_SQL, optimize=True)
        assert len(rows_opt) == 10
        need = 15
        batches = -(-need // batch_size)
        assert scanned_opt <= batches * batch_size + CUSTS
        materializing = paging_db(10_000_000)
        scanned_mat, _ = analyzed_scan_count(materializing, PAGING_SQL, optimize=False)
        assert scanned_mat >= ORDERS + CUSTS  # O(table)
        assert scanned_opt < scanned_mat

    def test_rows_scanned_equal_results_across_batch_sizes(self):
        expected = None
        for batch_size in (1, 7, 1024):
            db = paging_db(batch_size)
            rows = db.query(PAGING_SQL).rows
            if expected is None:
                expected = rows
            else:
                assert rows == expected


class TestPerBatchDeadline:
    """Satellite: the statement timeout is checked inside the per-batch
    loop, so a long streaming scan is interrupted mid-operator."""

    def wide_db(self, batch_size: int = 10, rows: int = 500) -> Database:
        db = Database(batch_size=batch_size)
        db.execute("create table wide (id int primary key, v int)")
        db.bulk_load("wide", [(i, i) for i in range(rows)])
        return db

    def test_deadline_fires_mid_scan(self, monkeypatch):
        db = self.wide_db()
        plan = db.plan_for("select v from wide")
        # A fake clock that jumps one second per check: the deadline is
        # crossed after a handful of batches, far from any operator
        # boundary (the scan alone would produce 50 batches).
        clock = iter(range(1, 10_000))
        monkeypatch.setattr(physical, "_now", lambda: next(clock))
        txn = db.begin()
        try:
            with pytest.raises(QueryTimeoutError, match="deadline exceeded"):
                db._executor.execute(plan, txn, deadline=8)
        finally:
            db.commit(txn)
        produced = db.metrics.counter("exec.batches_produced").value
        assert 0 < produced < 50  # some batches flowed, the scan never finished

    def test_query_timeout_over_wide_scan(self):
        db = self.wide_db(batch_size=16, rows=4000)
        with pytest.raises(QueryTimeoutError):
            db.query("select count(*) from wide", timeout=0.0)
        assert db.metrics.counter("query.timeouts").value == 1
        # The engine recovers: the same query without a deadline works.
        assert db.query("select count(*) from wide").scalar() == 4000


class TestZeroColumnBatches:
    """Satellite: zero-column chunks keep their row_count through the
    batch pipeline (COUNT(*) reads no columns at all)."""

    def counted_db(self, batch_size: int = 7, rows: int = 3000) -> Database:
        db = Database(batch_size=batch_size)
        db.execute("create table t (id int primary key, v int)")
        db.bulk_load("t", [(i, i) for i in range(rows)])
        return db

    def test_concat_preserves_zero_column_row_count(self):
        merged = Chunk.concat([Chunk({}, 3), Chunk({}, 4), Chunk({}, 0)])
        assert merged.row_count == 7
        assert merged.columns == {}
        assert merged.rows([]) == [()] * 7
        assert Chunk.concat([]).row_count == 0

    def test_concat_with_columns(self):
        merged = Chunk.concat([Chunk({1: [10, 11]}, 2), Chunk({1: [12]}, 1)])
        assert merged.row_count == 3
        assert merged.column(1) == [10, 11, 12]

    @pytest.mark.parametrize("batch_size", [1, 7, 1024])
    def test_count_star_under_limit(self, batch_size):
        db = self.counted_db(batch_size=batch_size, rows=300)
        assert db.query("select count(*) from t limit 1").scalar() == 300

    def test_fully_pruned_count_star_under_limit(self):
        db = self.counted_db()
        # v > 10**9 prunes every zone-mapped block; the aggregate still
        # produces its default group and LIMIT still emits it.
        result = db.query("select count(*) from t where v > 1000000000 limit 3")
        assert result.scalar() == 0
        assert db.metrics.counter("nse.blocks_pruned").value > 0

    def test_partially_pruned_count_star(self):
        db = self.counted_db()
        assert db.query("select count(*) from t where v < 50").scalar() == 50


class TestEarlyTermination:
    def test_limit_flags_and_metrics(self):
        db = Database(batch_size=4)
        db.execute("create table t (id int primary key)")
        db.bulk_load("t", [(i,) for i in range(100)])
        text = db.explain("select id from t limit 3", analyze=True)
        assert "early-terminated" in text
        assert db.metrics.counter("exec.early_terminations").value > 0
        assert db.metrics.counter("exec.batches_produced").value > 0
        assert db.metrics.histogram("exec.peak_batch_rows").count > 0
        assert db.metrics.histogram("exec.peak_batch_rows").max <= 4

    def test_exists_short_circuits_subquery_side(self):
        db = Database(batch_size=2)
        db.execute("create table a (x int primary key)")
        db.execute("create table b (y int primary key)")
        db.bulk_load("a", [(i,) for i in range(10)])
        db.bulk_load("b", [(i,) for i in range(1000)])
        scanned, rows = analyzed_scan_count(
            db, "select x from a where exists (select y from b)", optimize=True
        )
        assert len(rows) == 10
        # The EXISTS side stops at its first non-empty batch.
        assert scanned <= 10 + 2 * 2


class TestBatchFaultPoint:
    """Satellite: fault injection reaches inside the batch loops."""

    def faulted_db(self) -> Database:
        db = Database(batch_size=5)
        db.execute("create table t (id int primary key)")
        db.bulk_load("t", [(i,) for i in range(40)])
        return db

    def test_fault_fires_on_nth_batch(self):
        db = self.faulted_db()
        rule = db.faults.arm("executor.batch", nth=3)
        with pytest.raises(FaultInjectedError):
            db.query("select id from t")
        assert rule.injections == 1
        db.faults.disarm()
        assert len(db.query("select id from t").rows) == 40

    def test_fault_matches_operator_name(self):
        db = self.faulted_db()
        db.faults.arm("executor.batch", match={"op": "BatchScan(t)"})
        with pytest.raises(FaultInjectedError):
            db.query("select id from t")
        db.faults.disarm("executor.batch")
        # A non-matching op name never fires.
        rule = db.faults.arm("executor.batch", match={"op": "Sort"})
        assert len(db.query("select id from t").rows) == 40
        assert rule.injections == 0


class TestPhysicalPlanner:
    def planner_db(self) -> Database:
        db = paging_db(batch_size=64)
        return db

    def test_scan_chain_shapes(self):
        db = self.planner_db()
        plan = db.plan_for("select okey from bigorders where cust > 10 limit 2")
        root = db._executor.compile(plan)
        kinds = [type(op) for op in root.walk()]
        assert kinds == [ProjectExec, LimitExec, FilterExec, BatchScanExec]

    def test_filter_over_scan_donates_prune_bounds(self):
        db = self.planner_db()
        plan = db.plan_for("select okey from bigorders where okey >= 1500")
        scan = [op for op in db._executor.compile(plan).walk()
                if isinstance(op, BatchScanExec)][0]
        assert ("okey", ">=", 1500) in scan.prune_bounds
        assert "zone-map" in scan.strategy()

    def test_pushed_limit_becomes_build_side(self):
        db = self.planner_db()
        plan = db.plan_for(PAGING_SQL, optimize=True)
        joins = [op for op in db._executor.compile(plan).walk()
                 if isinstance(op, HashJoinExec)]
        assert joins, "expected the augmentation join in the physical plan"
        # The limited anchor (15 estimated rows) is cheaper than the
        # 100-row augmentation side: it becomes the build side.
        assert joins[0].build_side == "left"

    def test_unlimited_join_builds_on_smaller_side(self):
        db = self.planner_db()
        plan = db.plan_for(
            "select o.okey, c.cname from bigorders o "
            "join pagecust c on o.cust = c.ckey"
        )
        join = [op for op in db._executor.compile(plan).walk()
                if isinstance(op, HashJoinExec)][0]
        assert join.build_side == "right"  # pagecust is 20x smaller

    def test_scan_reads_only_live_columns(self):
        db = self.planner_db()
        plan = db.plan_for("select okey from bigorders")
        scan = [op for op in db._executor.compile(plan).walk()
                if isinstance(op, BatchScanExec)][0]
        assert [c.name for c in scan.wanted] == ["okey"]


class TestStreamingSemantics:
    def test_left_outer_null_extension_is_inline(self):
        """Unmatched anchor rows NULL-extend in place, preserving anchor
        order batch by batch (the §4.4 top-N pushdown relies on it)."""
        db = Database(batch_size=2)
        db.execute("create table o (okey int primary key, cust int)")
        db.execute("create table c (ckey int primary key, cname varchar(8))")
        db.bulk_load("o", [(i, i) for i in range(1, 7)])
        db.bulk_load("c", [(i, f"c{i}") for i in (2, 4, 6)])
        rows = db.query(
            "select o.okey, c.cname from o "
            "left outer join c on o.cust = c.ckey"
        ).rows
        assert rows == [
            (1, None), (2, "c2"), (3, None), (4, "c4"), (5, None), (6, "c6"),
        ]

    @pytest.mark.parametrize("batch_size", [1, 3, 1024])
    def test_aggregate_and_sort_across_batch_boundaries(self, batch_size):
        db = Database(batch_size=batch_size)
        db.execute("create table s (g int, v int)")
        db.bulk_load("s", [(i % 3, i) for i in range(50)])
        rows = db.query(
            "select g, count(*) as n, sum(v) as t from s group by g order by g"
        ).rows
        assert [r[0] for r in rows] == [0, 1, 2]
        assert sum(r[1] for r in rows) == 50
        assert sum(r[2] for r in rows) == sum(range(50))

    def test_distinct_streams_across_batches(self):
        db = Database(batch_size=3)
        db.execute("create table d (v int)")
        db.bulk_load("d", [(i % 4,) for i in range(40)])
        rows = db.query("select distinct v from d order by v").rows
        assert rows == [(0,), (1,), (2,), (3,)]


class TestRowAtATimeStreaming:
    """Satellite (PR 5): batch_size=1 — the executor's worst case, every
    operator boundary crossed per row — over the two shapes the fuzz
    oracles lean on hardest: ORDER BY + LIMIT paging and DISTINCT over a
    UnionAll."""

    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_order_by_limit_offset_page(self, batch_size):
        db = paging_db(batch_size)
        sql = (
            "select o.okey, c.cname from bigorders o "
            "left outer join pagecust c on o.cust = c.ckey "
            "order by o.okey desc limit 7 offset 3"
        )
        rows = db.query(sql).rows
        assert [r[0] for r in rows] == list(range(ORDERS - 4, ORDERS - 11, -1))
        assert rows == db.query(sql, optimize=False).rows

    def test_order_by_limit_agrees_across_batch_sizes(self):
        sql = (
            "select o.okey, c.cname from bigorders o "
            "left outer join pagecust c on o.cust = c.ckey "
            "order by o.okey limit 13 offset 8"
        )
        expected = None
        for batch_size in (1, 2, 1024):
            rows = paging_db(batch_size).query(sql).rows
            if expected is None:
                expected = rows
                assert [r[0] for r in rows] == list(range(8, 21))
            else:
                assert rows == expected

    def union_db(self, batch_size: int) -> Database:
        db = Database(batch_size=batch_size)
        db.execute("create table ua (v int, tag varchar(4))")
        db.execute("create table ub (v int, tag varchar(4))")
        db.bulk_load("ua", [(i % 5, "a") for i in range(23)])
        db.bulk_load("ub", [(i % 7, "b") for i in range(31)])
        return db

    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_distinct_over_union_all(self, batch_size):
        db = self.union_db(batch_size)
        sql = (
            "select distinct v from "
            "(select v from ua union all select v from ub) u order by v"
        )
        assert db.query(sql).rows == [(i,) for i in range(7)]
        assert db.query(sql, optimize=False).rows == [(i,) for i in range(7)]

    def test_distinct_over_union_all_with_limit_at_batch_one(self):
        db = self.union_db(1)
        sql = (
            "select distinct v, tag from "
            "(select v, tag from ua union all select v, tag from ub) u "
            "order by v, tag limit 5"
        )
        rows = db.query(sql).rows
        assert rows == [(0, "a"), (0, "b"), (1, "a"), (1, "b"), (2, "a")]
        assert rows == db.query(sql, optimize=False).rows

"""Property tests over the ``repro.fuzz`` workload generator, oracles, and
reducer.

Three guarantees are pinned down:

1. every generated case is inside the engine's supported surface — it
   parses, binds, and executes with and without the optimizer;
2. the rule-targeting bias works: a case generated for a rewrite target
   actually fires that rewrite (asserted through the per-query
   ``rewrite_fires`` counters), so the differential oracle exercises
   every paper rewrite, not whatever random SQL happens to hit;
3. the oracle suite has teeth: deliberately breaking the UAJ used-fields
   check (§4.3's central soundness condition) makes the differential
   oracle report a failure within the CI campaign budget, and the
   reducer shrinks it to a replayable repro.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import TARGET_FIRES, TARGETS, Case, WorkloadGenerator
from repro.fuzz.oracles import ORACLES, comparison_mode, run_all_oracles
from repro.fuzz.reducer import reduce_case
from repro.optimizer.rules import simplify_joins

GENERATOR_SEED = 101
EXECUTE_ITERATIONS = 200
BIAS_ITERATIONS = 120


@pytest.fixture(scope="module")
def cases() -> list[Case]:
    generator = WorkloadGenerator(seed=GENERATOR_SEED)
    return [generator.case(i) for i in range(EXECUTE_ITERATIONS)]


class TestGeneratedCasesExecute:
    def test_every_case_parses_binds_and_executes(self, cases):
        """The generator only emits supported SQL: both optimizer arms and
        the COUNT(*) wrapper must run without raising."""
        for case in cases:
            db = case.build()
            sql = case.sql()
            optimized = db.query(sql)
            baseline = db.query(sql, optimize=False)
            assert optimized.column_names == baseline.column_names
            assert db.query(case.query.count_sql()).scalar() is not None

    def test_cases_cover_every_target(self, cases):
        seen = {case.targets[0] if case.targets else "mixed" for case in cases}
        assert seen >= set(TARGETS)

    def test_comparison_modes_all_occur(self, cases):
        modes = {comparison_mode(case) for case in cases}
        assert modes == {"ordered", "multiset", "subset"}

    def test_generation_is_deterministic(self):
        a = WorkloadGenerator(seed=GENERATOR_SEED)
        b = WorkloadGenerator(seed=GENERATOR_SEED)
        for index in (0, 7, 63):
            assert a.case(index).to_dict() == b.case(index).to_dict()
        assert (a.case(0).to_dict() !=
                WorkloadGenerator(seed=GENERATOR_SEED + 1).case(0).to_dict())

    def test_case_round_trips_through_json_dict(self, cases):
        for case in cases[:20]:
            clone = Case.from_dict(case.to_dict())
            assert clone.sql() == case.sql()
            assert clone.to_dict() == case.to_dict()


class TestRewriteBias:
    """Satellite (b): every rule-targeting bias fires its rewrite."""

    def test_every_targeted_case_fires_its_rewrite(self):
        generator = WorkloadGenerator(seed=GENERATOR_SEED)
        counts: dict[str, int] = {}
        for index in range(BIAS_ITERATIONS):
            case = generator.case(index)
            target = case.targets[0] if case.targets else "mixed"
            prefixes = TARGET_FIRES.get(target, ())
            if not prefixes:
                continue
            fires = case.build().query(case.sql()).stats.rewrite_fires
            assert any(
                name.startswith(prefix)
                for prefix in prefixes
                for name in fires
            ), (f"case {index} targets {target!r} but fired only {fires} "
                f"for {case.sql()!r}")
            counts[target] = counts.get(target, 0) + 1
        # every rewrite target was actually sampled, not vacuously skipped
        for target in TARGETS:
            if TARGET_FIRES.get(target):
                assert counts.get(target, 0) >= 5, (target, counts)


class TestOraclesAreClean:
    def test_all_oracles_pass_on_generated_cases(self, cases):
        for case in cases[:60]:
            assert run_all_oracles(case) == []


def _break_uaj_used_fields_check(monkeypatch):
    """Disable §4.3's soundness condition: pretend augmenter columns are
    never referenced, so UAJ elimination drops joins whose output the
    query still needs."""
    original = simplify_joins._simplify_join

    def broken(op, required, sctx):
        return original(op, required - op.right.output_cids, sctx)

    monkeypatch.setattr(simplify_joins, "_simplify_join", broken)


class TestOraclesHaveTeeth:
    """Acceptance: a deliberately broken rewrite rule is caught and
    minimized within the 300-run campaign budget."""

    def test_broken_uaj_rule_is_caught_and_reduced(self, monkeypatch):
        _break_uaj_used_fields_check(monkeypatch)
        generator = WorkloadGenerator(seed=7)
        differential = ORACLES["rewrite-differential"]
        for index in range(300):
            case = generator.case(index)
            found = differential(case)
            if found is None:
                continue
            reduced, steps = reduce_case(case, found.oracle)
            assert steps > 0, "reduction made no progress"
            assert differential(reduced) is not None, (
                "reduced case no longer reproduces the discrepancy"
            )
            replayed = Case.from_dict(reduced.to_dict())
            assert differential(replayed) is not None, (
                "serialized repro no longer reproduces the discrepancy"
            )
            total_rows = sum(len(t.rows) for t in reduced.tables)
            assert total_rows <= sum(len(t.rows) for t in case.tables)
            return
        pytest.fail("broken UAJ rule survived 300 differential runs")

    def test_reducer_validates_oracle_name(self):
        case = WorkloadGenerator(seed=GENERATOR_SEED).case(0)
        with pytest.raises(ValueError, match="unknown oracle"):
            reduce_case(case, "no-such-oracle")

    def test_reducer_is_a_noop_on_clean_cases(self):
        case = WorkloadGenerator(seed=GENERATOR_SEED).case(0)
        assert run_all_oracles(case) == []
        reduced, steps = reduce_case(case, "rewrite-differential", budget=30)
        assert steps == 0
        assert reduced.sql() == case.sql()

"""Crash-recovery equivalence: only-and-all committed data survives.

A scripted workload commits a known set of rows, then a crash is armed at
each WAL fault point in turn.  Whatever the crash interrupts, recovery
must produce either exactly the committed shadow, or — when the crash hit
the commit path itself — the shadow plus the *whole* in-flight
transaction.  Never a prefix of one.
"""

import warnings

import pytest

from repro.database import Database
from repro.faults import SimulatedCrash, run_chaos

CRASH_POINTS = ("wal.append", "wal.fsync", "wal.checkpoint", "wal.replay")


def rows_of(db):
    return sorted(db.query("select id, v from t").rows)


def committed_fixture(wal_dir):
    """A database with committed shadow {1,2,3} and one pending txn {4,5}."""
    db = Database(wal_dir=str(wal_dir))
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20)")
    db.checkpoint()
    db.execute("insert into t values (3, 30)")
    return db


SHADOW = [(1, 10), (2, 20), (3, 30)]
WITH_PENDING = SHADOW + [(4, 40), (5, 50)]


@pytest.mark.parametrize("point", ("wal.append", "wal.fsync"))
def test_crash_during_commit_is_atomic(tmp_path, point):
    db = committed_fixture(tmp_path)
    # Under the "commit" fsync policy both points first fire on the commit
    # path: wal.append on the commit record, wal.fsync on its sync.
    match = {"kind": "commit"} if point == "wal.append" else None
    db.faults.arm(point, crash=True, times=1, match=match)
    txn = db.begin()
    db.execute("insert into t values (4, 40), (5, 50)", txn)
    with pytest.raises(SimulatedCrash):
        db.commit(txn)
    db.faults.disarm()
    db.close()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        recovered = Database.recover(str(tmp_path))
    survivors = rows_of(recovered)
    # Commit ambiguity: the transaction is all-there or all-gone.
    assert survivors in (SHADOW, WITH_PENDING)
    recovered.close()


def test_crash_before_commit_loses_whole_txn(tmp_path):
    db = committed_fixture(tmp_path)
    db.faults.arm("wal.append", crash=True, times=1, match={"kind": "insert"})
    txn = db.begin()
    with pytest.raises(SimulatedCrash):
        db.execute("insert into t values (4, 40), (5, 50)", txn)
    db.faults.disarm()
    db.close()
    recovered = Database.recover(str(tmp_path))
    assert rows_of(recovered) == SHADOW
    recovered.close()


def test_crash_during_checkpoint_preserves_state(tmp_path):
    db = committed_fixture(tmp_path)
    db.faults.arm("wal.checkpoint", crash=True, times=1)
    with pytest.raises(SimulatedCrash):
        db.checkpoint()
    db.faults.disarm()
    db.close()
    recovered = Database.recover(str(tmp_path))
    assert rows_of(recovered) == SHADOW
    recovered.close()


def test_crash_mid_replay_is_harmless(tmp_path):
    db = committed_fixture(tmp_path)
    db.close()
    # First recovery attempt dies mid-replay (before any replay txn begins
    # or between them); the directory must still recover cleanly after.
    probe = Database(wal_dir=str(tmp_path))
    probe.faults.arm("wal.replay", crash=True, times=1)
    with pytest.raises(SimulatedCrash):
        probe._replay_from_disk()
    # The interrupted replay left no half-applied transaction behind.
    for table in probe.catalog.tables():
        snapshot = probe.begin()
        assert table.schema.name != "t" or table.visible_row_count(snapshot) in (0, 2)
        probe.commit(snapshot)
    probe.close()
    recovered = Database.recover(str(tmp_path))
    assert rows_of(recovered) == SHADOW
    recovered.close()


def test_every_point_round_trips_under_chaos(tmp_path):
    """Randomized end-to-end: every crash point armed many times over a
    campaign, with torn tails and mid-replay crashes; the shadow-model
    equivalence check inside run_chaos raises on any divergence."""
    report = run_chaos(str(tmp_path), seed=1234, ops=80, fsync="commit")
    assert report.crashes > 0 and report.recoveries == report.crashes + 1
    exercised = set(report.crash_points)
    assert {"wal.append", "wal.fsync"} & exercised
    assert report.final_rows >= 0


@pytest.mark.parametrize("fsync", ("always", "never"))
def test_chaos_other_fsync_policies(tmp_path, fsync):
    report = run_chaos(str(tmp_path), seed=77, ops=40, fsync=fsync)
    assert report.recoveries >= 1

"""UAJ-elimination tests (paper §4.2-§4.3) beyond the Fig. 5 suite:
positive and negative cases for every AJ class, plus cascades."""

import pytest

from repro import Database
from repro.algebra.ops import Join, Scan
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table fact (fid int primary key, d1 int not null, d2 int, "
        "dn int not null, amount decimal(10,2))"
    )
    database.execute("create table dim1 (k int primary key, v varchar(10))")
    database.execute("create table dim2 (k int primary key, v varchar(10))")
    database.execute("create table dup (k int, v varchar(10))")  # NOT unique
    database.bulk_load("dim1", [(i, f"d1_{i}") for i in range(10)])
    database.bulk_load("dim2", [(i, f"d2_{i}") for i in range(10)])
    database.bulk_load("dup", [(i % 5, f"x{i}") for i in range(10)])
    database.bulk_load(
        "fact", [(i, i % 10, i % 10 if i % 3 else None, i % 10, f"{i}.00") for i in range(30)]
    )
    return database


def join_count(db, sql, profile="hana"):
    db.set_profile(profile)
    return sum(1 for n in db.plan_for(sql).walk() if isinstance(n, Join))


class TestRemoval:
    def test_unused_left_outer_on_pk_removed(self, db):
        sql = "select f.fid from fact f left join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_used_augmenter_kept(self, db):
        sql = "select f.fid, dim1.v from fact f left join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)

    def test_augmenter_used_in_where_kept(self, db):
        sql = (
            "select f.fid from fact f left join dim1 on f.d1 = dim1.k "
            "where dim1.v = 'd1_3'"
        )
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)

    def test_augmenter_used_in_order_by_kept(self, db):
        sql = (
            "select f.fid from fact f left join dim1 on f.d1 = dim1.k order by dim1.v"
        )
        assert join_count(db, sql) == 1

    def test_non_unique_augmenter_kept(self, db):
        sql = "select f.fid from fact f left join dup on f.d1 = dup.k"
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)

    def test_inner_join_not_removed_without_guarantee(self, db):
        # inner join filters rows with no match; even unique right side is
        # not enough without an exactly-one guarantee
        sql = "select f.fid from fact f join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)

    def test_cascading_removal(self, db):
        sql = (
            "select f.fid from fact f "
            "left join dim1 on f.d1 = dim1.k "
            "left join dim2 on f.dn = dim2.k"
        )
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_removal_unlocks_nested_removal(self, db):
        # dim1's join is used only by dim2's join condition... construct:
        # outer join's augmenter is itself a join that becomes prunable
        sql = (
            "select f.fid from fact f left join "
            "(select d1x.k, d2x.v from dim1 d1x left join dim2 d2x on d1x.k = d2x.k) s "
            "on f.d1 = s.k"
        )
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_count_star_prunes_everything(self, db):
        sql = (
            "select count(*) from fact f left join dim1 on f.d1 = dim1.k "
            "left join dim2 on f.dn = dim2.k"
        )
        assert join_count(db, sql) == 0
        a = db.query(sql).scalar()
        b = db.query(sql, optimize=False).scalar()
        assert a == b == 30

    def test_residual_conjunct_still_augmentation(self, db):
        # extra non-equi conjunct only reduces matches; join stays removable
        sql = (
            "select f.fid from fact f left join dim1 "
            "on f.d1 = dim1.k and dim1.v > 'a'"
        )
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_nullable_anchor_key_fine_for_left_outer(self, db):
        sql = "select f.fid from fact f left join dim2 on f.d2 = dim2.k"
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)


class TestDeclaredCardinality:
    def test_declared_to_one_enables_removal(self, db):
        sql = "select f.fid from fact f left outer many to one join dup on f.d1 = dup.k"
        assert join_count(db, sql) == 0
        # NOTE: the declaration is wrong for `dup` (duplicates exist), so we
        # do not assert equivalence — §7.3: declared cardinality is trusted,
        # the risk is the developer's.

    def test_declared_exact_one_enables_inner_removal(self, db):
        sql = "select f.fid from fact f inner many to exact one join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)  # declaration is actually true here

    def test_declared_many_to_many_no_removal(self, db):
        sql = "select f.fid from fact f left outer many to many join dup on f.d1 = dup.k"
        assert join_count(db, sql) == 1


class TestFkAndSelfJoin:
    def test_fk_inner_join_removed(self, db):
        from repro.catalog.schema import ForeignKey
        db.catalog.table_schema("fact").foreign_keys.append(
            ForeignKey(("d1",), "dim1", ("k",))
        )
        sql = "select f.fid from fact f join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_fk_wrong_target_not_removed(self, db):
        from repro.catalog.schema import ForeignKey
        db.catalog.table_schema("fact").foreign_keys.append(
            ForeignKey(("d1",), "dim2", ("k",))
        )
        sql = "select f.fid from fact f join dim1 on f.d1 = dim1.k"
        assert join_count(db, sql) == 1

    def test_inner_self_join_on_key_removed_when_unused(self, db):
        # AJ 1b: anchor is a projection of dim1 itself
        sql = (
            "select v.k from (select k from dim1) v join dim1 x on v.k = x.k"
        )
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_inner_self_join_nullable_key_not_removed(self, db):
        sql = "select v.d2 from (select d2 from fact) v join fact x on v.d2 = x.fid"
        # d2 is nullable: NULL rows are filtered by the inner join, removal
        # would keep them
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)

    def test_filtered_inner_augmenter_not_removed(self, db):
        sql = (
            "select v.k from (select k from dim1) v "
            "join (select k from dim1 where k > 3) x on v.k = x.k"
        )
        assert join_count(db, sql) == 1
        assert_equivalent(db, sql)


class TestEmptyAugmenter:
    def test_always_false_filter_join_removed(self, db):
        # AJ 2b: left outer join with a provably empty relation
        sql = (
            "select f.fid, e.v from fact f left join "
            "(select k, v from dim1 where 1 = 0) e on f.d1 = e.k"
        )
        assert join_count(db, sql) == 0
        result = db.query(sql)
        assert all(row[1] is None for row in result.rows)
        assert_equivalent(db, sql)

    def test_empty_union_augmenter_removed(self, db):
        sql = (
            "select f.fid, e.v from fact f left join "
            "(select k, v from dim1 where false union all "
            " select k, v from dim2 where false) e on f.d1 = e.k"
        )
        assert join_count(db, sql) == 0
        assert_equivalent(db, sql)

    def test_limit_zero_augmenter_removed(self, db):
        sql = (
            "select f.fid from fact f left join "
            "(select k from dim1 limit 0) e on f.d1 = e.k"
        )
        assert join_count(db, sql) == 0

    def test_inner_join_with_empty_not_rewritten_to_nulls(self, db):
        # inner ⋈ ∅ = ∅; the AJ 2b rewrite must NOT apply
        sql = (
            "select f.fid from fact f join "
            "(select k from dim1 where false) e on f.d1 = e.k"
        )
        assert db.query(sql).rows == []
        assert_equivalent(db, sql)


class TestScanPruning:
    def test_scan_reads_only_used_columns(self, db):
        # engine-level late materialization: unused fact columns never decode
        plan = db.plan_for("select fid from fact")
        from repro.engine.executor import _collect_used_cids
        used = _collect_used_cids(plan)
        scan = [n for n in plan.walk() if isinstance(n, Scan)][0]
        wanted = [c.name for c in scan.output if c.cid in used]
        assert wanted == ["fid"]

"""Telemetry export: Prometheus exposition validity, JSON, and the
HTTP scrape endpoint."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro import Database
from repro.observability import (
    MetricsRegistry,
    MetricsServer,
    render_metrics_json,
    render_prometheus,
    render_spans_json,
)

# One exposition line: either "# TYPE name counter|gauge|summary" or
# "name{labels} value" with a numeric (or NaN/Inf) value.
_TYPE_LINE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]Inf|[0-9.eE+-]+)$"
)


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (a int primary key, b int)")
    database.execute("insert into t values (1,10),(2,20),(3,30)")
    database.query("select count(*) from t")
    return database


class TestPrometheusFormat:
    def test_every_line_is_valid_exposition(self, db):
        text = render_prometheus(db.metrics)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert _TYPE_LINE.match(line) or _SAMPLE_LINE.match(line), line

    def test_counter_gets_total_suffix(self, db):
        text = render_prometheus(db.metrics)
        assert "# TYPE repro_queries_executed_total counter" in text
        assert re.search(r"^repro_queries_executed_total 1$", text, re.M)

    def test_histogram_rendered_as_summary(self, db):
        text = render_prometheus(db.metrics)
        assert "# TYPE repro_queries_latency_s summary" in text
        assert 'repro_queries_latency_s{quantile="0.5"}' in text
        assert 'repro_queries_latency_s{quantile="0.95"}' in text
        assert re.search(r"^repro_queries_latency_s_count 1$", text, re.M)

    def test_rewrite_counters_collapse_to_labeled_family(self, db):
        db.execute("create table u (a int primary key, c int)")
        db.execute(
            "create view tv as select t.a, t.b from t "
            "left outer many to one join u on t.a = u.a"
        )
        db.query("select count(*) from tv")   # fires the AJ-removal rewrite
        text = render_prometheus(db.metrics)
        # Case names contain spaces -> must appear only as label values.
        families = [l for l in text.splitlines()
                    if l.startswith("repro_optimizer_rewrites_total{")]
        assert families, text
        for line in families:
            assert re.match(r'^repro_optimizer_rewrites_total\{case="[^"]+"\} \d+$',
                            line)
        assert text.count("# TYPE repro_optimizer_rewrites_total counter") == 1

    def test_empty_registry(self):
        assert "no metrics" in render_prometheus(MetricsRegistry())

    def test_custom_namespace(self, db):
        text = render_prometheus(db.metrics, namespace="htap")
        assert "htap_queries_executed_total" in text
        assert "repro_" not in text

    def test_gauge_and_nan(self):
        registry = MetricsRegistry()
        registry.gauge("temp").set(1.5)
        registry.gauge("nothing").set(float("nan"))
        text = render_prometheus(registry)
        assert "# TYPE repro_temp gauge" in text
        assert re.search(r"^repro_nothing NaN$", text, re.M)


class TestJsonExport:
    def test_metrics_json_round_trips(self, db):
        data = json.loads(render_metrics_json(db.metrics))
        assert data["queries.executed"] == 1
        assert data["queries.latency_s"]["count"] == 1

    def test_spans_json(self, db):
        db.tracing = True
        db.query("select a from t")
        data = json.loads(render_spans_json(db.spans.last_root))
        assert data["name"] == "query"
        assert [c["name"] for c in data["children"]] == [
            "parse", "bind", "optimize", "execute",
        ]


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers["Content-Type"], response.read()


class TestMetricsServer:
    @pytest.fixture
    def server(self, db):
        server = MetricsServer(db, port=0)   # ephemeral port
        server.start()
        yield server
        server.close()

    def test_metrics_endpoint(self, server):
        status, content_type, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert b"repro_queries_executed_total" in body

    def test_metrics_json_endpoint(self, server):
        status, content_type, body = _get(f"{server.url}/metrics.json")
        assert status == 200 and "json" in content_type
        assert json.loads(body)["queries.executed"] == 1

    def test_trace_endpoint_404_then_200(self, db, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/trace")
        assert excinfo.value.code == 404
        db.tracing = True
        db.query("select count(*) from t")
        status, _, body = _get(f"{server.url}/trace")
        assert status == 200
        assert json.loads(body)["name"] == "query"

    def test_slow_endpoint(self, db, server):
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select a from t")
        status, _, body = _get(f"{server.url}/slow")
        assert status == 200
        entries = json.loads(body)
        assert len(entries) == 1 and entries[0]["sql"] == "select a from t"

    def test_healthz(self, server):
        status, _, body = _get(f"{server.url}/healthz")
        assert status == 200 and body == b"ok\n"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_close_releases_port(self, db):
        server = MetricsServer(db, port=0)
        server.start()
        port = server.port
        server.close()
        with pytest.raises(Exception):
            _get(f"http://127.0.0.1:{port}/healthz")

"""CDS modeling and view-compilation tests (paper §2.3)."""

import pytest

from repro import Database
from repro.datatypes import INTEGER, decimal_type, varchar
from repro.errors import CatalogError
from repro.vdm.cds import Association, Cardinality, Element, Entity, PathField
from repro.vdm.compiler import compile_entity_view, compile_join_view, deploy_entity
from repro.algebra.ops import Join


def sales_entities():
    customer = Entity(
        "buscustomer",
        [
            Element("cid", INTEGER, key=True),
            Element("cname", varchar(30)),
            Element("country", varchar(3)),
        ],
    )
    order = Entity(
        "busorder",
        [
            Element("oid", INTEGER, key=True),
            Element("cid", INTEGER, not_null=True),
            Element("total", decimal_type(15, 2)),
        ],
        [Association("soldto", "buscustomer", (("cid", "cid"),))],
    )
    return {"buscustomer": customer, "busorder": order}


class TestEntity:
    def test_key_elements(self):
        entities = sales_entities()
        assert entities["busorder"].key_elements == ("oid",)

    def test_duplicate_elements_rejected(self):
        with pytest.raises(CatalogError):
            Entity("e", [Element("a", INTEGER), Element("A", INTEGER)])

    def test_association_over_unknown_element_rejected(self):
        with pytest.raises(CatalogError):
            Entity(
                "e",
                [Element("a", INTEGER)],
                [Association("x", "t", (("ghost", "k"),))],
            )

    def test_to_table_schema(self):
        schema = sales_entities()["busorder"].to_table_schema()
        assert schema.primary_key == ("oid",)
        assert not schema.column("cid").nullable

    def test_unknown_association_lookup(self):
        with pytest.raises(CatalogError):
            sales_entities()["busorder"].association("nope")

    def test_cardinality_is_to_one(self):
        assert Cardinality.MANY_TO_ONE.is_to_one
        assert Cardinality.MANY_TO_EXACT_ONE.is_to_one
        assert not Cardinality.ONE_TO_MANY.is_to_one


class TestPathField:
    def test_plain_field(self):
        field = PathField("total")
        assert not field.is_association_path
        assert field.output_name == "total"

    def test_association_path(self):
        field = PathField("soldto.cname", alias="customername")
        assert field.is_association_path
        assert field.parts() == ("soldto", "cname")
        assert field.output_name == "customername"

    def test_default_path_name(self):
        assert PathField("soldto.cname").output_name == "soldto_cname"


class TestCompiler:
    def test_path_expression_becomes_augmentation_join(self):
        db = Database()
        entities = sales_entities()
        for entity in entities.values():
            deploy_entity(db, entity)
        sql = compile_entity_view(
            "v_order",
            entities["busorder"],
            ["oid", "total", PathField("soldto.cname", "customername")],
            entities,
        )
        db.execute(sql)
        plan = db.bind("select * from v_order")
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert len(joins) == 1
        assert str(joins[0].declared) == "MANY TO ONE"

    def test_unused_association_join_is_optimized_away(self):
        db = Database()
        entities = sales_entities()
        for entity in entities.values():
            deploy_entity(db, entity)
        db.execute(
            compile_entity_view(
                "v_order",
                entities["busorder"],
                ["oid", "total", PathField("soldto.cname", "customername")],
                entities,
            )
        )
        plan = db.plan_for("select oid, total from v_order")
        assert not [n for n in plan.walk() if isinstance(n, Join)]

    def test_one_join_per_association_even_for_multiple_fields(self):
        db = Database()
        entities = sales_entities()
        for entity in entities.values():
            deploy_entity(db, entity)
        sql = compile_entity_view(
            "v_order2",
            entities["busorder"],
            [
                "oid",
                PathField("soldto.cname", "cn"),
                PathField("soldto.country", "cc"),
            ],
            entities,
        )
        assert sql.lower().count("join") == 1

    def test_end_to_end_query(self):
        db = Database()
        entities = sales_entities()
        for entity in entities.values():
            deploy_entity(db, entity)
        db.execute("insert into buscustomer values (1, 'ACME', 'DE')")
        db.execute("insert into busorder values (10, 1, 99.50)")
        db.execute(
            compile_entity_view(
                "v_order",
                entities["busorder"],
                ["oid", "total", PathField("soldto.cname", "customername")],
                entities,
            )
        )
        rows = db.query("select * from v_order").rows
        assert rows[0][2] == "ACME"

    def test_unknown_target_entity_rejected(self):
        entities = sales_entities()
        broken = Entity(
            "b",
            [Element("k", INTEGER, key=True)],
            [Association("bad", "ghost", (("k", "k"),))],
        )
        with pytest.raises(CatalogError):
            compile_entity_view("v", broken, [PathField("bad.x")], entities)

    def test_to_many_path_rejected(self):
        entities = sales_entities()
        entity = Entity(
            "c",
            [Element("k", INTEGER, key=True)],
            [Association("items", "busorder", (("k", "cid"),), Cardinality.ONE_TO_MANY)],
        )
        entities["c"] = entity
        with pytest.raises(CatalogError):
            compile_entity_view("v", entity, [PathField("items.total")], entities)

    def test_compile_join_view(self):
        db = Database()
        entities = sales_entities()
        for entity in entities.values():
            deploy_entity(db, entity)
        db.execute("insert into buscustomer values (1, 'ACME', 'DE')")
        db.execute("insert into busorder values (10, 1, 99.50)")
        sql = compile_join_view(
            "v_wide",
            "busorder",
            ["oid", "total"],
            [("buscustomer", ["cname"], "cid", "cid")],
        )
        db.execute(sql)
        assert db.query("select cname from v_wide").rows == [("ACME",)]

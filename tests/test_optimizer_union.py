"""Union All optimization tests (paper §6): UAJ over unions, union-anchor
ASJ (Fig. 13a), case join / heuristic (Fig. 13b), union pruning."""

import pytest

from repro import Database
from repro.algebra.ops import Join, Scan, UnionAll
from tests.conftest import add_vdm_tables, assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table orders (okey int primary key, cust int not null, "
        "status varchar(1) not null, total decimal(10,2))"
    )
    database.bulk_load(
        "orders", [(i, i % 7, "OFP"[i % 3], f"{i}.50") for i in range(40)]
    )
    add_vdm_tables(database)
    return database


def counts(db, sql, profile="hana"):
    db.set_profile(profile)
    plan = db.plan_for(sql)
    joins = sum(1 for n in plan.walk() if isinstance(n, Join))
    scans = sum(1 for n in plan.walk() if isinstance(n, Scan))
    unions = sum(1 for n in plan.walk() if isinstance(n, UnionAll))
    return joins, scans, unions


class TestUajOverUnion:
    def test_disjoint_subsets_removed(self, db):
        sql = (
            "select o.okey from orders o left join "
            "(select okey, total from orders where status = 'O' "
            " union all select okey, total from orders where status = 'F') u "
            "on o.okey = u.okey"
        )
        assert counts(db, sql) == (0, 1, 0)
        assert_equivalent(db, sql)

    def test_overlapping_subsets_kept(self, db):
        sql = (
            "select o.okey from orders o left join "
            "(select okey, total from orders where status = 'O' "
            " union all select okey, total from orders) u "
            "on o.okey = u.okey"
        )
        joins, _, _ = counts(db, sql)
        assert joins == 1
        assert_equivalent(db, sql)

    def test_range_disjoint_subsets_removed(self, db):
        sql = (
            "select o.okey from orders o left join "
            "(select okey from orders where cust < 3 "
            " union all select okey from orders where cust >= 3) u "
            "on o.okey = u.okey"
        )
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_branchid_union_removed(self, db):
        sql = (
            "select o.okey from orders o left join "
            "(select 1 as bid, key, ext from ta "
            " union all select 2 as bid, key, ext from td) u "
            "on o.okey = u.key and u.bid = 1"
        )
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_branchid_join_on_column_removed_when_unused(self, db):
        db.execute(
            "create table docs (dkey int primary key, dtype int not null)"
        )
        db.bulk_load("docs", [(i, 1 + i % 2) for i in range(10)])
        sql = (
            "select d.dkey from docs d left join "
            "(select 1 as bid, key, ext from ta "
            " union all select 2 as bid, key, ext from td) u "
            "on d.dtype = u.bid and d.dkey = u.key"
        )
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_union_used_is_kept(self, db):
        sql = (
            "select o.okey, u.ext from orders o left join "
            "(select 1 as bid, key, ext from ta "
            " union all select 2 as bid, key, ext from td) u "
            "on o.okey = u.key and u.bid = 1"
        )
        # ext used and this is NOT a self-join: must execute the union join
        # (the bid=1 restriction may prune the union to one branch, but a
        # join has to remain)
        assert counts(db, sql)[0] == 1
        assert_equivalent(db, sql)

    def test_empty_branch_pruned_by_bid_filter(self, db):
        sql = (
            "select o.okey, u.ext from orders o left join "
            "(select 1 as bid, key, ext from ta "
            " union all select 2 as bid, key, ext from td) u "
            "on o.okey = u.key and u.bid = 1"
        )
        _, scans, unions = counts(db, sql)
        assert unions == 0  # the bid = 1 filter eliminated the draft branch
        assert scans == 2   # orders + ta


class TestUnionAnchorAsj:
    def test_fig13a_removed(self, db):
        sql = (
            "select u.key, u.a, x.ext from "
            "(select key, a from ta where a < 100 "
            " union all select key, a from ta where a >= 100) u "
            "left join ta x on u.key = x.key"
        )
        joins, scans, _ = counts(db, sql)
        assert joins == 0 and scans == 2
        assert_equivalent(db, sql)

    def test_fig13a_values_rewired(self, db):
        sql = (
            "select u.key, x.ext from "
            "(select key, a from ta where a < 100 "
            " union all select key, a from ta where a >= 100) u "
            "left join ta x on u.key = x.key"
        )
        rows = dict(db.query(sql).rows)
        assert rows[5] == 500

    def test_fig13a_mixed_tables_blocked(self, db):
        # one union child scans td, the augmenter is ta: not a self join
        sql = (
            "select u.key, x.ext from "
            "(select key, a from ta union all select key, a from td) u "
            "left join ta x on u.key = x.key"
        )
        assert counts(db, sql)[0] == 1
        assert_equivalent(db, sql)

    def test_fig13a_gated_by_profile(self, db):
        sql = (
            "select u.key, x.ext from "
            "(select key, a from ta where a < 100 "
            " union all select key, a from ta where a >= 100) u "
            "left join ta x on u.key = x.key"
        )
        assert counts(db, sql, profile="postgres")[0] == 1
        db.set_profile("hana")


class TestFig13b:
    CANONICAL = (
        "select v.bid, v.key, v.a, u.ext from "
        "(select 1 as bid, key, a from ta union all select 2 as bid, key, a from td) v "
        "{join} "
        "(select 1 as bid, key, ext from ta union all select 2 as bid, key, ext from td) u "
        "on v.bid = u.bid and v.key = u.key"
    )
    # Non-canonical: the logical table applies a branch selection, which the
    # extension replicates.  The structural heuristic rejects filtered
    # branches; the case join verifies subsumption per matched branch.
    NON_CANONICAL = (
        "select v.bid, v.key, v.a, u.ext from "
        "(select 1 as bid, key, a from ta where a >= 0 "
        " union all select 2 as bid, key, a from td where a >= 0) v "
        "{join} "
        "(select 1 as bid, key, ext from ta where a >= 0 "
        " union all select 2 as bid, key, ext from td where a >= 0) u "
        "on v.bid = u.bid and v.key = u.key"
    )

    def test_case_join_canonical_removed(self, db):
        sql = self.CANONICAL.format(join="case join")
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_heuristic_canonical_removed(self, db):
        sql = self.CANONICAL.format(join="left outer join")
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_case_join_non_canonical_removed(self, db):
        sql = self.NON_CANONICAL.format(join="case join")
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_heuristic_non_canonical_kept(self, db):
        # the Fig. 14a mechanism: without declared intent, the structural
        # heuristic gives up on non-canonical branches
        sql = self.NON_CANONICAL.format(join="left outer join")
        assert counts(db, sql)[0] == 1
        assert_equivalent(db, sql)

    def test_case_join_without_cap_still_correct(self, db):
        sql = self.CANONICAL.format(join="case join")
        db.set_profile("system_x")
        try:
            assert_equivalent(db, sql, profile="system_x")
        finally:
            db.set_profile("hana")

    def test_anchor_child_without_matching_branch_gets_nulls(self, db):
        # anchor has a third branch (bid 3) with no augmenter counterpart
        sql = (
            "select v.key, u.ext from "
            "(select 1 as bid, key from ta union all select 2 as bid, key from td "
            " union all select 3 as bid, key from ta) v "
            "case join "
            "(select 1 as bid, key, ext from ta union all select 2 as bid, key, ext from td) u "
            "on v.bid = u.bid and v.key = u.key"
        )
        assert counts(db, sql)[0] == 0
        assert_equivalent(db, sql)

    def test_key_mismatch_blocks(self, db):
        # joins on a non-key column: not unique, not an ASJ
        sql = (
            "select v.a, u.ext from "
            "(select 1 as bid, a from ta union all select 2 as bid, a from td) v "
            "case join "
            "(select 1 as bid, a, ext from ta union all select 2 as bid, a, ext from td) u "
            "on v.bid = u.bid and v.a = u.a"
        )
        assert counts(db, sql)[0] == 1
        assert_equivalent(db, sql)

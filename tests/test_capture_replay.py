"""Workload capture (``Database(capture_dir=...)``) and replay
(``python -m repro replay``).

The capture is an append-only JSONL file — header line, then one record
per statement with SQL, timings, shape hash, and (for queries) an
order-insensitive result digest.  Replay re-executes the file on a fresh
database, verifies digests, checks error-statement parity, and reports
per-shape latency deltas through the bench-diff machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.history import load_history
from repro.capture import replay_workload, result_digest
from repro.capture.recorder import load_capture
from repro.database import Database
from repro.errors import ReproError

WORKLOAD = [
    "create table t (id int primary key, v int)",
    "insert into t values (1, 10), (2, 20), (3, 30)",
    "select v from t where v > 15",
    "select count(*) from t",
    "update t set v = 99 where id = 1",
    "select sum(v) from t",
]


def capture_workload(tmp_path, statements=WORKLOAD, subdir="cap"):
    capture_dir = tmp_path / subdir
    db = Database(capture_dir=str(capture_dir))
    try:
        for sql in statements:
            try:
                db.execute(sql)
            except ReproError:
                pass
    finally:
        db.close()
    return capture_dir / "workload.jsonl"


def test_capture_file_format(tmp_path):
    path = capture_workload(tmp_path)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    header, records = lines[0], lines[1:]
    assert header["kind"] == "header"
    assert header["format"] == 1
    assert header["profile"] == "hana"
    assert [r["kind"] for r in records] == [
        "ddl", "dml", "query", "query", "dml", "query",
    ]
    assert [r["seq"] for r in records] == list(range(1, 7))
    for record in records:
        assert record["sql"]
        assert len(record["shape"]) == 12
        assert record["elapsed_ms"] >= 0
    query = records[2]
    assert query["rows"] == 2
    assert query["digest"].startswith("sha256:")
    assert query["query_id"].startswith("q")
    assert records[1]["rowcount"] == 3


def test_capture_records_errors(tmp_path):
    path = capture_workload(
        tmp_path,
        ["create table t (id int primary key)", "select nope from t"],
    )
    _header, records = load_capture(str(path))
    assert records[-1]["kind"] == "error"
    assert "nope" in records[-1]["error"]


def test_load_capture_tolerates_torn_tail(tmp_path):
    path = capture_workload(tmp_path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "query", "sql": "select tru')   # torn append
    header, records = load_capture(str(path))
    assert header is not None
    assert len(records) == 6


# -- digests ----------------------------------------------------------------


class FakeResult:
    def __init__(self, column_names, rows):
        self.column_names = column_names
        self.rows = rows


def test_digest_is_order_insensitive():
    a = FakeResult(["x", "y"], [(1, "a"), (2, "b")])
    b = FakeResult(["x", "y"], [(2, "b"), (1, "a")])
    assert result_digest(a) == result_digest(b)


def test_digest_distinguishes_content_and_types():
    base = result_digest(FakeResult(["x"], [(1,)]))
    assert result_digest(FakeResult(["x"], [(2,)])) != base
    assert result_digest(FakeResult(["x"], [(1.0,)])) != base
    assert result_digest(FakeResult(["x"], [("1",)])) != base
    assert result_digest(FakeResult(["x"], [(True,)])) != base
    assert result_digest(FakeResult(["x"], [(None,)])) != base
    assert result_digest(FakeResult(["y"], [(1,)])) != base


def test_digest_matches_engine_result(tmp_path):
    path = capture_workload(tmp_path)
    _header, records = load_capture(str(path))
    db = Database()
    try:
        for record in records:
            outcome = db.execute(record["sql"])
            if record["kind"] == "query":
                assert result_digest(outcome) == record["digest"], record["sql"]
    finally:
        db.close()


# -- replay -----------------------------------------------------------------


def test_replay_clean(tmp_path):
    path = capture_workload(tmp_path)
    report = replay_workload(str(path))
    assert report.ok
    assert report.statements == 6
    assert report.queries == 3
    assert report.digests_checked == 3
    assert report.mismatches == [] and report.errors == []
    assert "— ok" in report.summary()


def test_replay_detects_digest_mismatch(tmp_path):
    path = capture_workload(tmp_path)
    # corrupt one captured digest: replay must attribute the mismatch
    lines = path.read_text().splitlines()
    doctored = []
    for line in lines:
        record = json.loads(line)
        if record.get("sql") == "select count(*) from t":
            record["digest"] = "sha256:" + "0" * 64
        doctored.append(json.dumps(record))
    path.write_text("\n".join(doctored) + "\n")
    report = replay_workload(str(path))
    assert not report.ok
    assert len(report.mismatches) == 1
    mismatch = report.mismatches[0]
    assert mismatch.sql == "select count(*) from t"
    assert "MISMATCH" in report.render()


def test_replay_skips_digests_when_disabled(tmp_path):
    path = capture_workload(tmp_path)
    report = replay_workload(str(path), check_digests=False)
    assert report.ok
    assert report.digests_checked == 0


def test_replay_error_parity(tmp_path):
    path = capture_workload(
        tmp_path,
        ["create table t (id int primary key)", "select nope from t"],
    )
    report = replay_workload(str(path))
    assert report.ok  # failed at capture, fails at replay: parity holds


def test_replay_flags_captured_error_that_replays_clean(tmp_path):
    path = capture_workload(
        tmp_path,
        ["create table t (id int primary key)", "select nope from t"],
    )
    lines = path.read_text().splitlines()
    doctored = []
    for line in lines:
        record = json.loads(line)
        if record.get("kind") == "error":
            record["sql"] = "select id from t"   # now valid on replay
        doctored.append(json.dumps(record))
    path.write_text("\n".join(doctored) + "\n")
    report = replay_workload(str(path))
    assert not report.ok
    assert len(report.errors) == 1
    assert "replayed clean" in report.errors[0].detail


def test_replay_flags_statement_that_newly_fails(tmp_path):
    path = capture_workload(tmp_path)
    lines = path.read_text().splitlines()
    doctored = []
    for line in lines:
        record = json.loads(line)
        if record.get("sql") == "select sum(v) from t":
            record["sql"] = "select sum(missing) from t"
        doctored.append(json.dumps(record))
    path.write_text("\n".join(doctored) + "\n")
    report = replay_workload(str(path))
    assert not report.ok
    assert len(report.errors) == 1
    assert "replay raised" in report.errors[0].detail


def test_replay_latency_diff_report(tmp_path):
    path = capture_workload(tmp_path)
    report = replay_workload(str(path))
    assert report.diff is not None
    names = {delta.name for delta in report.diff.deltas}
    assert len(names) == 6   # six distinct statement shapes
    assert all(name.startswith("replay::") for name in names)
    rendered = report.render()
    assert "shapes:" in rendered
    assert "select count(*) from t" in rendered


def test_replay_appends_history(tmp_path):
    path = capture_workload(tmp_path)
    history_path = tmp_path / "BENCH_history.json"
    replay_workload(str(path), history_path=str(history_path))
    history = load_history(str(history_path))
    assert len(history) == 1
    assert history[0]["run_at"] != "replayed"   # real timestamp, not the label
    assert any(k.startswith("replay::") for k in history[0]["benchmarks"])


def test_replay_honors_profile_and_batch_size(tmp_path):
    path = capture_workload(tmp_path)
    report = replay_workload(str(path), profile="none", batch_size=1)
    assert report.ok   # digests are plan- and batch-size-independent


def test_sys_queries_captured_as_volatile_and_replay_clean(tmp_path):
    path = capture_workload(
        tmp_path,
        WORKLOAD + ["select query_id, status from sys.query_log"],
    )
    _header, records = load_capture(str(path))
    sys_record = records[-1]
    assert sys_record["kind"] == "query"
    assert sys_record["volatile"] is True
    assert "digest" not in sys_record   # session state: nothing to verify
    report = replay_workload(str(path))
    assert report.ok
    assert report.digests_checked == 3   # the three non-sys queries only


def test_capture_appends_across_sessions(tmp_path):
    capture_dir = tmp_path / "cap"
    db = Database(capture_dir=str(capture_dir))
    db.execute("create table t (id int primary key)")
    db.close()
    db = Database(capture_dir=str(capture_dir))
    db.execute("create table u (id int primary key)")
    db.close()
    header, records = load_capture(str(capture_dir / "workload.jsonl"))
    assert header is not None
    assert len(records) == 2   # one header, both sessions' statements kept


def test_committed_demo_workload_replays_clean():
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "workloads",
        "demo_orders.jsonl",
    )
    report = replay_workload(path)
    assert report.ok, report.render()
    assert report.digests_checked >= 5

"""Sessions, tenancy, and the statement pipeline.

Covers the SessionManager pipeline order (breaker → rate limit →
namespace check → admission → engine), per-tenant isolation, explicit
transactions over sessions, circuit-breaker integration with
``db.health()``, and graceful shutdown semantics.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.database import Database
from repro.errors import (
    BindError,
    CircuitOpenError,
    ExecutionError,
    OverloadError,
    RateLimitedError,
    SqlSyntaxError,
    TenantAccessError,
)
from repro.serving import SessionManager, referenced_tables
from repro.sql import parse_statement


@pytest.fixture()
def db():
    database = Database()
    database.execute("create table shared (id int primary key, v int)")
    database.execute("insert into shared values (1, 10), (2, 20)")
    yield database
    database.close()


@pytest.fixture()
def manager(db):
    mgr = SessionManager(db, max_concurrent=2, max_queue=4)
    yield mgr
    mgr.shutdown()


# -- sessions and statements -------------------------------------------------


def test_session_query_and_execute(manager):
    with manager.session() as session:
        assert session.query("select sum(v) from shared").rows == [(30,)]
        assert session.execute("insert into shared values (3, 30)") == 1
        assert session.queries_run == 2
        assert session.last_query_id is not None


def test_session_query_rejects_dml(manager):
    with manager.session() as session:
        with pytest.raises(ExecutionError, match="SELECT"):
            session.query("insert into shared values (9, 90)")


def test_session_explicit_transaction(manager, db):
    session = manager.session()
    session.begin()
    assert session.txn_open
    session.execute("insert into shared values (5, 50)")
    # invisible outside the transaction until commit
    assert db.query("select count(*) from shared").rows == [(2,)]
    session.commit()
    assert db.query("select count(*) from shared").rows == [(3,)]
    session.close()


def test_session_close_rolls_back_open_transaction(manager, db):
    session = manager.session()
    session.begin()
    session.execute("insert into shared values (5, 50)")
    session.close()
    assert db.query("select count(*) from shared").rows == [(2,)]
    assert session.state == "closed"
    with pytest.raises(ExecutionError, match="closed"):
        session.query("select 1 from shared")


def test_session_double_begin_rejected(manager):
    session = manager.session()
    session.begin()
    with pytest.raises(ExecutionError, match="open transaction"):
        session.begin()
    session.rollback()
    with pytest.raises(ExecutionError, match="no open transaction"):
        session.commit()
    session.close()


# -- tenant namespace scoping ------------------------------------------------


def test_referenced_tables_walks_joins_and_subqueries():
    statement = parse_statement(
        "select a.id from shared a join shared b on a.id = b.id "
        "where a.v > (select max(v) from shared)"
    )
    assert referenced_tables(statement) == {"shared"}
    statement = parse_statement("insert into target values (1)")
    assert referenced_tables(statement) == {"target"}


def test_tenant_owns_what_it_creates(manager):
    acme = manager.session("acme")
    globex = manager.session("globex")
    acme.execute("create table acme_orders (id int primary key, total int)")
    acme.execute("insert into acme_orders values (1, 100)")
    with pytest.raises(TenantAccessError, match="acme"):
        globex.query("select * from acme_orders")
    # the owner still can, and shared tables stay shared
    assert acme.query("select total from acme_orders").rows == [(100,)]
    assert globex.query("select count(*) from shared").rows == [(2,)]
    acme.close()
    globex.close()


def test_drop_releases_ownership(manager):
    acme = manager.session("acme")
    globex = manager.session("globex")
    acme.execute("create table mine (id int primary key)")
    acme.execute("drop table mine")
    globex.execute("create table mine (id int primary key)")  # now theirs
    with pytest.raises(TenantAccessError):
        acme.query("select * from mine")
    acme.close()
    globex.close()


def test_sys_tables_readable_by_every_tenant(manager):
    with manager.session("acme") as session:
        assert session.query("select count(*) from sys.metrics").rows


def test_cross_tenant_rejection_does_not_consume_a_slot(manager, db):
    acme = manager.session("acme")
    globex = manager.session("globex")
    acme.execute("create table secret (id int primary key)")
    before = db.metrics.snapshot().get("serving.admitted", 0)
    with pytest.raises(TenantAccessError):
        globex.query("select * from secret")
    assert db.metrics.snapshot().get("serving.admitted", 0) == before
    acme.close()
    globex.close()


# -- rate limiting -----------------------------------------------------------


def test_per_tenant_rate_limit(db):
    manager = SessionManager(db, rate_per_s=1.0, burst=2)
    session = manager.session("acme")
    session.query("select 1 from shared")
    session.query("select 1 from shared")
    with pytest.raises(RateLimitedError) as excinfo:
        session.query("select 1 from shared")
    assert excinfo.value.retry_after > 0
    # another tenant has its own bucket
    other = manager.session("globex")
    assert other.query("select count(*) from shared").rows == [(2,)]
    stats = manager.stats()
    assert stats["tenants"]["acme"]["rate_limited"] == 1
    assert stats["tenants"]["globex"]["rate_limited"] == 0
    manager.shutdown()


# -- circuit breaker ---------------------------------------------------------


def _trip(session, n):
    db = session._manager.db
    db.faults.arm("executor.operator", times=n)
    for _ in range(n):
        with pytest.raises(Exception):
            session.query("select v from shared")
    db.faults.disarm()


def test_breaker_trips_on_engine_failures_and_recovers(db):
    manager = SessionManager(db, breaker_threshold=3, breaker_cooldown_s=30.0)
    session = manager.session("acme")
    _trip(session, 3)
    with pytest.raises(CircuitOpenError) as excinfo:
        session.query("select v from shared")
    assert excinfo.value.retry_after > 0
    # db.health() surfaces the tripped breaker
    health = db.health()
    assert health["status"] == "degraded"
    assert any("acme=open" in reason for reason in health["reasons"])
    # other tenants are unaffected
    with manager.session("globex") as other:
        assert other.query("select count(*) from shared").rows == [(2,)]
    manager.shutdown()


def test_breaker_half_open_probe_recovers(db):
    manager = SessionManager(db, breaker_threshold=1,
                             breaker_cooldown_s=0.05)
    session = manager.session("acme")
    _trip(session, 1)
    time.sleep(0.1)  # cooldown elapses -> half-open probe allowed
    assert session.query("select count(*) from shared").rows == [(2,)]
    state = manager.tenants.get("acme").breaker.state
    assert state == "closed"
    assert db.health()["status"] == "ok"
    manager.shutdown()


def test_breaker_probe_not_leaked_by_abandoned_statement(db):
    """A half-open probe abandoned before reaching the engine (here: a
    parse error) must return its slot — a leaked probe would lock the
    tenant out forever."""
    manager = SessionManager(db, breaker_threshold=1,
                             breaker_cooldown_s=0.05)
    session = manager.session("acme")
    _trip(session, 1)
    time.sleep(0.1)  # half-open: the next statement takes the probe slot
    with pytest.raises(SqlSyntaxError):
        session.query("selec t fro m")
    # the abandoned probe was cancelled, so the next statement probes
    # and recovers instead of raising CircuitOpenError
    assert session.query("select count(*) from shared").rows == [(2,)]
    assert manager.tenants.get("acme").breaker.state == "closed"
    manager.shutdown()


def test_client_errors_never_trip_breaker(db):
    manager = SessionManager(db, breaker_threshold=2)
    session = manager.session("acme")
    for _ in range(5):
        with pytest.raises(SqlSyntaxError):
            session.query("selec t fro m")
        with pytest.raises(BindError):
            session.query("select * from no_such_table")
    assert manager.tenants.get("acme").breaker.state == "closed"
    session.query("select 1 from shared")
    manager.shutdown()


# -- session thread-safety ---------------------------------------------------


def test_concurrent_begins_race_safely(manager, db):
    """Two racing BEGINs on one session must not both create (and one
    silently leak) a transaction: exactly one wins, the rest get the
    'already has an open transaction' error."""
    session = manager.session()
    errors: list[Exception] = []
    barrier = threading.Barrier(4)

    def racer():
        barrier.wait(5)
        try:
            session.begin()
        except ExecutionError as exc:
            errors.append(exc)

    threads = [threading.Thread(target=racer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(5)
    assert len(errors) == 3, "exactly one BEGIN may win the race"
    assert all("open transaction" in str(e) for e in errors)
    session.rollback()
    session.close()


def test_one_statement_at_a_time_per_session(manager):
    """A second concurrent statement on one session is rejected with a
    clear error instead of racing the first one's transaction state."""
    session = manager.session()
    held, release = threading.Event(), threading.Event()

    def holder():  # stands in for a statement still executing
        with session._slock:
            held.set()
            release.wait(5)

    thread = threading.Thread(target=holder)
    thread.start()
    assert held.wait(5)
    with pytest.raises(ExecutionError, match="statement in flight"):
        session.query("select 1 from shared")
    release.set()
    thread.join(5)
    assert session.query("select count(*) from shared").rows == [(2,)]
    session.close()


# -- shutdown ----------------------------------------------------------------


def test_shutdown_closes_sessions_and_refuses_new_work(db):
    manager = SessionManager(db)
    session = manager.session("acme")
    session.begin()
    session.execute("insert into shared values (7, 70)")
    assert manager.shutdown() is True
    # the abandoned transaction was rolled back
    assert db.query("select count(*) from shared").rows == [(2,)]
    assert session.state == "closed"
    with pytest.raises(OverloadError):
        manager.session("acme")
    assert manager.shutdown() is True  # idempotent


def test_close_skips_rollback_while_statement_runs(db):
    """When the drain times out, a session whose statement is still
    executing must NOT have its transaction rolled back out from under
    it — the transaction is left for WAL recovery instead."""
    manager = SessionManager(db)
    session = manager.session()
    session.begin()
    session.execute("insert into shared values (8, 80)")
    held, release = threading.Event(), threading.Event()

    def runner():  # stands in for the still-running statement
        with session._slock:
            held.set()
            release.wait(5)

    thread = threading.Thread(target=runner)
    thread.start()
    assert held.wait(5)
    # lock_timeout=0 is the failed-drain shutdown path
    manager._close_session(session, lock_timeout=0.0)
    assert session.state == "closed"
    assert session._txn is not None, \
        "transaction must not be rolled back under a running statement"
    release.set()
    thread.join(5)
    db.rollback(session._txn)  # test cleanup: release the MVCC horizon
    session._txn = None
    manager.shutdown()


def test_shutdown_flushes_durable_wal(tmp_path):
    db = Database(wal_dir=str(tmp_path), fsync="never")
    db.execute("create table t (id int primary key)")
    manager = SessionManager(db)
    with manager.session() as session:
        session.execute("insert into t values (1)")
    assert manager.shutdown() is True
    db.close()
    recovered = Database.recover(str(tmp_path))
    assert recovered.query("select count(*) from t").rows == [(1,)]
    recovered.close()


def test_database_close_drains_serving(db):
    manager = SessionManager(db)
    manager.session("acme")
    db.close()
    assert manager.closed
    assert db.serving is manager


def test_health_reports_draining(db):
    manager = SessionManager(db)
    manager.shutdown()
    health = db.health()
    assert any("draining" in reason for reason in health["reasons"])

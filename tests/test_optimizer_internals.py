"""Unit tests for optimizer internals: augmenter views, emptiness proofs,
chunks, and the bench reporting helper."""

import pytest

from repro import Database
from repro.algebra.ops import Filter, Join, Project, Scan, UnionAll
from repro.bench.reporting import format_matrix
from repro.engine.chunk import Chunk
from repro.optimizer.augmentation import augmenter_view, is_provably_empty


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (k int primary key, a int, b varchar(5))")
    database.execute("create table u (k int primary key, x int)")
    return database


def subplan(db, sql):
    """The FROM-side subtree of `select ... from (sql) s` — i.e. the bound
    derived-table plan."""
    return db.bind(sql)


class TestAugmenterView:
    def test_bare_scan(self, db):
        plan = db.bind("select * from t")  # identity project collapses? bound plan
        # bound plan is Project over Scan; peel manually
        view = augmenter_view(plan)
        assert view is not None
        assert view.scan.schema.name == "t"
        for col in plan.output:
            assert view.base_column(col.cid) == col.name

    def test_project_rename_tracks_base_columns(self, db):
        plan = db.bind("select k as kk, a from t")
        view = augmenter_view(plan)
        assert view.base_column(plan.output[0].cid) == "k"
        assert view.base_column(plan.output[1].cid) == "a"

    def test_computed_column_is_not_passthrough(self, db):
        plan = db.bind("select k, a + 1 as a1 from t")
        view = augmenter_view(plan)
        assert view.base_column(plan.output[0].cid) == "k"
        assert view.base_column(plan.output[1].cid) is None

    def test_filters_collected(self, db):
        plan = db.bind("select k from t where a > 3 and b = 'x'")
        view = augmenter_view(plan)
        assert view is not None and len(view.filters) == 2

    def test_nested_projects_resolve(self, db):
        plan = db.bind("select kk from (select k as kk, a from t) q")
        view = augmenter_view(plan)
        assert view.base_column(plan.output[0].cid) == "k"

    def test_join_blocks(self, db):
        plan = db.bind("select t.k from t join u on t.k = u.k")
        assert augmenter_view(plan) is None

    def test_aggregate_blocks(self, db):
        plan = db.bind("select a, count(*) as n from t group by a")
        assert augmenter_view(plan) is None


class TestEmptinessProof:
    def prove(self, db, sql):
        return is_provably_empty(db.bind(sql))

    def test_constant_false_filter(self, db):
        assert self.prove(db, "select k from t where false")
        assert self.prove(db, "select k from t where null")

    def test_nonconstant_filter_not_proven(self, db):
        assert not self.prove(db, "select k from t where a > 99999")

    def test_limit_zero(self, db):
        assert self.prove(db, "select k from t limit 0")

    def test_union_of_empties(self, db):
        assert self.prove(
            db, "select k from t where false union all select k from u where false"
        )

    def test_union_with_one_live_child(self, db):
        assert not self.prove(
            db, "select k from t where false union all select k from u"
        )

    def test_inner_join_with_empty_side(self, db):
        assert self.prove(
            db,
            "select t.k from t join (select k from u where false) e on t.k = e.k",
        )

    def test_left_outer_with_empty_right_not_empty(self, db):
        assert not self.prove(
            db,
            "select t.k from t left join (select k from u where false) e on t.k = e.k",
        )

    def test_grouped_aggregate_over_empty(self, db):
        assert self.prove(
            db, "select a, count(*) from (select * from t where false) q group by a"
        )

    def test_global_aggregate_never_empty(self, db):
        assert not self.prove(
            db, "select count(*) from (select * from t where false) q"
        )


class TestChunk:
    def test_take_and_slice(self):
        chunk = Chunk({1: [10, 20, 30], 2: ["a", "b", "c"]}, 3)
        taken = chunk.take([2, 0])
        assert taken.columns[1] == [30, 10] and taken.row_count == 2
        sliced = chunk.slice(1, 5)
        assert sliced.columns[2] == ["b", "c"] and sliced.row_count == 2

    def test_slice_none_stop(self):
        chunk = Chunk({1: [1, 2, 3]}, 3)
        assert chunk.slice(1, None).row_count == 2

    def test_rows_zero_columns(self):
        chunk = Chunk({}, 4)
        assert chunk.rows([]) == [(), (), (), ()]

    def test_empty_factory(self):
        chunk = Chunk.empty([5, 6])
        assert chunk.row_count == 0 and set(chunk.columns) == {5, 6}

    def test_has_column(self):
        chunk = Chunk({7: []}, 0)
        assert chunk.has_column(7) and not chunk.has_column(8)


class TestReporting:
    def test_matrix_match(self):
        text = format_matrix(
            "T", ["q1", "q2"], ["a", "b"], ["Y-", "--"], ["Y-", "--"]
        )
        assert "reproduced cell-for-cell" in text
        assert "MISMATCH" not in text

    def test_matrix_mismatch_flagged(self):
        text = format_matrix("T", ["q1"], ["a", "b"], ["Y-"], ["YY"])
        assert "DEVIATION" in text and "MISMATCH" in text

    def test_write_report_roundtrip(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        path = reporting.write_report("unit", "hello world")
        assert path.read_text() == "hello world"

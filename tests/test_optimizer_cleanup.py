"""Cleanup-pass tests: folding, collapsing, distinct elimination, and the
join-condition normalization feeding the union rules."""

import pytest

from repro import Database
from repro.algebra.expr import Const
from repro.algebra.ops import Distinct, Filter, Join, Project, Scan


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (k int primary key, a int not null, b varchar(5))")
    database.execute("create table u (k int, a int)")
    database.bulk_load("t", [(i, i * 3, f"b{i}") for i in range(12)])
    database.bulk_load("u", [(i % 4, i) for i in range(12)])
    return database


def nodes(db, sql, kind):
    return [n for n in db.plan_for(sql).walk() if isinstance(n, kind)]


class TestConstantFolding:
    def test_true_filter_removed(self, db):
        assert not nodes(db, "select k from t where 1 = 1", Filter)

    def test_arith_folding(self, db):
        filters = nodes(db, "select k from t where a > 2 * 3", Filter)
        assert "6" in str(filters[0].predicate)

    def test_and_true_simplified(self, db):
        filters = nodes(db, "select k from t where a > 1 and 1 = 1", Filter)
        assert "AND" not in str(filters[0].predicate)

    def test_or_true_collapses_filter(self, db):
        assert not nodes(db, "select k from t where a > 1 or true", Filter)

    def test_false_and_anything_is_false(self, db):
        rows = db.query("select k from t where false and a > 0").rows
        assert rows == []

    def test_division_by_zero_left_for_runtime(self, db):
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            db.query("select k from t where a > 1 / 0")

    def test_case_folding_inside_projection(self, db):
        rows = db.query("select k, 1 + 2 as c from t limit 1").rows
        assert rows[0][1] == 3


class TestStructuralCollapse:
    def test_nested_projects_collapse(self, db):
        sql = "select x2 from (select k * 2 as x2 from (select k from t) a) b"
        projects = nodes(db, sql, Project)
        assert len(projects) == 1

    def test_identity_project_removed(self, db):
        plan = db.plan_for("select * from t")
        assert isinstance(plan, Scan)

    def test_stacked_filters_merged(self, db):
        sql = "select k from (select k, a from t where a > 1) q where k > 2"
        filters = nodes(db, sql, Filter)
        assert len(filters) == 1

    def test_distinct_on_key_eliminated(self, db):
        assert not nodes(db, "select distinct k, a from t", Distinct)

    def test_distinct_on_non_key_kept(self, db):
        assert nodes(db, "select distinct a from u", Distinct)

    def test_distinct_elim_gated(self, db):
        db.set_profile("system_x")
        try:
            assert nodes(db, "select distinct k, a from t", Distinct)
        finally:
            db.set_profile("hana")

    def test_distinct_elimination_correct(self, db):
        a = db.query("select distinct k, a from t").rows
        b = db.query("select distinct k, a from t", optimize=False).rows
        assert sorted(a) == sorted(b)


class TestJoinNormalization:
    def test_right_only_conjunct_becomes_filter(self, db):
        sql = "select t.k, u.a from t left join u on t.k = u.k and u.a > 5"
        joins = nodes(db, sql, Join)
        assert joins and "u.a" not in str(joins[0].condition)
        assert any(isinstance(n, Filter) for n in joins[0].right.walk())

    def test_normalization_preserves_left_outer_semantics(self, db):
        sql = "select t.k, u.a from t left join u on t.k = u.k and u.a > 5"
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(map(repr, a)) == sorted(map(repr, b))

    def test_left_only_conjunct_stays_in_left_outer(self, db):
        # for LEFT OUTER, a left-side conjunct decides match vs NULL-extend:
        # it must NOT become a filter
        sql = "select t.k, u.a from t left join u on t.k = u.k and t.a > 6"
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(map(repr, a)) == sorted(map(repr, b))
        # rows with t.a <= 6 survive with NULL augmenter
        assert any(r[1] is None for r in a)

    def test_inner_join_both_sides_move(self, db):
        sql = "select t.k from t join u on t.k = u.k and t.a > 3 and u.a > 5"
        joins = nodes(db, sql, Join)
        condition = str(joins[0].condition)
        assert "t.a" not in condition and "u.a" not in condition

    def test_inner_normalization_correct(self, db):
        sql = "select t.k from t join u on t.k = u.k and t.a > 3 and u.a > 5"
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(a) == sorted(b)


class TestFilterPushdown:
    def test_filter_reaches_scan_through_project(self, db):
        sql = "select kk from (select k as kk, a from t) q where kk > 5"
        plan = db.plan_for(sql)
        # the filter should now sit directly on the scan
        filters = [n for n in plan.walk() if isinstance(n, Filter)]
        assert filters and isinstance(filters[0].child, Scan)

    def test_filter_into_left_join_anchor(self, db):
        sql = (
            "select t.k from t left join u on t.k = u.k where t.a > 9"
        )
        joins = nodes(db, sql, Join)
        if joins:  # the u-join may be UAJ-removed entirely; either is fine
            assert any(isinstance(n, Filter) for n in joins[0].left.walk())

    def test_filter_into_union_children(self, db):
        sql = (
            "select * from (select k from t union all select k from t) q where k > 8"
        )
        from repro.algebra.ops import UnionAll
        unions = nodes(db, sql, UnionAll)
        assert unions
        for child in unions[0].inputs:
            assert any(isinstance(n, Filter) for n in child.walk())
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(a) == sorted(b)

    def test_filter_not_pushed_through_limit(self, db):
        sql = "select * from (select k, a from t limit 5) q where a > 0"
        plan = db.plan_for(sql)
        from repro.algebra.ops import Limit
        # the filter must remain above the limit
        node = plan
        seen_filter_before_limit = False
        for n in plan.walk():
            if isinstance(n, Filter):
                seen_filter_before_limit = True
            if isinstance(n, Limit):
                break
        assert seen_filter_before_limit
        assert len(db.query(sql).rows) == len(db.query(sql, optimize=False).rows)

    def test_filter_through_aggregate_on_group_key(self, db):
        sql = (
            "select * from (select a, count(*) as n from u group by a) q where a = 1"
        )
        plan = db.plan_for(sql)
        from repro.algebra.ops import Aggregate
        aggs = [n for n in plan.walk() if isinstance(n, Aggregate)]
        assert any(isinstance(n, Filter) for n in aggs[0].child.walk())
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(a) == sorted(b)

    def test_having_on_aggregate_not_pushed(self, db):
        sql = "select a, count(*) as n from u group by a having count(*) > 2"
        a = db.query(sql).rows
        b = db.query(sql, optimize=False).rows
        assert sorted(a) == sorted(b)

"""Binder tests: name resolution, aggregation, views, macros, unions."""

import pytest

from repro import Database
from repro.algebra import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from repro.errors import BindError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table orders (o_orderkey int primary key, o_custkey int not null, "
        "o_totalprice decimal(15,2), o_status varchar(1))"
    )
    database.execute(
        "create table customer (c_custkey int primary key, c_name varchar(25), "
        "c_nationkey int)"
    )
    return database


def ops_of(plan, kind):
    return [n for n in plan.walk() if isinstance(n, kind)]


class TestNameResolution:
    def test_unqualified_column(self, db):
        plan = db.bind("select o_orderkey from orders")
        assert plan.output[0].name == "o_orderkey"

    def test_qualified_column(self, db):
        plan = db.bind("select o.o_orderkey from orders o")
        assert plan.output[0].name == "o_orderkey"

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            db.bind("select nothere from orders")

    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            db.bind("select x from ghost")

    def test_unknown_alias(self, db):
        with pytest.raises(BindError):
            db.bind("select z.o_orderkey from orders o")

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select 1 as x from orders o join customer o on 1 = 1")

    def test_ambiguity_across_joined_tables(self, db):
        db.execute("create table orders2 (o_orderkey int primary key, extra int)")
        with pytest.raises(BindError):
            db.bind(
                "select o_orderkey from orders join orders2 "
                "on orders.o_orderkey = orders2.o_orderkey"
            )

    def test_star_expansion_order(self, db):
        plan = db.bind("select * from orders")
        assert [c.name for c in plan.output] == [
            "o_orderkey", "o_custkey", "o_totalprice", "o_status",
        ]

    def test_qualified_star(self, db):
        plan = db.bind(
            "select c.* from orders o join customer c on o.o_custkey = c.c_custkey"
        )
        assert [c.name for c in plan.output] == ["c_custkey", "c_name", "c_nationkey"]

    def test_output_alias(self, db):
        plan = db.bind("select o_orderkey as k from orders")
        assert plan.output[0].name == "k"

    def test_generated_name_for_expression(self, db):
        plan = db.bind("select o_totalprice * 2 from orders")
        assert plan.output[0].name == "c0"

    def test_cids_stable_through_passthrough(self, db):
        plan = db.bind("select o_orderkey from orders")
        scan = ops_of(plan, Scan)[0]
        assert plan.output[0].cid == scan.column_cid("o_orderkey")


class TestJoins:
    def test_join_types(self, db):
        inner = db.bind("select 1 as x from orders o join customer c on o.o_custkey = c.c_custkey")
        assert ops_of(inner, Join)[0].join_type is JoinType.INNER
        left = db.bind(
            "select 1 as x from orders o left join customer c on o.o_custkey = c.c_custkey"
        )
        assert ops_of(left, Join)[0].join_type is JoinType.LEFT_OUTER

    def test_case_join_flag(self, db):
        plan = db.bind(
            "select 1 as x from orders o case join customer c on o.o_custkey = c.c_custkey"
        )
        join = ops_of(plan, Join)[0]
        assert join.case_join and join.join_type is JoinType.LEFT_OUTER

    def test_declared_cardinality_attached(self, db):
        plan = db.bind(
            "select 1 as x from orders o left outer many to one join customer c "
            "on o.o_custkey = c.c_custkey"
        )
        assert str(ops_of(plan, Join)[0].declared) == "MANY TO ONE"

    def test_cross_join_has_no_condition(self, db):
        plan = db.bind("select 1 as x from orders cross join customer")
        assert ops_of(plan, Join)[0].condition is None

    def test_left_outer_nullability(self, db):
        plan = db.bind(
            "select c.c_name from orders o left join customer c on o.o_custkey = c.c_custkey"
        )
        assert plan.output[0].nullable

    def test_non_boolean_condition_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select 1 as x from orders o join customer c on o.o_custkey + 1")


class TestAggregation:
    def test_group_by_plain_column(self, db):
        plan = db.bind("select o_custkey, count(*) from orders group by o_custkey")
        agg = ops_of(plan, Aggregate)[0]
        assert len(agg.group_cids) == 1 and len(agg.aggs) == 1

    def test_group_by_expression_gets_preprojected(self, db):
        plan = db.bind(
            "select o_totalprice * 2, sum(o_totalprice) from orders group by o_totalprice * 2"
        )
        agg = ops_of(plan, Aggregate)[0]
        assert isinstance(agg.child, Project)

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select o_status, count(*) from orders group by o_custkey")

    def test_expression_over_group_key_allowed(self, db):
        plan = db.bind("select o_custkey + 1, count(*) from orders group by o_custkey")
        assert ops_of(plan, Aggregate)

    def test_having_binds_aggregates(self, db):
        plan = db.bind(
            "select o_custkey from orders group by o_custkey having sum(o_totalprice) > 10"
        )
        having = [n for n in plan.walk() if isinstance(n, Filter)]
        assert having

    def test_having_without_group_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select o_custkey from orders having o_custkey > 1")

    def test_duplicate_aggregates_deduped(self, db):
        plan = db.bind(
            "select sum(o_totalprice), sum(o_totalprice) + 1 from orders"
        )
        agg = ops_of(plan, Aggregate)[0]
        assert len(agg.aggs) == 1

    def test_count_star_and_count_distinct(self, db):
        plan = db.bind("select count(*), count(distinct o_custkey) from orders")
        agg = ops_of(plan, Aggregate)[0]
        funcs = [(c.func, c.distinct) for _, c in agg.aggs]
        assert ("COUNT_STAR", False) in funcs and ("COUNT", True) in funcs

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select o_custkey from orders where sum(o_totalprice) > 1")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select sum(count(*)) from orders group by o_custkey")

    def test_allow_precision_loss_sets_flag(self, db):
        plan = db.bind(
            "select allow_precision_loss(sum(round(o_totalprice, 0))) from orders"
        )
        agg = ops_of(plan, Aggregate)[0]
        assert agg.aggs[0][1].allow_precision_loss

    def test_allow_precision_loss_outside_agg_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("select allow_precision_loss(o_totalprice) from orders")


class TestOrderLimitDistinct:
    def test_order_by_output_alias(self, db):
        plan = db.bind("select o_totalprice as p from orders order by p desc")
        assert ops_of(plan, Sort)

    def test_order_by_hidden_column(self, db):
        plan = db.bind("select o_orderkey from orders order by o_totalprice")
        assert ops_of(plan, Sort)
        assert [c.name for c in plan.output] == ["o_orderkey"]

    def test_order_by_expression(self, db):
        plan = db.bind("select o_orderkey from orders order by o_totalprice * -1")
        assert ops_of(plan, Sort)

    def test_order_by_projected_qualified_column(self, db):
        plan = db.bind("select o.o_orderkey from orders o order by o.o_orderkey")
        sort = ops_of(plan, Sort)[0]
        assert sort.keys[0].cid == plan.output[0].cid

    def test_limit_offset(self, db):
        plan = db.bind("select o_orderkey from orders limit 7 offset 2")
        limit = ops_of(plan, Limit)[0]
        assert (limit.limit, limit.offset) == (7, 2)

    def test_distinct(self, db):
        plan = db.bind("select distinct o_status from orders")
        assert ops_of(plan, Distinct)


class TestViewsAndMacros:
    def test_view_inlined(self, db):
        db.execute("create view big_orders as select * from orders where o_totalprice > 100")
        plan = db.bind("select o_orderkey from big_orders")
        assert ops_of(plan, Scan)[0].schema.name == "orders"

    def test_view_column_rename(self, db):
        db.execute("create view vo (k, c) as select o_orderkey, o_custkey from orders")
        plan = db.bind("select k from vo")
        assert plan.output[0].name == "k"

    def test_view_rename_arity_mismatch(self, db):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            db.execute("create view bad (a, b, c) as select o_orderkey from orders")

    def test_nested_views(self, db):
        db.execute("create view v1 as select * from orders")
        db.execute("create view v2 as select * from v1 where o_totalprice > 0")
        plan = db.bind("select o_orderkey from v2")
        assert ops_of(plan, Scan)[0].schema.name == "orders"

    def test_macro_expansion(self, db):
        db.execute(
            "create view vo as select * from orders "
            "with expression macros (sum(o_totalprice) as total)"
        )
        plan = db.bind("select o_custkey, expression_macro(total) from vo group by o_custkey")
        agg = ops_of(plan, Aggregate)[0]
        assert agg.aggs[0][1].func == "SUM"

    def test_unknown_macro(self, db):
        db.execute("create view vo as select * from orders")
        with pytest.raises(BindError):
            db.bind("select expression_macro(ghost) from vo group by o_custkey")

    def test_macro_in_where_is_scalar_error(self, db):
        db.execute(
            "create view vo as select * from orders "
            "with expression macros (sum(o_totalprice) as total)"
        )
        with pytest.raises(BindError):
            db.bind("select o_custkey from vo where expression_macro(total) > 1 group by o_custkey")


class TestUnionAll:
    def test_union_flattened(self, db):
        plan = db.bind(
            "select o_orderkey from orders union all select o_orderkey from orders "
            "union all select o_orderkey from orders"
        )
        union = ops_of(plan, UnionAll)[0]
        assert len(union.inputs) == 3

    def test_union_arity_mismatch(self, db):
        with pytest.raises(BindError):
            db.bind("select o_orderkey from orders union all select o_orderkey, o_custkey from orders")

    def test_union_names_from_left(self, db):
        plan = db.bind("select o_orderkey as k from orders union all select o_custkey from orders")
        assert plan.output[0].name == "k"

    def test_union_order_by_output_name(self, db):
        plan = db.bind(
            "select o_orderkey as k from orders union all select o_custkey from orders "
            "order by k limit 2"
        )
        assert ops_of(plan, Sort) and ops_of(plan, Limit)

    def test_union_order_by_unknown_name(self, db):
        with pytest.raises(BindError):
            db.bind(
                "select o_orderkey from orders union all select o_custkey from orders "
                "order by ghost"
            )

    def test_union_type_unification(self, db):
        plan = db.bind("select o_totalprice from orders union all select o_custkey from orders")
        from repro.datatypes import TypeKind
        assert plan.output[0].data_type.kind is TypeKind.DECIMAL


class TestMisc:
    def test_select_without_from(self, db):
        assert db.query("select 1 as x").rows == [(1,)]
        assert db.query("select 2 * 3 as x, null as y").rows == [(6, None)]

    def test_recursive_view_rejected(self, db):
        # simulate a would-be recursive definition by registering manually
        from repro.catalog.schema import ViewSchema
        from repro.sql import parse_statement
        query = parse_statement("select * from loopy")
        db.catalog.create_view(ViewSchema("loopy", query))
        with pytest.raises(BindError):
            db.bind("select * from loopy")

    def test_where_requires_boolean(self, db):
        with pytest.raises(BindError):
            db.bind("select o_orderkey from orders where o_custkey + 1")

    def test_between_desugars_to_comparisons(self, db):
        plan = db.bind("select o_orderkey from orders where o_totalprice between 1 and 2")
        predicate = ops_of(plan, Filter)[0].predicate
        assert predicate.op == "AND"

    def test_date_arithmetic_rejected(self, db):
        db.execute("create table d (dt date)")
        with pytest.raises(BindError):
            db.bind("select dt + 1 from d")

"""Aggregation-pushdown tests (paper §7.1): precision-loss rewrites."""

import decimal

import pytest

from repro import Database
from repro.algebra.ops import Aggregate


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table sales (sid int primary key, price decimal(15,2), "
        "grp int not null)"
    )
    import random
    rng = random.Random(9)
    database.bulk_load(
        "sales",
        [(i, decimal.Decimal(rng.randint(100, 9999999)) / 100, i % 5) for i in range(300)],
    )
    return database


def agg_arg_has_round(db, sql):
    plan = db.plan_for(sql)
    for node in plan.walk():
        if isinstance(node, Aggregate):
            for _, call in node.aggs:
                if call.arg is not None and "ROUND" in str(call.arg):
                    return True
    return False


class TestPrecisionLossRewrite:
    STRICT = "select sum(round(price * 1.11, 2)) from sales"
    OPT_IN = "select allow_precision_loss(sum(round(price * 1.11, 2))) from sales"

    def test_without_opt_in_round_stays_inside(self, db):
        assert agg_arg_has_round(db, self.STRICT)

    def test_with_opt_in_round_moves_out(self, db):
        assert not agg_arg_has_round(db, self.OPT_IN)

    def test_results_close_but_not_necessarily_equal(self, db):
        strict = db.query(self.STRICT).scalar()
        optimized = db.query(self.OPT_IN).scalar()
        # the paper's point: tiny trailing-digit discrepancies are accepted
        assert abs(strict - optimized) < decimal.Decimal("0.5") * 300

    def test_opt_in_unoptimized_equals_strict(self, db):
        strict = db.query(self.STRICT).scalar()
        assert db.query(self.OPT_IN, optimize=False).scalar() == strict

    def test_rewrite_matches_manual_form(self, db):
        # the paper's equivalent query: round(sum(price)*1.11, 2)
        manual = db.query("select round(sum(price) * 1.11, 2) from sales").scalar()
        optimized = db.query(self.OPT_IN).scalar()
        assert optimized == manual

    def test_division_peels_too(self, db):
        optimized = db.query(
            "select allow_precision_loss(sum(round(price / 4, 2))) from sales"
        ).scalar()
        manual = db.query("select round(sum(price) / 4, 2) from sales").scalar()
        assert optimized == manual

    def test_grouped_rewrite_keeps_keys(self, db):
        sql = (
            "select grp, allow_precision_loss(sum(round(price * 1.11, 2))) "
            "from sales group by grp"
        )
        rows = db.query(sql).rows
        assert len(rows) == 5
        unopt = db.query(sql, optimize=False).rows
        for (g1, v1), (g2, v2) in zip(sorted(rows), sorted(unopt)):
            assert g1 == g2 and abs(v1 - v2) < decimal.Decimal("2")

    def test_gated_by_profile(self, db):
        db.set_profile("postgres")
        try:
            assert agg_arg_has_round(db, self.OPT_IN)
        finally:
            db.set_profile("hana")

    def test_non_constant_round_digits_not_peeled(self, db):
        sql = "select allow_precision_loss(sum(round(price, grp))) from sales group by grp"
        # digits argument is a column: rewrite must not fire
        assert agg_arg_has_round(db, sql)

    def test_plain_sum_untouched(self, db):
        sql = "select allow_precision_loss(sum(price)) from sales"
        strict = db.query("select sum(price) from sales").scalar()
        assert db.query(sql).scalar() == strict

    def test_count_not_rewritten(self, db):
        sql = "select allow_precision_loss(count(*)) from sales"
        assert db.query(sql).scalar() == 300

"""Expression evaluation tests: SQL NULL semantics, rounding, functions."""

import datetime
import decimal

import pytest

from repro import Database
from repro.engine.eval import sql_round


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute("create table onerow (x int)")
    database.execute("insert into onerow values (1)")
    return database


def scalar(db, expr):
    return db.query(f"select {expr} as v from onerow").scalar()


class TestArithmetic:
    def test_basic_ops(self, db):
        assert scalar(db, "1 + 2 * 3") == 7
        assert scalar(db, "(10 - 4) / 2") == 3.0
        assert scalar(db, "7 % 3") == 1

    def test_decimal_exactness(self, db):
        assert scalar(db, "0.1 + 0.2") == decimal.Decimal("0.3")

    def test_decimal_division_exact(self, db):
        assert scalar(db, "1.0 / 3") == decimal.Decimal(1) / decimal.Decimal(3)

    def test_division_by_zero_raises(self, db):
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            db.query("select x / 0 from onerow", optimize=False)

    def test_unary_minus(self, db):
        assert scalar(db, "-(1 + 2)") == -3

    def test_null_propagates(self, db):
        assert scalar(db, "null + 1") is None
        assert scalar(db, "1 * null") is None


class TestComparisonsAndLogic:
    def test_comparisons(self, db):
        assert scalar(db, "1 < 2") is True
        assert scalar(db, "2 <= 1") is False
        assert scalar(db, "'a' <> 'b'") is True

    def test_mixed_numeric_comparison(self, db):
        assert scalar(db, "1 = 1.0") is True

    def test_null_comparison_is_null(self, db):
        assert scalar(db, "null = 1") is None
        assert scalar(db, "null <> null") is None

    def test_three_valued_and(self, db):
        assert scalar(db, "false and null") is False
        assert scalar(db, "true and null") is None
        assert scalar(db, "true and true") is True

    def test_three_valued_or(self, db):
        assert scalar(db, "true or null") is True
        assert scalar(db, "false or null") is None
        assert scalar(db, "false or false") is False

    def test_not_null(self, db):
        assert scalar(db, "not null") is None

    def test_is_null(self, db):
        assert scalar(db, "null is null") is True
        assert scalar(db, "1 is not null") is True

    def test_in_list(self, db):
        assert scalar(db, "2 in (1, 2, 3)") is True
        assert scalar(db, "9 in (1, 2, 3)") is False

    def test_in_list_null_semantics(self, db):
        assert scalar(db, "9 in (1, null)") is None
        assert scalar(db, "1 in (1, null)") is True
        assert scalar(db, "null in (1, 2)") is None

    def test_between(self, db):
        assert scalar(db, "2 between 1 and 3") is True
        assert scalar(db, "0 not between 1 and 3") is True

    def test_like(self, db):
        assert scalar(db, "'hello' like 'he%'") is True
        assert scalar(db, "'hello' like 'h_llo'") is True
        assert scalar(db, "'hello' like 'x%'") is False
        assert scalar(db, "'a.c' like 'a.c'") is True  # dot is literal

    def test_case_when(self, db):
        assert scalar(db, "case when 1 > 2 then 'a' when 2 > 1 then 'b' else 'c' end") == "b"
        assert scalar(db, "case when false then 1 end") is None


class TestRounding:
    """§7.1: rounding is commercial (half-up) and exact over DECIMAL."""

    def test_paper_example_tax(self):
        assert sql_round(decimal.Decimal("13.1945"), 2) == decimal.Decimal("13.19")

    def test_paper_example_non_distributive(self):
        one = sql_round(decimal.Decimal("1.3"), 0) + sql_round(decimal.Decimal("2.4"), 0)
        other = sql_round(decimal.Decimal("1.3") + decimal.Decimal("2.4"), 0)
        assert (one, other) == (decimal.Decimal("3"), decimal.Decimal("4"))

    def test_half_up_not_bankers(self):
        assert sql_round(decimal.Decimal("2.5"), 0) == 3
        assert sql_round(decimal.Decimal("3.5"), 0) == 4

    def test_round_null(self):
        assert sql_round(None, 2) is None

    def test_round_int_and_float(self):
        assert sql_round(7, 2) == 7
        assert sql_round(1.005, 2) == pytest.approx(1.01)

    def test_negative_digits(self):
        assert sql_round(decimal.Decimal("1234"), -2) == decimal.Decimal("1200")

    def test_sql_round_via_query(self, db):
        assert scalar(db, "round(1.005, 2)") == decimal.Decimal("1.01")
        assert scalar(db, "round(2.5)") == decimal.Decimal("3")


class TestScalarFunctions:
    def test_abs_floor_ceil(self, db):
        assert scalar(db, "abs(-4)") == 4
        assert scalar(db, "floor(1.7)") == 1
        assert scalar(db, "ceil(1.2)") == 2

    def test_coalesce_and_ifnull(self, db):
        assert scalar(db, "coalesce(null, null, 3)") == 3
        assert scalar(db, "ifnull(null, 'd')") == "d"
        assert scalar(db, "coalesce(null, null)") is None

    def test_nullif(self, db):
        assert scalar(db, "nullif(1, 1)") is None
        assert scalar(db, "nullif(1, 2)") == 1

    def test_string_functions(self, db):
        assert scalar(db, "upper('ab')") == "AB"
        assert scalar(db, "lower('AB')") == "ab"
        assert scalar(db, "length('abc')") == 3
        assert scalar(db, "substr('hello', 2, 3)") == "ell"
        assert scalar(db, "substr('hello', 3)") == "llo"
        assert scalar(db, "concat('a', 'b', 'c')") == "abc"

    def test_concat_operator_null(self, db):
        assert scalar(db, "'a' || null") is None
        assert scalar(db, "'a' || 'b'") == "ab"

    def test_date_parts(self, db):
        assert scalar(db, "year(cast('2025-06-15' as date))") == 2025
        assert scalar(db, "month(cast('2025-06-15' as date))") == 6
        assert scalar(db, "dayofmonth(cast('2025-06-15' as date))") == 15

    def test_cast(self, db):
        assert scalar(db, "cast('12' as int)") == 12
        assert scalar(db, "cast(1 as varchar(5))") == "1"
        assert scalar(db, "cast('2025-01-02' as date)") == datetime.date(2025, 1, 2)
        assert scalar(db, "cast(null as int)") is None

    def test_unknown_function_rejected(self, db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            db.query("select frobnicate(x) from onerow")

    def test_wrong_arity_rejected(self, db):
        from repro.errors import BindError
        with pytest.raises(BindError):
            db.query("select round(x, 1, 2, 3) from onerow")

"""Vectorized execution: typed vectors, kernel edge cases, and TopN.

The contract under test is *invisibility*: the vectorized kernels and the
bounded-heap TopN operator must produce results identical to the scalar
row-at-a-time path — including NULL handling (dictionary code ``-1``),
mixed-type object-fallback columns, zero-column ``COUNT(*)`` chunks,
``batch_size=1`` streams, and joins whose sides do not share a fragment
dictionary.  The fuzz campaign holds the same line statistically; these
tests pin the named edge cases deterministically.
"""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.storage.column import ColumnFragments, MainFragment
from repro.vectors import (
    DictVector,
    FloatVector,
    IntVector,
    column_nbytes,
    concat_columns,
    maybe_typed,
    pad_take_column,
)


@pytest.fixture()
def db():
    database = Database(wal_enabled=False)
    database.execute(
        "create table items (id int primary key, grp varchar, qty int, price double)"
    )
    rows = []
    for i in range(500):
        qty = None if i % 11 == 0 else i % 50
        rows.append((i, f"g{i % 7}", qty, i * 0.25))
    database.bulk_load("items", rows)
    yield database
    database.close()


def scalar_twin(db_builder):
    """Build the same database twice: vectorized (default) and scalar."""
    return db_builder(vectorized=True), db_builder(vectorized=False)


def both_rows(db, sql):
    """(vectorized rows, scalar rows) for one SQL string on one database —
    the scalar arm re-runs on a vectorized=False twin sharing the data."""
    return db.query(sql).rows


# -- vector basics ----------------------------------------------------------


class TestVectors:
    def test_dict_vector_sequence_protocol(self):
        v = DictVector(["a", "b"], __import__("array").array("q", [1, -1, 0]))
        assert len(v) == 3
        assert v[0] == "b" and v[1] is None and v[2] == "a"
        assert list(v) == ["b", None, "a"]
        assert v == ["b", None, "a"]

    def test_typed_vector_nulls_and_negative_index(self):
        v = IntVector([5, None, 7])
        assert v[1] is None
        assert v[-2] is None  # negative indices must respect the null set
        assert v[-1] == 7
        assert v.tolist() == [5, None, 7]

    def test_take_and_slice_remap_nulls(self):
        v = FloatVector([1.0, None, 3.0, None])
        taken = v.take([3, 0, 1])
        assert taken.tolist() == [None, 1.0, None]
        sliced = v.slice(1, 3)
        assert sliced.tolist() == [None, 3.0]

    def test_concat_same_dictionary_stays_coded(self):
        arr = __import__("array").array
        d = ["x", "y"]
        a = DictVector(d, arr("q", [0, 1]))
        b = DictVector(d, arr("q", [-1, 0]))
        merged = concat_columns([a, b])
        assert isinstance(merged, DictVector)
        assert merged.dictionary is d
        assert merged.tolist() == ["x", "y", None, "x"]

    def test_concat_dictionary_mismatch_decodes(self):
        arr = __import__("array").array
        a = DictVector(["x"], arr("q", [0]))
        b = DictVector(["y"], arr("q", [0]))
        merged = concat_columns([a, b])
        assert merged == ["x", "y"]
        assert isinstance(merged, list)

    def test_maybe_typed_rejects_bool_decimal_mixed(self):
        import decimal

        assert isinstance(maybe_typed([1, 2, None]), IntVector)
        assert isinstance(maybe_typed([1.5, None]), FloatVector)
        assert maybe_typed([True, False]) == [True, False]
        assert maybe_typed([decimal.Decimal(1)]) == [decimal.Decimal(1)]
        assert maybe_typed([1, 2.0]) == [1, 2.0]
        assert maybe_typed([2**70]) == [2**70]  # out of 64-bit range

    def test_pad_take_keeps_dict_coded_null_extension(self):
        arr = __import__("array").array
        v = DictVector(["x", "y"], arr("q", [0, 1]))
        padded = pad_take_column(v, [1, -1, 0])
        assert isinstance(padded, DictVector)
        assert padded.tolist() == ["y", None, "x"]


# -- storage vector reads ---------------------------------------------------


class TestFragmentVectors:
    def test_main_range_is_dict_vector_sharing_dictionary(self):
        frags = ColumnFragments([10, 20, 30, 20])
        v = frags.get_range_vector(1, 3)
        assert isinstance(v, DictVector)
        assert v.dictionary is frags.main.dictionary
        assert v.sorted_dict is True
        assert v.tolist() == [20, 30]

    def test_range_touching_delta_decodes(self):
        frags = ColumnFragments([1, 2])
        frags.append(3)
        assert frags.get_range_vector(1, 3) == [2, 3]
        assert frags.get_range_vector(2, 3) == [3]

    def test_get_many_vector_gathers_codes(self):
        frags = ColumnFragments([10, None, 30])
        v = frags.get_many_vector([2, 1, 0])
        assert isinstance(v, DictVector)
        assert v.tolist() == [30, None, 10]
        frags.append(40)
        assert frags.get_many_vector([0, 3]) == [10, 40]

    def test_mixed_type_dictionary_not_sorted(self):
        frag = MainFragment([1, "a", 2])
        assert frag.homogeneous is False
        frags = ColumnFragments([1, "a", 2])
        v = frags.get_range_vector(0, 3)
        assert v.sorted_dict is False


# -- kernel edge cases ------------------------------------------------------


class TestKernelNulls:
    """NULL (code -1) must flow through every kernel identically to the
    scalar path: comparisons never match, IS [NOT] NULL classifies, and
    arithmetic propagates NULL."""

    SQLS = [
        "select id from items where qty = 5",
        "select id from items where qty <> 5",
        "select id from items where qty < 3",
        "select id from items where qty <= 3",
        "select id from items where qty > 47",
        "select id from items where qty >= 47",
        "select id from items where qty is null",
        "select id from items where qty is not null",
        "select id, qty + 10 from items where id < 30",
        "select id, qty * 2 from items where id < 30",
        "select id from items where grp = 'g3' and qty > 10",
        "select grp, count(qty), sum(qty) from items group by grp",
        "select qty, count(*) from items group by qty",
        "select id, qty from items order by qty limit 7",
        "select id, qty from items order by qty desc limit 7",
    ]

    @pytest.mark.parametrize("sql", SQLS)
    def test_null_codes_match_scalar_path(self, db, sql):
        scalar = Database(wal_enabled=False, vectorized=False)
        scalar.execute(
            "create table items (id int primary key, grp varchar, qty int, price double)"
        )
        rows = []
        for i in range(500):
            qty = None if i % 11 == 0 else i % 50
            rows.append((i, f"g{i % 7}", qty, i * 0.25))
        scalar.bulk_load("items", rows)
        try:
            assert sorted(db.query(sql).rows, key=repr) == sorted(
                scalar.query(sql).rows, key=repr
            )
        finally:
            scalar.close()

    def test_comparison_with_null_constant_is_empty(self, db):
        # col <op> NULL is never TRUE; the kernel short-circuits to empty.
        assert db.query("select id from items where qty = null").rows == []
        assert db.query("select id from items where qty < null").rows == []


class TestZeroColumnChunks:
    def test_count_star_without_columns(self, db):
        assert db.query("select count(*) from items").scalar() == 500

    def test_count_star_with_filter(self, db):
        vec = db.query("select count(*) from items where qty is null").scalar()
        assert vec == len([i for i in range(500) if i % 11 == 0])

    def test_count_star_batch_size_one(self):
        tiny = Database(wal_enabled=False, batch_size=1)
        tiny.execute("create table t (a int)")
        tiny.bulk_load("t", [(i,) for i in range(17)])
        try:
            assert tiny.query("select count(*) from t").scalar() == 17
        finally:
            tiny.close()


class TestMixedTypeColumns:
    """A mixed-type column keeps the object-list semantics: range kernels
    must not engage against a type-tag-sorted dictionary."""

    def build(self, vectorized=True):
        d = Database(wal_enabled=False, vectorized=vectorized)
        d.execute("create table m (id int, v varchar)")
        d.bulk_load("m", [(i, f"s{i % 3}") for i in range(40)])
        return d

    def test_mixed_fragment_falls_back(self):
        vec, scalar = scalar_twin(self.build)
        try:
            # Force a mixed dictionary directly at the storage layer.
            for d in (vec, scalar):
                frags = d.catalog.table("m").column("v")
                frags.main = MainFragment([1 if i % 2 else f"s{i}" for i in range(40)])
            sql = "select id from m where v = 's2'"
            assert vec.query(sql).rows == scalar.query(sql).rows
        finally:
            vec.close()
            scalar.close()

    def test_string_ranges_match_scalar(self):
        vec, scalar = scalar_twin(self.build)
        try:
            for sql in (
                "select id from m where v > 's0'",
                "select id from m where v <= 's1'",
            ):
                assert vec.query(sql).rows == scalar.query(sql).rows
        finally:
            vec.close()
            scalar.close()


class TestDictionaryMismatchJoin:
    def test_join_across_tables_decodes_and_matches(self, db):
        # items.grp joined against a second table: different fragments,
        # different dictionaries — keys decode through the per-dictionary
        # memo and the join must still be exact.
        db.execute("create table grps (name varchar, boost int)")
        db.bulk_load("grps", [(f"g{i}", i * 100) for i in range(7)])
        rows = db.query(
            "select i.id, g.boost from items i join grps g on i.grp = g.name "
            "where i.id < 20"
        ).rows
        assert len(rows) == 20
        assert all(boost == (i % 7) * 100 for i, boost in rows)

    def test_join_key_reads_are_counted_as_dict_compares(self, db):
        before = db.metrics.counter("exec.dict_compares").value
        db.query("select i.id from items i join items j on i.grp = j.grp and i.id = j.id")
        assert db.metrics.counter("exec.dict_compares").value > before


# -- TopN -------------------------------------------------------------------


class TestTopN:
    def test_explain_shows_topn_instead_of_sort_limit(self, db):
        plan = db.explain("select id from items order by price desc limit 5")
        assert "TopN[k=5" in plan
        assert "Sort" not in plan
        assert "Limit" not in plan

    def test_pure_offset_keeps_sort(self, db):
        plan = db.explain("select id from items order by id offset 5")
        assert "Sort" in plan

    @pytest.mark.parametrize(
        "order_limit",
        [
            "order by qty limit 10",
            "order by qty desc limit 10",
            "order by qty, id desc limit 10",
            "order by qty desc limit 10 offset 5",
            "order by grp, qty desc limit 3 offset 2",
            "order by price limit 1",
            "order by id limit 500",   # k >= rows: no evictions
            "order by id limit 0",
        ],
    )
    def test_topn_equals_sort_plus_limit(self, db, order_limit):
        fused = db.query(f"select id, grp, qty from items {order_limit}").rows
        # The unfused reference: sort the unlimited result with the same
        # stable semantics and slice it.
        unlimited = db.query(
            f"select id, grp, qty from items {order_limit.split(' limit')[0]}"
        ).rows
        parts = order_limit.split("limit ")[1].split(" offset ")
        limit = int(parts[0])
        offset = int(parts[1]) if len(parts) > 1 else 0
        assert fused == unlimited[offset:offset + limit]

    def test_topn_batch_size_one(self):
        tiny = Database(wal_enabled=False, batch_size=1)
        tiny.execute("create table t (a int, b varchar)")
        tiny.bulk_load("t", [(i, f"v{i % 3}") for i in range(25)])
        try:
            rows = tiny.query("select a from t order by a desc limit 4").rows
            assert rows == [(24,), (23,), (22,), (21,)]
        finally:
            tiny.close()

    def test_topn_nulls_sort_last(self, db):
        asc = db.query("select qty from items order by qty limit 500").rows
        tail = [q for (q,) in asc[-46:]]
        assert all(q is None for q in tail)  # 46 NULL qty rows sort last
        desc_first = db.query("select qty from items order by qty desc limit 1").rows
        assert desc_first == [(49,)]  # NULLS LAST: a value wins under desc

    def test_eviction_metric_and_operator_stats(self, db):
        before = db.metrics.counter("exec.topn_heap_evictions").value
        db.query("select id from items order by price desc limit 5")
        assert db.metrics.counter("exec.topn_heap_evictions").value > before
        rows = db.query(
            "select operator, heap_evictions from sys.operator_stats "
            "where heap_evictions > 0"
        ).rows
        assert any(op.startswith("TopN") for op, _ in rows)

    def test_analyze_annotation_includes_evictions(self, db):
        text = db.explain(
            "select id from items order by price desc limit 5", analyze=True
        )
        assert "TopN[k=5" in text
        assert "evictions=" in text

    @pytest.mark.parametrize(
        "order_limit",
        [
            "order by s limit 6",              # sorted-dict codes, ascending
            "order by f desc limit 6",         # bisected code cut, descending
            "order by v limit 9 offset 3",     # NULL codes never admitted
            "order by v desc limit 9",
        ],
    )
    def test_code_filter_matches_scalar_across_batches(self, order_limit):
        """Multi-chunk streams drive the full-heap code-space admission
        filter; the scalar twin never sees a DictVector at all."""
        def build(**kwargs):
            d = Database(wal_enabled=False, batch_size=128, **kwargs)
            d.execute(
                "create table t (id int primary key, v int, f double, s varchar)"
            )
            d.bulk_load(
                "t",
                [
                    (
                        i,
                        None if i % 13 == 0 else (i * 37) % 101,
                        ((i * 2654435761) % 9973) / 7.0,
                        f"s{(i * 53) % 97:03d}",
                    )
                    for i in range(1500)
                ],
            )
            return d
        vec, scalar = scalar_twin(build)
        try:
            sql = f"select id, v, f, s from t {order_limit}"
            assert vec.query(sql).rows == scalar.query(sql).rows
        finally:
            vec.close()
            scalar.close()

    def test_heap_full_of_nulls_is_beaten_by_later_values(self):
        """The admission bound must open completely while the worst kept
        entry is NULL — the first chunks here are all-NULL keys."""
        d = Database(wal_enabled=False, batch_size=64)
        d.execute("create table t (id int primary key, v int)")
        d.bulk_load(
            "t",
            [(i, None if i < 300 else i) for i in range(1000)],
        )
        try:
            asc = d.query("select v from t order by v limit 5").rows
            assert asc == [(300,), (301,), (302,), (303,), (304,)]
            desc = d.query("select v from t order by v desc limit 5").rows
            assert desc == [(999,), (998,), (997,), (996,), (995,)]
        finally:
            d.close()

    def test_topk_aggregate_runs_off_typed_buffers(self):
        """ORDER BY an aggregate: the group materialization emits typed
        vectors, so TopN ranks straight off the ``array`` buffer."""
        def build(**kwargs):
            d = Database(wal_enabled=False, batch_size=64, **kwargs)
            d.execute("create table t (id int primary key, v int, g varchar)")
            d.bulk_load(
                "t", [(i, (i * 37) % 101, f"g{i % 200}") for i in range(2000)]
            )
            return d
        vec, scalar = scalar_twin(build)
        try:
            sql = (
                "select g, sum(v) as s from t group by g "
                "order by s desc limit 7"
            )
            assert vec.query(sql).rows == scalar.query(sql).rows
        finally:
            vec.close()
            scalar.close()


# -- memory accounting ------------------------------------------------------


class TestEstimatedBytes:
    def test_typed_vector_bytes_are_exact(self):
        import sys as _sys

        v = IntVector(list(range(100)))
        assert column_nbytes(v) == _sys.getsizeof(v.data) + 16

    def test_dict_vector_charges_codes_not_values(self):
        arr = __import__("array").array
        big_strings = [f"payload-{i:04d}" * 20 for i in range(4)]
        v = DictVector(big_strings, arr("q", [0, 1, 2, 3] * 256))
        # The shared dictionary is charged as a pointer: far below the
        # decoded footprint.
        assert column_nbytes(v) < 1024 * 16

    def test_chunk_estimated_bytes_uses_exact_vectors(self, db):
        from repro.engine.chunk import Chunk

        frags = db.catalog.table("items").column("grp")
        col = frags.get_range_vector(0, 500)
        chunk = Chunk({0: col}, 500)
        assert chunk.estimated_bytes() == 64 + column_nbytes(col)


# -- kernel metrics and the scalar arm --------------------------------------


class TestKernelAccounting:
    def test_filter_kernel_counted(self, db):
        before = db.metrics.counter("exec.kernel_calls").value
        db.query("select id from items where grp = 'g1'")
        assert db.metrics.counter("exec.kernel_calls").value > before

    def test_operator_stats_expose_kernel_columns(self, db):
        db.query("select id from items where grp = 'g1'")
        rows = db.query(
            "select operator, kernel_calls, kernel_ms, rows_selected, dict_compares "
            "from sys.operator_stats where kernel_calls > 0"
        ).rows
        assert rows, "expected at least one kernel-attributed operator"
        op, calls, kernel_ms, selected, _ = rows[-1]
        assert op.startswith("Filter")
        assert calls >= 1 and kernel_ms >= 0.0 and selected > 0

    def test_doctor_ranks_kernel_time(self, db):
        from repro.observability.doctor import doctor_report

        db.query("select id from items where grp = 'g1'")
        report = doctor_report(db)
        assert "kernel-heaviest operators" in report
        assert "Filter" in report

    def test_scalar_database_never_counts_kernels(self):
        scalar = Database(wal_enabled=False, vectorized=False)
        scalar.execute("create table t (a int, b varchar)")
        scalar.bulk_load("t", [(i, f"v{i % 3}") for i in range(100)])
        try:
            scalar.query("select a from t where a < 50")
            scalar.query("select a from t order by a limit 3")
            assert scalar.metrics.counter("exec.kernel_calls").value == 0
            assert scalar.metrics.counter("exec.dict_compares").value == 0
            # TopN still runs (it is a plan choice, not a kernel) —
            # evictions are counted regardless of the arm.
            assert scalar.query("select a from t order by a desc limit 1").rows == [(99,)]
        finally:
            scalar.close()

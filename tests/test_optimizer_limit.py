"""Limit-pushdown tests (paper §4.4, Fig. 6, Table 2)."""

import pytest

from repro import Database
from repro.algebra.ops import Join, Limit, Sort, UnionAll
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table big (bk int primary key, d int not null, v decimal(10,2))"
    )
    database.execute("create table small (k int primary key, name varchar(10))")
    database.execute("create table multi (k int, name varchar(10))")
    database.bulk_load("big", [(i, i % 20, f"{i}.00") for i in range(500)])
    database.bulk_load("small", [(i, f"s{i}") for i in range(20)])
    database.bulk_load("multi", [(i % 10, f"m{i}") for i in range(30)])
    return database


def limit_below_join(plan):
    for node in plan.walk():
        if isinstance(node, Join):
            return any(isinstance(x, Limit) for x in node.left.walk())
    return False


class TestAcrossAugmentationJoin:
    def test_pushed_below_aj(self, db):
        sql = "select * from big b left join small s on b.d = s.k limit 10"
        assert limit_below_join(db.plan_for(sql))
        assert len(db.query(sql).rows) == 10
        assert len(db.query(sql, optimize=False).rows) == 10

    def test_offset_travels_with_limit(self, db):
        sql = "select * from big b left join small s on b.d = s.k limit 10 offset 5"
        plan = db.plan_for(sql)
        limits = [n for n in plan.walk() if isinstance(n, Limit)]
        assert any(l.offset == 5 and l.limit == 10 for l in limits)
        assert len(db.query(sql).rows) == 10

    def test_not_pushed_across_expanding_join(self, db):
        sql = "select * from big b left join multi m on b.d = m.k limit 10"
        assert not limit_below_join(db.plan_for(sql))
        assert len(db.query(sql).rows) == 10
        assert_equivalent(db, "select count(*) from (select * from big b left join multi m on b.d = m.k limit 10) q")

    def test_not_pushed_across_inner_join(self, db):
        # inner join may filter: limiting the anchor first could starve it
        sql = "select * from big b join small s on b.d = s.k limit 10"
        assert not limit_below_join(db.plan_for(sql))

    def test_pushed_across_declared_exact_one_inner(self, db):
        sql = (
            "select * from big b inner many to exact one join small s "
            "on b.d = s.k limit 10"
        )
        assert limit_below_join(db.plan_for(sql))
        assert len(db.query(sql).rows) == 10

    def test_gated_by_profile(self, db):
        sql = "select * from big b left join small s on b.d = s.k limit 10"
        for profile in ("postgres", "system_x", "system_y", "system_z"):
            db.set_profile(profile)
            assert not limit_below_join(db.plan_for(sql)), profile
        db.set_profile("hana")

    def test_pushed_through_chain_of_ajs(self, db):
        db.execute("create table small2 (k int primary key, t varchar(5))")
        db.bulk_load("small2", [(i, f"t{i}") for i in range(20)])
        sql = (
            "select * from big b left join small s on b.d = s.k "
            "left join small2 s2 on b.d = s2.k limit 7"
        )
        plan = db.plan_for(sql)
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        innermost_left = joins[-1].left if joins else plan
        assert any(isinstance(x, Limit) for x in innermost_left.walk())
        assert len(db.query(sql).rows) == 7


class TestTopN:
    def test_sort_limit_pushed_when_keys_from_anchor(self, db):
        sql = (
            "select * from big b left join small s on b.d = s.k "
            "order by b.bk desc limit 5"
        )
        plan = db.plan_for(sql)
        assert limit_below_join(plan)
        rows = db.query(sql).rows
        assert [r[0] for r in rows] == [499, 498, 497, 496, 495]

    def test_sort_on_augmenter_column_not_pushed(self, db):
        sql = (
            "select * from big b left join small s on b.d = s.k "
            "order by s.name limit 5"
        )
        assert not limit_below_join(db.plan_for(sql))
        assert len(db.query(sql).rows) == 5

    def test_sort_swaps_through_view_projection(self, db):
        # Querying through a view interposes a Project between the ORDER BY
        # and the augmentation join (Limit(Sort(Project(Join)))); the sort
        # keys are pass-through columns, so top-N pushdown must still fire.
        # Found by the fuzz generator's limit_aj bias.
        db.execute(
            "create view bigview as select b.bk, b.d, s.name from big b "
            "left outer many to one join small s on b.d = s.k"
        )
        sql = "select bk, name from bigview order by bk desc limit 5"
        assert limit_below_join(db.plan_for(sql))
        rows = db.query(sql).rows
        assert [r[0] for r in rows] == [499, 498, 497, 496, 495]
        assert rows == db.query(sql, optimize=False).rows

    def test_sort_on_computed_projection_not_swapped(self, db):
        # A sort key that is a computed expression must keep the Sort above
        # the Project — swapping would sort on different values.
        db.execute("create view calcview as select bk * -1 as nk, d from big")
        sql = "select nk from calcview order by nk limit 3"
        assert not limit_below_join(db.plan_for(sql))
        rows = db.query(sql).rows
        assert [r[0] for r in rows] == [-499, -498, -497]
        assert rows == db.query(sql, optimize=False).rows


class TestThroughUnion:
    def test_limit_cloned_into_union_children(self, db):
        sql = (
            "select bk from big where d = 1 union all select bk from big where d = 2 "
            "limit 4"
        )
        plan = db.plan_for(sql)
        union = [n for n in plan.walk() if isinstance(n, UnionAll)][0]
        assert all(
            any(isinstance(x, Limit) for x in child.walk()) for child in union.inputs
        )
        assert len(db.query(sql).rows) == 4

    def test_outer_limit_retained(self, db):
        sql = "select bk from big union all select k from small limit 6"
        plan = db.plan_for(sql)
        assert isinstance(plan, Limit)
        assert len(db.query(sql).rows) == 6


class TestMergeAndBasics:
    def test_stacked_limits_merged(self, db):
        sql = "select * from (select bk from big limit 10 offset 2) q limit 5 offset 1"
        plan = db.plan_for(sql)
        limits = [n for n in plan.walk() if isinstance(n, Limit)]
        assert len(limits) == 1
        assert (limits[0].limit, limits[0].offset) == (5, 3)
        rows = db.query(sql).rows
        assert len(rows) == 5

    def test_stacked_limit_tighter_inner(self, db):
        sql = "select * from (select bk from big limit 3) q limit 99"
        assert len(db.query(sql).rows) == 3

    def test_limit_through_project(self, db):
        sql = "select bk * 2 as b2 from big limit 4"
        assert len(db.query(sql).rows) == 4

"""Unit tests for the SQL tokenizer."""

import decimal

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_ends_with_eof(self):
        tokens = tokenize("select")
        assert tokens[-1].type is TokenType.EOF

    def test_keywords_upper_cased(self):
        assert texts("SeLeCt FrOm") == ["SELECT", "FROM"]

    def test_identifier_preserves_case(self):
        assert texts("MyTable") == ["MyTable"]
        assert kinds("MyTable") == [TokenType.IDENTIFIER]

    def test_key_is_not_reserved(self):
        # the paper's example tables use `key` as a column name
        assert kinds("key") == [TokenType.IDENTIFIER]

    def test_punctuation_and_operators(self):
        assert texts("(a, b) = c;") == ["(", "a", ",", "b", ")", "=", "c", ";"]

    def test_two_char_operators(self):
        assert texts("a <= b >= c <> d != e || f") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e", "||", "f",
        ]

    def test_position_tracking(self):
        tokens = tokenize("select\n  x")
        x = tokens[1]
        assert (x.line, x.column) == (2, 3)


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.value == 42 and isinstance(token.value, int)

    def test_decimal_literal_is_exact(self):
        token = tokenize("1.105")[0]
        assert token.value == decimal.Decimal("1.105")

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == decimal.Decimal("0.5")

    def test_scientific_is_float(self):
        token = tokenize("1.5e3")[0]
        assert token.value == 1500.0 and isinstance(token.value, float)

    def test_negative_exponent(self):
        assert tokenize("2E-2")[0].value == 0.02

    def test_number_then_dot_dot_is_not_consumed(self):
        tokens = tokenize("1.5.x")
        assert tokens[0].value == decimal.Decimal("1.5")
        assert tokens[1].text == "."


class TestStrings:
    def test_simple_string(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENTIFIER and token.text == "Weird Name"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestComments:
    def test_line_comment(self):
        assert texts("select -- comment\n x") == ["SELECT", "x"]

    def test_block_comment(self):
        assert texts("select /* multi\nline */ x") == ["SELECT", "x"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select /* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("a\n  @")
        assert info.value.line == 2


class TestHanaExtensionTokens:
    def test_cardinality_words_are_keywords(self):
        assert kinds("many to exact one") == [TokenType.KEYWORD] * 4

    def test_expression_macros_words(self):
        assert texts("with expression macros") == ["WITH", "EXPRESSION", "MACROS"]

    def test_is_keyword_helper(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT") and token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

"""Database-facade tests: DDL lifecycle, error paths, HTAP integration."""

import pytest

from repro import Database
from repro.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    OptimizerError,
    SqlSyntaxError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (k int primary key, v varchar(10))")
    database.execute("insert into t values (1, 'one'), (2, 'two')")
    return database


class TestDdlLifecycle:
    def test_drop_table(self, db):
        db.execute("drop table t")
        with pytest.raises(BindError):
            db.query("select * from t")

    def test_drop_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("drop table ghost")
        db.execute("drop table if exists ghost")  # no raise

    def test_create_or_replace_view(self, db):
        db.execute("create view v as select k from t")
        db.execute("create or replace view v as select v from t")
        assert db.query("select * from v").column_names == ["v"]

    def test_duplicate_view_rejected(self, db):
        db.execute("create view v as select k from t")
        with pytest.raises(CatalogError):
            db.execute("create view v as select k from t")

    def test_drop_view(self, db):
        db.execute("create view v as select k from t")
        db.execute("drop view v")
        with pytest.raises(BindError):
            db.query("select * from v")

    def test_create_table_if_not_exists(self, db):
        db.execute("create table if not exists t (other int)")
        # original schema survives
        assert db.catalog.table_schema("t").has_column("v")

    def test_broken_view_rejected_at_create(self, db):
        with pytest.raises(BindError):
            db.execute("create view broken as select nothere from t")

    def test_multiple_primary_keys_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("create table bad (a int primary key, b int primary key)")

    def test_syntax_error_surfaces(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("selek * from t")

    def test_query_rejects_ddl(self, db):
        with pytest.raises(ExecutionError):
            db.query("create table x (a int)")


class TestProfiles:
    def test_default_profile(self):
        assert Database().profile == "hana"

    def test_constructor_profile(self):
        assert Database(profile="postgres").profile == "postgres"

    def test_invalid_profile_rejected(self, db):
        with pytest.raises(OptimizerError):
            db.set_profile("db2")

    def test_none_profile_executes_bound_plan(self, db):
        db.set_profile("none")
        assert len(db.query("select * from t").rows) == 2


class TestHtapIntegration:
    def test_analytics_during_writes(self, db):
        reader = db.begin()
        baseline = db.query("select count(*) from t", txn=reader).scalar()
        writer = db.begin()
        for i in range(10, 15):
            db.execute(f"insert into t values ({i}, 'w{i}')", txn=writer)
        # the analytical snapshot is unaffected mid-write and post-commit
        assert db.query("select count(*) from t", txn=reader).scalar() == baseline
        db.commit(writer)
        assert db.query("select count(*) from t", txn=reader).scalar() == baseline
        db.commit(reader)
        assert db.query("select count(*) from t").scalar() == baseline + 5

    def test_merge_all(self, db):
        db.merge_all()
        assert db.catalog.table("t").delta_size == 0
        assert db.query("select count(*) from t").scalar() == 2

    def test_bulk_load_visible_everywhere(self, db):
        db.bulk_load("t", [(100, "bulk")])
        assert db.query("select v from t where k = 100").scalar() == "bulk"

    def test_constraint_violation_in_multi_row_insert_rolls_back(self, db):
        with pytest.raises(ConstraintError):
            db.execute("insert into t values (50, 'ok'), (1, 'dup')")
        # the first row must not have leaked out of the aborted transaction
        assert db.query("select count(*) from t where k = 50").scalar() == 0

    def test_wal_records_full_session(self):
        database = Database()  # wal on
        database.execute("create table w (a int)")
        database.execute("insert into w values (1)")
        kinds = [r.kind for r in database.wal.records()]
        assert kinds == ["insert", "commit"]

    def test_wal_disabled(self):
        database = Database(wal_enabled=False)
        assert database.wal is None
        database.execute("create table w (a int)")
        database.execute("insert into w values (1)")  # still works


class TestPlanApis:
    def test_bind_rejects_non_query(self, db):
        with pytest.raises(BindError):
            db.bind("insert into t values (9, 'x')")

    def test_explain_optimize_flag(self, db):
        db.execute("create table dim (k int primary key, d varchar(5))")
        sql = "select t.k from t left join dim on t.k = dim.k"
        assert "Join" in db.explain(sql, optimize=False)
        assert "Join" not in db.explain(sql)

    def test_plan_statistics_api(self, db):
        stats = db.plan_statistics("select * from t", optimize=False)
        assert stats.table_instances == 1

"""Slow-query log: threshold gating, ring-buffer eviction, captured detail."""

import pytest

from repro import Database
from repro.observability import SlowQueryLog
from repro.observability.slowlog import DEFAULT_CAPACITY


@pytest.fixture
def db():
    database = Database()
    database.execute("create table t (a int primary key, b int)")
    database.execute("insert into t values (1,10),(2,20),(3,30)")
    return database


class TestThresholdGating:
    def test_disabled_by_default(self, db):
        db.query("select count(*) from t")
        assert len(db.slow_queries) == 0
        assert db.slow_queries.threshold_s is None

    def test_zero_threshold_captures_everything(self, db):
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select count(*) from t")
        db.query("select a from t")
        assert len(db.slow_queries) == 2

    def test_high_threshold_captures_nothing(self, db):
        db.slow_queries.configure(threshold_s=3600.0)
        db.query("select count(*) from t")
        assert len(db.slow_queries) == 0

    def test_reconfigure_turns_off(self, db):
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select a from t")
        db.slow_queries.configure(threshold_s=None)
        db.query("select b from t")
        assert len(db.slow_queries) == 1


class TestRingBuffer:
    def test_eviction_at_capacity(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for i in range(5):
            log.record(sql=f"q{i}", elapsed_s=float(i))
        assert len(log) == 3
        assert [e.sql for e in log] == ["q2", "q3", "q4"]

    def test_default_capacity(self):
        log = SlowQueryLog()
        assert log.capacity == DEFAULT_CAPACITY

    def test_capacity_shrink_keeps_newest(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=4)
        for i in range(4):
            log.record(sql=f"q{i}", elapsed_s=1.0)
        log.configure(threshold_s=0.0, capacity=2)
        assert [e.sql for e in log] == ["q2", "q3"]

    def test_clear(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.record(sql="q", elapsed_s=1.0)
        log.clear()
        assert len(log) == 0
        assert log.render() == "(slow-query log empty)"


class TestCapturedDetail:
    def test_entry_holds_sql_plan_and_rewrites(self, db):
        db.execute("create table u (a int primary key, c int)")
        db.execute(
            "create view tv as select t.a, t.b from t "
            "left outer many to one join u on t.a = u.a"
        )
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select count(*) from tv")
        (entry,) = db.slow_queries.entries()
        assert entry.sql == "select count(*) from tv"
        assert entry.elapsed_s > 0
        assert "Scan" in entry.plan
        assert "Join" not in entry.plan            # the AJ was removed
        assert entry.rewrite_fires.get("AJ declared", 0) >= 1

    def test_span_tree_attached_only_under_tracing(self, db):
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select a from t")
        assert db.slow_queries.entries()[-1].span_root is None
        db.tracing = True
        db.query("select b from t")
        root = db.slow_queries.entries()[-1].span_root
        assert root is not None and root.name == "query"

    def test_to_dict_and_render(self, db):
        db.tracing = True
        db.slow_queries.configure(threshold_s=0.0)
        db.query("select a from t")
        entry = db.slow_queries.entries()[0]
        data = entry.to_dict()
        assert data["sql"] == "select a from t"
        assert data["elapsed_ms"] > 0
        assert data["spans"]["name"] == "query"
        text = db.slow_queries.render()
        assert "threshold 0ms" in text and "select a from t" in text

    def test_summary_truncates_long_sql(self):
        log = SlowQueryLog(threshold_s=0.0)
        entry = log.record(sql="select " + "x" * 200, elapsed_s=0.5)
        assert len(entry.summary()) < 120
        assert entry.summary().endswith("...")

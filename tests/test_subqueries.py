"""EXISTS / IN subquery tests (semi/anti joins with NOT IN null semantics)."""

import pytest

from repro import Database
from repro.algebra.ops import Join, JoinType
from repro.errors import BindError
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute("create table c (ck int primary key, nation int)")
    database.execute("create table o (ok int primary key, cust int, status varchar(1) not null)")
    database.execute("insert into c values (1, 10), (2, 20), (3, 30), (4, 10)")
    database.execute(
        "insert into o values (100, 1, 'N'), (101, 1, 'P'), (102, 3, 'N'), (103, null, 'N')"
    )
    return database


def join_types(db, sql):
    return [n.join_type for n in db.plan_for(sql, optimize=False).walk()
            if isinstance(n, Join)]


class TestExists:
    def test_exists_all_or_nothing(self, db):
        rows = db.query(
            "select ck from c where exists (select ok from o where status = 'P')"
        ).rows
        assert len(rows) == 4

    def test_exists_empty_subquery(self, db):
        rows = db.query(
            "select ck from c where exists (select ok from o where status = 'Z')"
        ).rows
        assert rows == []

    def test_not_exists(self, db):
        rows = db.query(
            "select ck from c where not exists (select ok from o where status = 'Z')"
        ).rows
        assert len(rows) == 4

    def test_plan_uses_semi_join(self, db):
        types = join_types(
            db, "select ck from c where exists (select ok from o)"
        )
        assert JoinType.SEMI in types

    def test_not_exists_uses_anti_join(self, db):
        types = join_types(
            db, "select ck from c where not exists (select ok from o)"
        )
        assert JoinType.ANTI in types


class TestInSubquery:
    def test_in(self, db):
        rows = db.query("select ck from c where ck in (select cust from o)").rows
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_in_with_filtered_subquery(self, db):
        rows = db.query(
            "select ck from c where ck in (select cust from o where status = 'P')"
        ).rows
        assert [r[0] for r in rows] == [1]

    def test_not_in_with_nulls_filters_everything(self, db):
        # classic SQL trap: the subquery contains a NULL
        rows = db.query("select ck from c where ck not in (select cust from o)").rows
        assert rows == []

    def test_not_in_without_nulls(self, db):
        rows = db.query(
            "select ck from c where ck not in "
            "(select cust from o where cust is not null)"
        ).rows
        assert sorted(r[0] for r in rows) == [2, 4]

    def test_null_probe_filtered_both_ways(self, db):
        db.execute("create table p (v int)")
        db.execute("insert into p values (1), (null)")
        in_rows = db.query("select v from p where v in (select cust from o)").rows
        assert in_rows == [(1,)]
        not_in = db.query(
            "select v from p where v not in (select cust from o where cust = 99)"
        ).rows
        assert not_in == [(1,)]  # NULL probe is UNKNOWN even vs empty-ish set

    def test_combined_with_plain_predicates(self, db):
        rows = db.query(
            "select ck from c where nation = 10 and ck in (select cust from o)"
        ).rows
        assert [r[0] for r in rows] == [1]

    def test_in_subquery_from_view(self, db):
        db.execute("create view po as select cust from o where status = 'P'")
        rows = db.query("select ck from c where ck in (select cust from po)").rows
        assert [r[0] for r in rows] == [1]

    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(BindError):
            db.query("select ck from c where ck in (select ok, cust from o)")

    def test_or_nested_subquery_rejected(self, db):
        with pytest.raises(BindError):
            db.query("select ck from c where ck = 9 or exists (select ok from o)")

    def test_correlated_subquery_rejected(self, db):
        # correlation is unsupported; the inner reference must fail to bind
        with pytest.raises(BindError):
            db.query(
                "select ck from c where exists (select ok from o where o.cust = c.ck)"
            )


class TestOptimizerInteraction:
    def test_semi_join_survives_optimization(self, db):
        sql = "select ck from c where ck in (select cust from o)"
        assert_equivalent(db, sql)

    def test_semi_preserves_keys_for_uaj(self, db):
        # a semi join is a pure filter: the left PK survives it, so the
        # outer augmentation join on that key is still removable
        db.execute("create table dim (k int primary key, d varchar(5))")
        sql = (
            "select x.ck from "
            "(select c.ck from c where ck in (select cust from o)) x "
            "left join dim on x.ck = dim.k"
        )
        plan = db.plan_for(sql)
        types = [n.join_type for n in plan.walk() if isinstance(n, Join)]
        assert JoinType.LEFT_OUTER not in types  # UAJ removed
        assert JoinType.SEMI in types            # the semantic filter stays
        assert_equivalent(db, sql)

    def test_anti_join_equivalence_under_profiles(self, db):
        sql = (
            "select ck from c where ck not in "
            "(select cust from o where cust is not null)"
        )
        for profile in ("hana", "postgres", "system_x", "none"):
            assert_equivalent(db, sql, profile)

    def test_limit_over_semi_join(self, db):
        sql = "select ck from c where ck in (select cust from o) limit 1"
        assert len(db.query(sql).rows) == 1

    def test_aggregation_over_semi_join(self, db):
        n = db.query(
            "select count(*) from c where ck in (select cust from o)"
        ).scalar()
        assert n == 2

"""Plan-feedback observability: est-vs-actual cardinalities, Q-error
metrics, operator memory accounting, and per-shape latency baselines."""

from __future__ import annotations

import warnings

import pytest

from repro.database import Database
from repro.errors import MemoryBudgetWarning
from repro.observability import (
    MISESTIMATE_QERROR,
    ShapeBaselines,
    qerror,
)
from repro.sql.normalize import shape_hash


@pytest.fixture()
def db():
    database = Database()
    database.execute("create table t (id int primary key, v int)")
    database.execute(
        "insert into t values (1, 10), (2, 20), (3, 30), (4, 40), "
        "(5, 50), (6, 60), (7, 70), (8, 80), (9, 90), (10, 100), "
        "(11, 110), (12, 120)"
    )
    yield database
    database.close()


# -- the Q-error metric -----------------------------------------------------


def test_qerror_perfect_estimate_is_one():
    assert qerror(10, 10) == 1.0


def test_qerror_is_symmetric():
    assert qerror(2, 50) == qerror(50, 2) == 25.0


def test_qerror_clamps_both_sides_to_one_row():
    # 0.3 estimated rows against 0 actual rows is a perfect prediction,
    # not an infinite error: both clamp to 1.
    assert qerror(0.3, 0) == 1.0
    assert qerror(0.0, 5) == 5.0
    assert qerror(5, 0) == 5.0


def test_qerror_never_below_one():
    for est, actual in [(1, 1), (0, 0), (7, 3), (0.01, 1000)]:
        assert qerror(est, actual) >= 1.0


# -- feedback rows recorded per query ---------------------------------------


def test_one_feedback_row_per_operator_in_preorder(db):
    result = db.query("select v from t where v > 55 order by v")
    query_id = result.stats.query_id
    rows = [f for f in db.query_log.feedback_rows() if f.query_id == query_id]
    assert [f.op_index for f in rows] == list(
        range(result.stats.operators_after)
    )
    assert all(f.est_rows is not None for f in rows)
    assert all(f.qerror is not None and f.qerror >= 1.0 for f in rows)
    kinds = {f.kind for f in rows}
    assert {"Project", "Sort", "Filter", "BatchScan"} <= kinds


def test_scan_feedback_has_perfect_qerror(db):
    result = db.query("select v from t")
    query_id = result.stats.query_id
    scan = [
        f for f in db.query_log.feedback_rows()
        if f.query_id == query_id and f.kind == "BatchScan"
    ]
    assert len(scan) == 1
    assert scan[0].est_rows == 12.0
    assert scan[0].actual_rows == 12
    assert scan[0].qerror == 1.0


def test_never_executed_probe_side_is_flagged(db):
    # Empty build side: the hash join answers without ever opening the
    # probe scan, which must still get a feedback row.
    db.execute("create table e (id int primary key)")
    result = db.query("select t.id from e join t on e.id = t.id")
    query_id = result.stats.query_id
    rows = [f for f in db.query_log.feedback_rows() if f.query_id == query_id]
    skipped = [f for f in rows if f.never_executed]
    assert len(skipped) == 1
    assert "BatchScan(t)" in skipped[0].operator
    assert skipped[0].actual_rows == 0
    assert skipped[0].peak_bytes == 0


def test_early_terminated_operator_is_flagged():
    db = Database(batch_size=1)
    db.execute("create table t (id int primary key)")
    db.execute("insert into t values (1), (2), (3), (4)")
    result = db.query("select id from t limit 2")
    query_id = result.stats.query_id
    rows = [f for f in db.query_log.feedback_rows() if f.query_id == query_id]
    assert any(f.early_terminated for f in rows if f.kind == "BatchScan")
    db.close()


def test_blocking_operators_report_peak_bytes(db):
    result = db.query("select v from t order by v")
    query_id = result.stats.query_id
    sort = [
        f for f in db.query_log.feedback_rows()
        if f.query_id == query_id and f.kind == "Sort"
    ]
    assert len(sort) == 1
    assert sort[0].peak_bytes > 0
    snapshot = db.metrics.snapshot()
    assert snapshot["exec.operator_peak_bytes"]["count"] >= 1


# -- qerror histogram and misestimate counters ------------------------------


def test_misestimated_filter_bumps_counter_and_histogram(db):
    # Two stacked range predicates: the System-R 1/3 selectivity guess
    # estimates 12/9 = 1.33 rows, but every row qualifies -> qerror 9.
    db.query("select v from t where v > -1 and v < 1000000")
    snapshot = db.metrics.snapshot()
    assert snapshot["optimizer.misestimates.Filter"] >= 1
    histogram = snapshot["optimizer.qerror"]
    assert histogram["count"] >= 1
    assert histogram["max"] >= MISESTIMATE_QERROR


def test_accurate_queries_do_not_count_as_misestimates(db):
    db.query("select v from t")
    snapshot = db.metrics.snapshot()
    assert snapshot.get("optimizer.misestimates.BatchScan", 0) == 0


def test_early_terminated_rows_stay_out_of_qerror_metrics():
    # An early-terminated scan's actual count is a lower bound, not a
    # measurement — it must not pollute the estimation-quality metrics.
    db = Database(batch_size=1)
    db.execute("create table t (id int primary key)")
    for i in range(10):
        db.execute(f"insert into t values ({i})")
    before = db.metrics.snapshot()["optimizer.qerror"]["count"]
    result = db.query("select id from t limit 1")
    query_id = result.stats.query_id
    rows = [f for f in db.query_log.feedback_rows() if f.query_id == query_id]
    measured = [
        f for f in rows if not f.early_terminated and not f.never_executed
    ]
    after = db.metrics.snapshot()["optimizer.qerror"]["count"]
    assert after - before == len(measured)
    db.close()


# -- sys.plan_feedback through the SQL pipeline -----------------------------


def test_sys_plan_feedback_rows_via_sql(db):
    db.query("select v from t where v > 55 order by v")
    result = db.query(
        "select operator, kind, est_rows, actual_rows, qerror "
        "from sys.plan_feedback where kind = 'Sort'"
    )
    assert result.rows
    operator, kind, est, actual, q = result.rows[0]
    assert kind == "Sort"
    assert est is not None and actual >= 0 and q >= 1.0


def test_sys_plan_feedback_joins_query_log(db):
    sql = "select sum(v) from t"
    db.query(sql)
    result = db.query(
        "select f.kind from sys.plan_feedback f "
        "join sys.query_log q on f.query_id = q.query_id "
        f"where q.sql = '{sql}'"
    )
    assert ("HashAggregate",) in result.rows


# -- the soft memory budget -------------------------------------------------


def test_memory_budget_warns_once_and_completes():
    db = Database(memory_budget_bytes=100)
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    with pytest.warns(MemoryBudgetWarning, match="execution continues"):
        result = db.query("select v from t order by v")
    assert len(result.rows) == 3  # degraded, not dead
    assert db.metrics.snapshot()["exec.memory_budget_exceeded"] == 1
    health = db.health()
    assert health["status"] == "degraded"
    assert any("memory budget" in reason for reason in health["reasons"])
    db.close()


def test_memory_budget_not_exceeded_stays_quiet(db):
    with warnings.catch_warnings():
        warnings.simplefilter("error", MemoryBudgetWarning)
        db.query("select v from t order by v")
    assert db.metrics.snapshot()["exec.memory_budget_exceeded"] == 0
    assert db.health()["status"] == "ok"


# -- disabling plan feedback ------------------------------------------------


def test_plan_feedback_disabled_records_nothing():
    db = Database(plan_feedback=False)
    db.execute("create table t (id int primary key, v int)")
    db.execute("insert into t values (1, 10)")
    db.query("select v from t order by v")
    assert db.query_log.feedback_rows() == []
    assert db.query_log.operator_rows() == []
    assert db.metrics.snapshot()["optimizer.qerror"]["count"] == 0
    # EXPLAIN ANALYZE opts back in explicitly, so it still works.
    text = db.explain("select v from t order by v", analyze=True)
    assert "actual rows=" in text
    db.close()


# -- per-shape latency baselines --------------------------------------------


def test_baselines_group_by_shape_and_track_percentiles():
    baselines = ShapeBaselines()
    for elapsed in [0.010, 0.020, 0.030, 0.040]:
        baselines.observe("shape-a", elapsed, sql="select 1")
    (stats,) = baselines.shapes()
    assert stats.count == 4
    assert stats.example_sql == "select 1"
    assert 0.010 <= stats.p50_s() <= 0.040
    assert stats.p50_s() <= stats.p95_s()
    assert not stats.regressed


def test_baselines_flag_regression_after_sustained_slowdown():
    baselines = ShapeBaselines(min_samples=8, factor=3.0)
    for _ in range(20):
        baselines.observe("s", 0.010)
    assert not baselines.regressed_shapes()
    # Feed 100x-slower samples until the rolling-window median crosses
    # 3x the (still-fast) baseline.  The flag is transient: once the EWMA
    # baseline adapts to the new normal it clears again, so catch it at
    # the transition rather than after a fixed number of samples.
    fired = False
    for _ in range(64):
        baselines.observe("s", 1.0)
        if baselines.regressed_shapes():
            fired = True
            break
    assert fired, "a 100x sustained slowdown never flagged as regressed"
    assert [s.shape for s in baselines.regressed_shapes()] == ["s"]


def test_baselines_regression_counter_fires_on_transition():
    from repro.observability import MetricsRegistry

    registry = MetricsRegistry()
    baselines = ShapeBaselines(min_samples=4, metrics=registry)
    for _ in range(10):
        baselines.observe("s", 0.010)
    for _ in range(40):
        baselines.observe("s", 1.0)
    assert registry.snapshot()["baseline.shape_regressions"] == 1


def test_baselines_adapt_to_the_new_normal():
    baselines = ShapeBaselines(min_samples=4)
    for _ in range(10):
        baselines.observe("s", 0.010)
    fired = False
    for _ in range(64):
        baselines.observe("s", 1.0)
        if baselines.regressed_shapes():
            fired = True
    assert fired
    # The EWMA baseline catches up with the sustained new level and the
    # window median stops exceeding 3x: the flag clears on its own.
    for _ in range(200):
        baselines.observe("s", 1.0)
    assert not baselines.regressed_shapes()
    (stats,) = baselines.shapes()
    assert stats.baseline_s == pytest.approx(1.0, rel=0.05)


def test_sync_folds_query_log_incrementally(db):
    sql = "select count(*) from t"
    for _ in range(3):
        db.query(sql)
    db.shape_baselines.sync(db.query_log)
    stats = {s.shape: s for s in db.shape_baselines.shapes()}
    assert stats[shape_hash(sql)].count == 3
    # A second sync with no new queries folds nothing twice.
    db.shape_baselines.sync(db.query_log)
    assert {s.shape: s.count for s in db.shape_baselines.shapes()} == {
        shape: s.count for shape, s in stats.items()
    }


def test_sync_skips_errored_queries(db):
    with pytest.raises(Exception):
        db.query("select no_such_column from t")
    db.shape_baselines.sync(db.query_log)
    assert db.shape_baselines.shapes() == []


def test_sys_query_shapes_live_rows(db):
    sql = "select sum(v) from t where v > 5"
    for _ in range(4):
        db.query(sql)
    result = db.query(
        "select shape, example_sql, count, regressed from sys.query_shapes "
        f"where example_sql = '{sql}'"
    )
    assert len(result.rows) == 1
    shape, example_sql, count, regressed = result.rows[0]
    assert shape == shape_hash(sql)
    assert example_sql == sql
    assert count == 4
    assert regressed is False


def test_literal_variants_share_one_shape(db):
    db.query("select v from t where v > 5")
    db.query("select v from t where v > 99")
    db.shape_baselines.sync(db.query_log)
    shapes = [
        s for s in db.shape_baselines.shapes()
        if s.example_sql and s.example_sql.startswith("select v from t")
    ]
    assert len(shapes) == 1
    assert shapes[0].count == 2

"""Scalar-subquery tests: (select ...) in expression position."""

import decimal

import pytest

from repro import Database
from repro.errors import BindError, ExecutionError
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute("create table s (k int primary key, v decimal(10,2), g int not null)")
    database.execute(
        "insert into s values (1, 10.00, 1), (2, 20.00, 1), (3, 90.00, 2), (4, 40.00, 2)"
    )
    return database


class TestBasics:
    def test_in_where(self, db):
        rows = db.query("select k from s where v > (select avg(v) from s)").rows
        assert [r[0] for r in rows] == [3]

    def test_in_select_list(self, db):
        rows = db.query(
            "select k, v - (select min(v) from s) as delta from s order by k"
        ).rows
        assert rows[0] == (1, decimal.Decimal("0.00"))
        assert rows[2] == (3, decimal.Decimal("80.00"))

    def test_standalone(self, db):
        assert db.query("select (select max(v) from s) as mx").scalar() == decimal.Decimal("90.00")

    def test_empty_subquery_is_null(self, db):
        rows = db.query("select k from s where v = (select v from s where k = 99)").rows
        assert rows == []
        value = db.query("select (select v from s where k = 99) as missing").scalar()
        assert value is None

    def test_multi_row_rejected_at_runtime(self, db):
        with pytest.raises(ExecutionError):
            db.query("select k from s where v > (select v from s)")

    def test_multi_column_rejected_at_bind(self, db):
        with pytest.raises(BindError):
            db.query("select k from s where v > (select v, g from s)")

    def test_nested_scalar_subqueries(self, db):
        rows = db.query(
            "select k from s where v > (select avg(v) from s where g = "
            "(select min(g) from s))"
        ).rows
        assert sorted(r[0] for r in rows) == [2, 3, 4]

    def test_in_having(self, db):
        rows = db.query(
            "select g, sum(v) as total from s group by g "
            "having sum(v) > (select avg(v) from s)"
        ).rows
        assert [r[0] for r in rows] == [2]

    def test_subquery_over_view(self, db):
        db.execute("create view big as select * from s where v > 15")
        rows = db.query("select k from s where v >= (select min(v) from big)").rows
        assert sorted(r[0] for r in rows) == [2, 3, 4]


class TestTransactionalSemantics:
    def test_resolved_under_the_query_snapshot(self, db):
        reader = db.begin()
        baseline = db.query(
            "select k from s where v > (select avg(v) from s)", txn=reader
        ).rows
        writer = db.begin()
        db.execute("insert into s values (5, 1000.00, 3)", txn=writer)
        db.commit(writer)
        # The reader's snapshot predates the insert: both the outer query
        # AND the scalar subquery must ignore the new row.
        again = db.query(
            "select k from s where v > (select avg(v) from s)", txn=reader
        ).rows
        assert again == baseline
        db.commit(reader)
        fresh = db.query("select k from s where v > (select avg(v) from s)").rows
        assert fresh != baseline  # avg moved; only the 1000.00 row exceeds it


class TestOptimizerInteraction:
    def test_equivalence_under_profiles(self, db):
        sql = "select k from s where v > (select avg(v) from s)"
        for profile in ("hana", "postgres", "system_x", "none"):
            assert_equivalent(db, sql, profile)

    def test_with_uaj_elimination(self, db):
        db.execute("create table dim (k int primary key, d varchar(5))")
        sql = (
            "select s.k from s left join dim on s.k = dim.k "
            "where s.v > (select min(v) from s)"
        )
        from repro.algebra.ops import Join, JoinType
        plan = db.plan_for(sql)
        types = [n.join_type for n in plan.walk() if isinstance(n, Join)]
        assert JoinType.LEFT_OUTER not in types
        assert_equivalent(db, sql)

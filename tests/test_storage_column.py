"""Unit tests for columnar fragments (dictionary main + append delta)."""

from repro.storage.column import ColumnFragments, DeltaFragment, MainFragment


class TestMainFragment:
    def test_roundtrip(self):
        main = MainFragment([3, 1, 2, 1, None])
        assert main.values() == [3, 1, 2, 1, None]

    def test_dictionary_is_sorted_and_distinct(self):
        main = MainFragment(["b", "a", "b", "c"])
        assert main.dictionary == ["a", "b", "c"]
        assert main.distinct_count() == 3

    def test_null_encoded_as_negative_code(self):
        main = MainFragment([None, "x"])
        assert main.codes[0] == -1
        assert main.get(0) is None and main.get(1) == "x"

    def test_empty(self):
        main = MainFragment([])
        assert len(main) == 0 and main.values() == []

    def test_compression_accounting(self):
        main = MainFragment(list(range(100)))
        assert main.memory_codes_bytes() == main.codes.itemsize * 100


class TestDeltaFragment:
    def test_append_and_get(self):
        delta = DeltaFragment()
        delta.append("x")
        delta.append(None)
        assert len(delta) == 2
        assert delta.get(0) == "x" and delta.get(1) is None


class TestColumnFragments:
    def test_global_row_addressing(self):
        fragments = ColumnFragments([10, 20])
        fragments.append(30)
        assert [fragments.get(i) for i in range(3)] == [10, 20, 30]
        assert len(fragments) == 3

    def test_values_spans_both_fragments(self):
        fragments = ColumnFragments(["a"])
        fragments.append("b")
        assert fragments.values() == ["a", "b"]
        assert list(fragments.iter_values()) == ["a", "b"]

    def test_merge_moves_delta_to_main(self):
        fragments = ColumnFragments([2, 1])
        fragments.append(3)
        fragments.append(1)
        assert fragments.delta_size == 2
        fragments.merge()
        assert fragments.delta_size == 0
        assert fragments.values() == [2, 1, 3, 1]
        assert fragments.main.dictionary == [1, 2, 3]

    def test_merge_preserves_nulls(self):
        fragments = ColumnFragments([None, 5])
        fragments.append(None)
        fragments.merge()
        assert fragments.values() == [None, 5, None]

    def test_merge_is_idempotent(self):
        fragments = ColumnFragments([1])
        fragments.merge()
        fragments.merge()
        assert fragments.values() == [1]

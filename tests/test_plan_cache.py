"""Plan cache unit and integration tests (+ normalize_sql regressions).

Covers the PlanCache data structure (promotion protocol, two-level
keying, LRU bounds, fingerprint invalidation), the Database wiring
(hit-path results, DDL / profile / stats invalidation, the execute()
SELECT gate, EXPLAIN's ``(cached)`` annotation, observability surfaces),
and the normalize_sql fallback fix this PR ships alongside.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.algebra.expr import Param
from repro.cache.plan_cache import PlanCache
from repro.datatypes import INTEGER
from repro.sql.normalize import extract_shape, normalize_sql, shape_hash
from repro.sql.parser import parse_statement


# ---------------------------------------------------------------------------
# normalize_sql regressions
# ---------------------------------------------------------------------------


class TestNormalizeFallback:
    def test_lexable_sql_still_collapses(self):
        assert normalize_sql("select  *\nfrom t  where id =  7") == \
            normalize_sql("SELECT * FROM t WHERE id=42")

    def test_unterminated_strings_differing_inside_literal_stay_distinct(self):
        # The old fallback collapsed all whitespace, merging statements
        # that differ only inside an unterminated string region.
        a = "select * from t where name = 'a  b"
        b = "select * from t where name = 'a b"
        assert normalize_sql(a) != normalize_sql(b)
        assert shape_hash(a) != shape_hash(b)

    def test_unlexable_sql_is_stripped_not_collapsed(self):
        sql = "  select 'oops  \n"
        assert normalize_sql(sql) == "select 'oops"

    def test_terminated_strings_do_collapse_to_one_shape(self):
        # Inside a *valid* string the literal is erased, so spacing in the
        # value must NOT split shapes.
        a = "select * from t where name = 'a  b'"
        b = "select * from t where name = 'a b'"
        assert normalize_sql(a) == normalize_sql(b)


class TestExtractShape:
    def test_matches_normalize_sql(self):
        sql = "SELECT id, 'x' FROM t WHERE qty > 30 LIMIT 5"
        shape, values, _tokens = extract_shape(sql)
        assert shape == normalize_sql(sql)
        assert values == ["x", 30, 5]

    def test_slot_order_matches_parser_numbering(self):
        sql = "select 1, 'two', 3.5 from t where x = 4"
        _shape, values, tokens = extract_shape(sql)
        statement = parse_statement(sql, tokens=tokens, parameterize=True)
        slots = {}

        def visit(node):
            from repro.sql import ast
            if isinstance(node, ast.Literal) and node.param_slot is not None:
                slots[node.param_slot] = node.value
        _walk_ast(statement, visit)
        assert [slots[i] for i in sorted(slots)] == values

    def test_raises_on_unlexable(self):
        with pytest.raises(Exception):
            extract_shape("select 'unterminated")


def _walk_ast(node, visit):
    from dataclasses import fields, is_dataclass
    visit(node)
    if is_dataclass(node):
        for f in fields(node):
            value = getattr(node, f.name)
            for child in (value if isinstance(value, (list, tuple)) else [value]):
                if is_dataclass(child):
                    _walk_ast(child, visit)


# ---------------------------------------------------------------------------
# PlanCache data structure
# ---------------------------------------------------------------------------


def _entry(shape="S", fixed=(), tables=("t",), fingerprint=("env", (1,))):
    from repro.cache.plan_cache import CachedPlan
    from repro.algebra.ops import LogicalOp

    class _Stub(LogicalOp):
        children = ()
    return CachedPlan(
        shape=shape, param_types=(INTEGER,), generic_plan=_Stub(),
        free_slots=frozenset({0}), fixed_values=tuple(fixed),
        fingerprint=fingerprint, tables=tuple(tables),
        operators_before=3, operators_after=2, rewrite_fires={},
    )


_ENV = "env"


def _stats(_tables):
    return (1,)


class TestPlanCacheStructure:
    def test_promote_on_second_use(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER,))
        assert cache.should_promote(key) is False  # first sighting
        assert cache.should_promote(key) is True   # second: promote now

    def test_probe_miss_then_hit(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER,))
        assert cache.probe(key, [7], _ENV, _stats) is None
        assert cache.misses == 1
        cache.store(key, _entry())
        entry = cache.probe(key, [8], _ENV, _stats)
        assert entry is not None
        assert cache.hits == 1 and entry.hits == 1

    def test_uncacheable_never_promotes(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER,))
        cache.mark_uncacheable(key)
        assert cache.should_promote(key) is False
        assert cache.uncacheable == 1

    def test_fixed_values_get_separate_entries(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER, INTEGER))
        cache.store(key, _entry(fixed=((1, 5),)))
        cache.store(key, _entry(fixed=((1, 50),)))
        assert len(cache) == 2
        # values[1] is the fixed slot: 5 hits entry one, 50 entry two, 99 misses
        assert cache.probe(key, [0, 5], _ENV, _stats) is not None
        assert cache.probe(key, [0, 50], _ENV, _stats) is not None
        assert cache.probe(key, [0, 99], _ENV, _stats) is None
        # a learned shape promotes on every later miss
        assert cache.should_promote(key) is True

    def test_lru_eviction_bounded_by_capacity(self):
        cache = PlanCache(2)
        for i in range(4):
            cache.store((f"S{i}", ()), _entry(shape=f"S{i}"))
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_fingerprint_mismatch_invalidates(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER,))
        cache.store(key, _entry(fingerprint=("old-env", (1,))))
        assert cache.probe(key, [7], _ENV, _stats) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_stats_signature_change_invalidates(self):
        cache = PlanCache(4)
        key = ("SHAPE", (INTEGER,))
        cache.store(key, _entry(fingerprint=(_ENV, (1,))))
        assert cache.probe(key, [7], _ENV, lambda t: (9,)) is None
        assert cache.invalidations == 1

    def test_clear_counts_invalidations(self):
        cache = PlanCache(4)
        cache.store(("A", ()), _entry(shape="A"))
        cache.store(("B", ()), _entry(shape="B"))
        assert cache.clear() == 2
        assert cache.invalidations == 2 and len(cache) == 0

    def test_capacity_zero_stores_nothing(self):
        cache = PlanCache(0)
        cache.store(("A", ()), _entry())
        assert len(cache) == 0

    def test_shape_map_bounded(self):
        cache = PlanCache(1)
        for i in range(200):
            cache.should_promote((f"S{i}", ()))
        assert len(cache._shapes) <= cache._shape_capacity


# ---------------------------------------------------------------------------
# Database wiring
# ---------------------------------------------------------------------------


@pytest.fixture()
def db():
    database = Database(wal_enabled=False, plan_cache_size=8)
    database.execute(
        "create table pt (id int primary key, qty int, name varchar(20))"
    )
    database.bulk_load("pt", [(i, i * 3, f"n{i}") for i in range(20)])
    database.execute("create view pv as select id, qty from pt where qty >= 0")
    return database


SQL = "select id, qty from pt where id = 7"


def _spin(database, sql, runs=3):
    results = [database.query(sql) for _ in range(runs)]
    return results[-1]


class TestDatabaseWiring:
    def test_third_run_hits(self, db):
        _spin(db, SQL)
        assert db.plan_cache.hits == 1      # run 3
        assert db.plan_cache.misses == 2    # runs 1-2

    def test_hit_results_match_fresh(self, db):
        fresh = Database(wal_enabled=False, plan_cache_size=0)
        fresh.execute(
            "create table pt (id int primary key, qty int, name varchar(20))"
        )
        fresh.bulk_load("pt", [(i, i * 3, f"n{i}") for i in range(20)])
        cached_result = _spin(db, SQL)
        assert cached_result.rows == fresh.query(SQL).rows

    def test_generic_plan_serves_other_values(self, db):
        _spin(db, SQL)
        hits_before = db.plan_cache.hits
        result = db.query("select id, qty from pt where id = 11")
        assert result.rows == [(11, 33)]
        assert db.plan_cache.hits == hits_before + 1

    def test_limit_values_get_own_entries(self, db):
        for limit in (2, 5):
            for _ in range(3):
                rows = db.query(f"select id from pt order by id limit {limit}").rows
                assert len(rows) == limit
        entries = db.plan_cache.entries()
        limits = sorted(e.fixed_values for e in entries if e.fixed_values)
        assert len(limits) == 2

    def test_ddl_invalidates(self, db):
        _spin(db, SQL)
        db.execute("create view pv2 as select id from pt")
        result = db.query(SQL)  # stale fingerprint -> invalidation + recompile
        assert result.rows == [(7, 21)]
        assert db.plan_cache.invalidations == 1

    def test_view_drop_invalidates(self, db):
        view_sql = "select id, qty from pv where id = 3"
        _spin(db, view_sql)
        db.execute("drop view pv")
        with pytest.raises(Exception):
            db.query(view_sql)  # the view is gone: must NOT serve the cached plan

    def test_view_redeploy_changes_results(self, db):
        view_sql = "select id, qty from pv where id = 3"
        assert _spin(db, view_sql).rows == [(3, 9)]
        db.execute("create or replace view pv as "
                   "select id, qty from pt where qty > 100")
        assert db.query(view_sql).rows == []

    def test_profile_change_invalidates(self, db):
        _spin(db, SQL)
        db.set_profile("postgres")
        invalidations_before = db.plan_cache.invalidations
        assert db.query(SQL).rows == [(7, 21)]
        assert db.plan_cache.invalidations == invalidations_before + 1

    def test_stats_refresh_invalidates(self, db):
        _spin(db, SQL)
        # 20 -> 200 rows crosses a bit_length bucket: plan choice may change
        db.bulk_load("pt", [(i, i * 3, f"n{i}") for i in range(20, 200)])
        assert db.query(SQL).rows == [(7, 21)]
        assert db.plan_cache.invalidations >= 1

    def test_insert_visible_through_cached_plan(self, db):
        probe = "select id, qty from pt where id = 777"
        _spin(db, probe)
        assert db.query(probe).rows == []
        db.execute("insert into pt values (777, 1, 'new')")
        assert db.query(probe).rows == [(777, 1)]

    def test_plan_cache_size_zero_disables(self):
        database = Database(wal_enabled=False, plan_cache_size=0)
        database.execute("create table z (id int primary key)")
        assert database.plan_cache is None
        for _ in range(3):
            assert database.query("select id from z").rows == []

    def test_execute_path_select_gate(self, db):
        for _ in range(3):
            db.execute(SQL)
        assert db.plan_cache.hits >= 1

    def test_optimize_false_bypasses_cache(self, db):
        _spin(db, SQL)
        hits = db.plan_cache.hits
        misses = db.plan_cache.misses
        db.query(SQL, optimize=False)
        assert (db.plan_cache.hits, db.plan_cache.misses) == (hits, misses)

    def test_explain_cached_annotation(self, db):
        assert "(cached)" not in db.explain(SQL)
        _spin(db, SQL)
        assert "(cached)" in db.explain(SQL)

    def test_params_stay_opaque_in_generic_plan(self, db):
        _spin(db, SQL)
        [entry] = db.plan_cache.entries()
        from repro.cache.plan_cache import plan_param_slots
        assert plan_param_slots(entry.generic_plan) == entry.free_slots
        assert 0 in entry.free_slots

    def test_metrics_counters_exported(self, db):
        _spin(db, SQL)
        snap = db.metrics.snapshot()
        assert snap["plan_cache.hits"] == 1
        assert snap["plan_cache.misses"] == 2

    def test_sys_plan_cache_table(self, db):
        _spin(db, SQL)
        result = db.query("select shape, hits, free_params from sys.plan_cache")
        assert len(result.rows) >= 1
        shapes = [row[0] for row in result.rows]
        assert any("pt" in shape for shape in shapes)

    def test_doctor_reports_plan_cache(self, db):
        from repro.observability.doctor import doctor_report
        _spin(db, SQL)
        report = doctor_report(db)
        assert "-- plan cache --" in report
        assert "hit_rate" in report

    def test_doctor_disabled_when_off(self):
        from repro.observability.doctor import doctor_report
        database = Database(wal_enabled=False, plan_cache_size=0)
        assert "(disabled)" in doctor_report(database)

    def test_queries_executed_counts_hits(self, db):
        _spin(db, SQL, runs=5)
        assert db.metrics.snapshot()["queries.executed"] == 5


# ---------------------------------------------------------------------------
# serving layer
# ---------------------------------------------------------------------------


def test_gateway_requests_share_the_plan_cache():
    """Statements arriving over the HTTP gateway run through the same
    Database and therefore the same plan cache: repeated shapes from any
    client hit after promotion."""
    import json
    import urllib.request

    from repro.serving import GatewayServer

    database = Database(wal_enabled=False, plan_cache_size=16)
    database.execute("create table gt (id int primary key, v int)")
    database.execute("insert into gt values (1, 10), (2, 20), (3, 30)")
    server = GatewayServer(database, port=0, max_concurrent=2).start()
    try:
        bodies = []
        for _ in range(4):
            request = urllib.request.Request(
                server.url + "/v1/query",
                data=json.dumps({"sql": "select v from gt where id = 2"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                bodies.append(json.loads(response.read()))
        assert all(body["rows"] == [[20]] for body in bodies)
        assert database.plan_cache.hits >= 2
    finally:
        server.close(drain_timeout=10)
        database.close()

"""Scaled synthetic VDM: 1,000+ stacked views in one catalog.

The paper's S/4HANA numbers (§2) put the VDM at hundreds of thousands of
views; this test scales the Fig. 14 generator until the catalog holds
over a thousand stacked views (each generated index contributes a
consumption view plus two extension stacks) and asserts the two things
that must stay bounded at that population size: per-statement optimize
time, and plan-cache memory under a steady stream of distinct shapes.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.vdm.generator import SyntheticVdm

VIEW_INDEXES = 340  # 3 catalog views per index -> 1020 views
CACHE_CAPACITY = 64


@pytest.fixture(scope="module")
def scaled_vdm():
    db = Database(wal_enabled=False, plan_cache_size=CACHE_CAPACITY)
    views = SyntheticVdm(db, seed=42).build_views(
        count=VIEW_INDEXES, min_rows=2, max_rows=4,
        min_dims=2, max_dims=2, dim_rows=5,
    )
    return db, views


def test_catalog_holds_over_1000_views(scaled_vdm):
    db, views = scaled_vdm
    assert len(views) == VIEW_INDEXES
    assert sum(1 for _ in db.catalog.views()) >= 1000


def test_optimize_time_stays_bounded(scaled_vdm):
    """Optimizing against a 1,000-view catalog must cost no more than the
    view stack actually referenced — catalog size must not leak into
    per-statement planning time."""
    db, views = scaled_vdm
    sample = views[::VIEW_INDEXES // 20][:20]
    timings = []
    for view in sample:
        start = time.perf_counter()
        db.plan_for(f"select * from {view.extended_case} limit 5")
        timings.append(time.perf_counter() - start)
    timings.sort()
    median = timings[len(timings) // 2]
    assert median < 0.5, f"median optimize {median:.3f}s over 1,020 views"
    assert timings[-1] < 2.0, f"worst optimize {timings[-1]:.3f}s"


def test_plan_cache_stays_bounded_under_distinct_shapes(scaled_vdm):
    """200 distinct view shapes, each promoted (two runs), against a
    64-entry cache: entry count and approximate memory must respect the
    capacity, with the overflow surfacing as evictions."""
    db, views = scaled_vdm
    cache = db.plan_cache
    for view in views[:200]:
        sql = f"select fkey, amount from {view.name} where fkey = 1"
        db.query(sql)
        db.query(sql)  # second run promotes the shape
    assert len(cache) <= CACHE_CAPACITY
    assert cache.evictions > 0
    approx = cache.approx_bytes()
    # ~512 bytes per plan node; 64 stacked-view plans must stay in the
    # single-digit-MB range, not grow with the 1,000-view catalog.
    assert approx < 8 * 1024 * 1024, f"plan cache approx {approx} bytes"
    assert approx > 0


def test_scaled_views_still_answer_correctly(scaled_vdm):
    db, views = scaled_vdm
    for view in (views[0], views[-1]):
        first = db.query(f"select count(*) as n from {view.name}")
        second = db.query(f"select count(*) as n from {view.name}")
        # the draft pattern unions extra draft rows onto the fact rows
        assert first.scalar() == second.scalar()
        assert first.scalar() >= view.rows

"""Unit tests for catalog schema objects and the catalog registry."""

import pytest

from repro.catalog import Catalog, ColumnSchema, TableSchema, UniqueConstraint, ViewSchema
from repro.datatypes import INTEGER, varchar
from repro.errors import CatalogError
from repro.storage import ColumnTable, TransactionManager


def make_table(name="t", txns=None):
    schema = TableSchema(
        name,
        [ColumnSchema("id", INTEGER, False), ColumnSchema("v", varchar(10))],
        [UniqueConstraint(("id",), True)],
    )
    return ColumnTable(schema, txns or TransactionManager())


class TestTableSchema:
    def test_names_lower_cased(self):
        schema = TableSchema("T", [ColumnSchema("A", INTEGER)], [])
        assert schema.name == "t" and schema.columns[0].name == "a"

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [ColumnSchema("a", INTEGER), ColumnSchema("A", INTEGER)])

    def test_constraint_unknown_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [ColumnSchema("a", INTEGER)],
                        [UniqueConstraint(("nope",))])

    def test_primary_key_lookup(self):
        schema = TableSchema(
            "t",
            [ColumnSchema("a", INTEGER), ColumnSchema("b", INTEGER)],
            [UniqueConstraint(("b",)), UniqueConstraint(("a",), is_primary=True)],
        )
        assert schema.primary_key == ("a",)

    def test_no_primary_key_is_none(self):
        schema = TableSchema("t", [ColumnSchema("a", INTEGER)])
        assert schema.primary_key is None

    def test_column_index_and_has_column(self):
        schema = TableSchema("t", [ColumnSchema("a", INTEGER), ColumnSchema("b", INTEGER)])
        assert schema.column_index("B") == 1
        assert schema.has_column("A") and not schema.has_column("c")

    def test_unknown_column_raises(self):
        schema = TableSchema("t", [ColumnSchema("a", INTEGER)])
        with pytest.raises(CatalogError):
            schema.column("zzz")

    def test_unique_column_sets(self):
        schema = TableSchema(
            "t",
            [ColumnSchema("a", INTEGER), ColumnSchema("b", INTEGER)],
            [UniqueConstraint(("a", "b"), True)],
        )
        assert schema.unique_column_sets() == [frozenset({"a", "b"})]


class TestCatalog:
    def test_create_and_resolve_table(self):
        catalog = Catalog()
        table = make_table()
        catalog.create_table(table)
        assert catalog.table("T") is table
        assert catalog.has_table("t")
        assert catalog.resolve("t") is table

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_table(make_table())

    def test_if_not_exists_is_noop(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_table(make_table(), if_not_exists=True)  # no raise

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        catalog.drop_table("t", if_exists=True)  # no raise

    def test_views_registry(self):
        catalog = Catalog()
        view = ViewSchema("V", query=None, column_names=("A", "B"))
        catalog.create_view(view)
        assert catalog.view("v").column_names == ("a", "b")
        with pytest.raises(CatalogError):
            catalog.create_view(ViewSchema("v", query=None))
        catalog.create_view(ViewSchema("v", query=None), or_replace=True)

    def test_view_name_conflicts_with_table(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_view(ViewSchema("t", query=None))

    def test_drop_view(self):
        catalog = Catalog()
        catalog.create_view(ViewSchema("v", query=None))
        catalog.drop_view("v")
        with pytest.raises(CatalogError):
            catalog.drop_view("v")
        catalog.drop_view("v", if_exists=True)

    def test_resolve_missing(self):
        with pytest.raises(CatalogError):
            Catalog().resolve("ghost")

    def test_macros_lower_cased(self):
        view = ViewSchema("v", query=None, macros={"Margin": object()})
        assert "margin" in view.macros

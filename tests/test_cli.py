"""Tests for the interactive shell (python -m repro)."""

import subprocess
import sys

import pytest

from repro import Database
from repro.__main__ import DEMO_SQL, format_result, run_command


@pytest.fixture
def db():
    database = Database()
    for sql in DEMO_SQL:
        database.execute(sql)
    return database


class TestRunCommand:
    def test_query_prints_table(self, db, capsys):
        assert run_command(db, "select c_name from customer order by c_id")
        out = capsys.readouterr().out
        assert "ACME" in out and "3 row(s)" in out

    def test_ddl_prints_ok(self, db, capsys):
        run_command(db, "create table t (a int)")
        assert "ok" in capsys.readouterr().out

    def test_dml_prints_count(self, db, capsys):
        run_command(db, "update orders set o_status = 'X' where o_id = 10")
        assert "1 row(s) affected" in capsys.readouterr().out

    def test_explain_commands(self, db, capsys):
        run_command(db, ".explain select o_id from orderview")
        optimized = capsys.readouterr().out
        run_command(db, ".explain! select o_id from orderview")
        unoptimized = capsys.readouterr().out
        assert "Join" not in optimized
        assert "Join" in unoptimized

    def test_stats_command(self, db, capsys):
        run_command(db, ".stats select o_id from orderview")
        out = capsys.readouterr().out
        assert "bound" in out and "optimized" in out

    def test_profile_switch(self, db, capsys):
        run_command(db, ".profile postgres")
        assert "postgres" in capsys.readouterr().out
        assert db.profile == "postgres"

    def test_verify_command(self, db, capsys):
        run_command(
            db,
            ".verify select o.o_id from orders o left outer many to one join "
            "customer c on o.o_cust = c.c_id",
        )
        assert "OK" in capsys.readouterr().out

    def test_tables_and_views(self, db, capsys):
        run_command(db, ".tables")
        run_command(db, ".views")
        out = capsys.readouterr().out
        assert "orders" in out and "orderview" in out

    def test_error_reported_not_raised(self, db, capsys):
        assert run_command(db, "select nothere from orders")
        assert "error:" in capsys.readouterr().out

    def test_unknown_dot_command(self, db, capsys):
        run_command(db, ".wat")
        assert "unknown command" in capsys.readouterr().out

    def test_quit(self, db):
        assert run_command(db, ".quit") is False

    def test_empty_line(self, db):
        assert run_command(db, "   ")

    def test_semicolon_tolerated(self, db, capsys):
        run_command(db, "select count(*) from orders;")
        assert "1 row(s)" in capsys.readouterr().out


class TestFormatting:
    def test_format_result_truncates(self, db):
        result = db.query("select o_id from orders")
        text = format_result(result, max_rows=2)
        assert "4 rows total" in text

    def test_format_alignment(self, db):
        result = db.query("select c_id, c_name from customer order by c_id")
        lines = format_result(result).splitlines()
        assert lines[0].startswith("c_id")
        assert set(lines[1]) <= {"-", " "}


def test_shell_end_to_end():
    script = ".demo\nselect count(*) from orderview\n.quit\n"
    completed = subprocess.run(
        [sys.executable, "-m", "repro"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "demo schema loaded" in completed.stdout
    assert "bye" in completed.stdout

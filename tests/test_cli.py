"""Tests for the interactive shell (python -m repro)."""

import subprocess
import sys

import pytest

from repro import Database
from repro.__main__ import DEMO_SQL, format_result, run_command


@pytest.fixture
def db():
    database = Database()
    for sql in DEMO_SQL:
        database.execute(sql)
    return database


class TestRunCommand:
    def test_query_prints_table(self, db, capsys):
        assert run_command(db, "select c_name from customer order by c_id")
        out = capsys.readouterr().out
        assert "ACME" in out and "3 row(s)" in out

    def test_ddl_prints_ok(self, db, capsys):
        run_command(db, "create table t (a int)")
        assert "ok" in capsys.readouterr().out

    def test_dml_prints_count(self, db, capsys):
        run_command(db, "update orders set o_status = 'X' where o_id = 10")
        assert "1 row(s) affected" in capsys.readouterr().out

    def test_explain_commands(self, db, capsys):
        run_command(db, ".explain select o_id from orderview")
        optimized = capsys.readouterr().out
        run_command(db, ".explain! select o_id from orderview")
        unoptimized = capsys.readouterr().out
        assert "Join" not in optimized
        assert "Join" in unoptimized

    def test_stats_command(self, db, capsys):
        run_command(db, ".stats select o_id from orderview")
        out = capsys.readouterr().out
        assert "bound" in out and "optimized" in out

    def test_analyze_command(self, db, capsys):
        run_command(db, ".analyze select o_id from orderview")
        out = capsys.readouterr().out
        assert "actual rows=" in out and "execution:" in out

    def test_trace_command(self, db, capsys):
        run_command(db, ".trace select o_id from orderview")
        out = capsys.readouterr().out
        assert "query trace" in out and "fixpoint:" in out
        assert db.tracing is False   # restored afterwards

    def test_spans_command(self, db, capsys):
        run_command(db, ".spans select o_id from orderview")
        out = capsys.readouterr().out
        assert out.startswith("query")
        assert "optimize" in out and "execute" in out
        assert db.tracing is False   # restored afterwards

    def test_slow_command(self, db, capsys):
        run_command(db, ".slow 0")
        assert "threshold: 0ms" in capsys.readouterr().out
        run_command(db, "select count(*) from orders")
        capsys.readouterr()
        run_command(db, ".slow")
        out = capsys.readouterr().out
        assert "select count(*) from orders" in out
        run_command(db, ".slow -1")
        assert "disabled" in capsys.readouterr().out
        assert db.slow_queries.threshold_s is None

    def test_metrics_command(self, db, capsys):
        run_command(db, "select count(*) from orders")
        capsys.readouterr()
        run_command(db, ".metrics")
        out = capsys.readouterr().out
        assert "queries.executed" in out

    def test_profile_switch(self, db, capsys):
        run_command(db, ".profile postgres")
        assert "postgres" in capsys.readouterr().out
        assert db.profile == "postgres"

    def test_verify_command(self, db, capsys):
        run_command(
            db,
            ".verify select o.o_id from orders o left outer many to one join "
            "customer c on o.o_cust = c.c_id",
        )
        assert "OK" in capsys.readouterr().out

    def test_tables_and_views(self, db, capsys):
        run_command(db, ".tables")
        run_command(db, ".views")
        out = capsys.readouterr().out
        assert "orders" in out and "orderview" in out

    def test_error_reported_not_raised(self, db, capsys):
        assert run_command(db, "select nothere from orders")
        assert "error:" in capsys.readouterr().out

    def test_unknown_dot_command(self, db, capsys):
        run_command(db, ".wat")
        assert "unknown command" in capsys.readouterr().out

    def test_quit(self, db):
        assert run_command(db, ".quit") is False

    def test_empty_line(self, db):
        assert run_command(db, "   ")

    def test_semicolon_tolerated(self, db, capsys):
        run_command(db, "select count(*) from orders;")
        assert "1 row(s)" in capsys.readouterr().out


class TestFormatting:
    def test_format_result_truncates(self, db):
        result = db.query("select o_id from orders")
        text = format_result(result, max_rows=2)
        assert "4 rows total" in text

    def test_format_alignment(self, db):
        result = db.query("select c_id, c_name from customer order by c_id")
        lines = format_result(result).splitlines()
        assert lines[0].startswith("c_id")
        assert set(lines[1]) <= {"-", " "}


class TestSubcommands:
    def test_explain_subcommand(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(
            ["explain", "--analyze", "select o_id, c_name from orderview"]
        ) == 0
        out = capsys.readouterr().out
        assert "actual rows=" in out and "execution:" in out

    def test_explain_no_optimize(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(
            ["explain", "--no-optimize", "select o_id from orderview"]
        ) == 0
        assert "Join" in capsys.readouterr().out

    def test_trace_subcommand(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["trace", "select o_id from orderview"]) == 0
        out = capsys.readouterr().out
        assert "query trace" in out and "AJ declared" in out

    def test_metrics_subcommand(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "queries.executed" in out
        assert "optimizer.rewrites" in out

    def test_trace_json_subcommand(self, capsys):
        import json

        from repro.__main__ import run_subcommand

        assert run_subcommand(
            ["trace", "--json", "select o_id from orderview"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["sql"] == "select o_id from orderview"
        assert data["spans"]["name"] == "query"
        assert [c["name"] for c in data["spans"]["children"]] == [
            "parse", "bind", "optimize", "execute",
        ]

    def test_metrics_prometheus_format(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["metrics", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_executed_total counter" in out
        assert "repro_optimizer_rewrites_total{case=" in out

    def test_metrics_json_format(self, capsys):
        import json

        from repro.__main__ import run_subcommand

        assert run_subcommand(["metrics", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["queries.executed"] == 3

    def test_bench_diff_subcommand(self, capsys, tmp_path):
        import json

        from repro.__main__ import run_subcommand

        path = tmp_path / "hist.json"
        entries = [
            {"run_at": r, "benchmarks": {"uaj": {"median_s": m}}}
            for r, m in (("old", 0.010), ("new", 0.020))
        ]
        path.write_text(json.dumps(entries))
        assert run_subcommand(["bench-diff", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert run_subcommand(
            ["bench-diff", "--history", str(path), "--threshold", "150"]
        ) == 0

    def test_bench_diff_too_few_runs(self, capsys, tmp_path):
        from repro.__main__ import run_subcommand

        assert run_subcommand(
            ["bench-diff", "--history", str(tmp_path / "none.json")]
        ) == 0
        assert "need two runs" in capsys.readouterr().out

    def test_unknown_profile_reported_not_raised(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["trace", "--profile", "hanna", "select 1"]) == 1
        assert "unknown optimizer profile" in capsys.readouterr().err

    def test_subcommand_error_exit_code(self, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["explain", "select nothere from orders"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_main_dispatches_to_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["metrics"]) == 0
        assert "queries.executed" in capsys.readouterr().out

    def test_chaos_subcommand(self, tmp_path, capsys):
        from repro.__main__ import run_subcommand

        argv = [
            "chaos", "--seed", "7", "--ops", "25", "--quiet",
            "--wal-dir", str(tmp_path),
        ]
        assert run_subcommand(argv) == 0
        out = capsys.readouterr().out
        assert "chaos" in out and "recoveries" in out

    def test_replay_subcommand(self, tmp_path, capsys):
        from repro.__main__ import run_subcommand
        from repro.database import Database

        db = Database(capture_dir=str(tmp_path))
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10), (2, 20)")
        db.execute("select sum(v) from t")
        db.close()
        path = str(tmp_path / "workload.jsonl")
        assert run_subcommand(["replay", path, "--check-digests"]) == 0
        out = capsys.readouterr().out
        assert "1 digest(s) checked — ok" in out
        assert "replay::" in out

    def test_replay_subcommand_missing_file(self, tmp_path, capsys):
        from repro.__main__ import run_subcommand

        assert run_subcommand(["replay", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


def test_shell_end_to_end():
    script = ".demo\nselect count(*) from orderview\n.quit\n"
    completed = subprocess.run(
        [sys.executable, "-m", "repro"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "demo schema loaded" in completed.stdout
    assert "bye" in completed.stdout

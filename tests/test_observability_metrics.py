"""MetricsRegistry unit tests: primitives, thread-safety, percentiles,
and the Database wiring (queries, WAL, MVCC, cached views)."""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5
        g.add(-1.5)
        assert g.value == 2.0

    def test_histogram_running_stats(self):
        h = Histogram("h")
        for v in (4.0, 1.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 8.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == pytest.approx(8.0 / 3)

    def test_histogram_empty(self):
        h = Histogram("h")
        assert h.mean is None
        assert h.percentile(50) is None
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["p95"] is None

    def test_histogram_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert 49.0 <= h.percentile(50) <= 52.0
        assert 94.0 <= h.percentile(95) <= 96.0

    def test_histogram_single_sample_is_every_percentile(self):
        # Regression guard: a lone observation used to interpolate against
        # an implicit zero, reporting p50 = half the sample.
        h = Histogram("h")
        h.observe(42.0)
        for p in (0, 50, 95, 99, 100):
            assert h.percentile(p) == 42.0
        assert h.summary()["p50"] == 42.0

    def test_histogram_two_samples_interpolate(self):
        h = Histogram("h")
        h.observe(10.0)
        h.observe(20.0)
        assert h.percentile(0) == 10.0
        assert h.percentile(50) == 15.0
        assert h.percentile(95) == pytest.approx(19.5)
        assert h.percentile(100) == 20.0

    def test_histogram_percentile_clamped(self):
        h = Histogram("h")
        h.observe(1.0)
        h.observe(2.0)
        assert h.percentile(-5) == 1.0
        assert h.percentile(250) == 2.0

    def test_histogram_window_bounds_memory(self):
        h = Histogram("h", window=8)
        for v in range(1000):
            h.observe(float(v))
        assert len(h._buf) == 8
        assert h.count == 1000          # running stats see everything
        assert h.max == 999.0
        assert h.percentile(0) >= 992.0  # window keeps only the recent tail


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["p50"] == 3.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []

    def test_render_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("queries.executed").inc(7)
        reg.histogram("lat").observe(0.5)
        text = reg.render()
        assert "queries.executed" in text and "7" in text
        assert "p95=" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()


class TestThreadSafety:
    def test_concurrent_counter_increments(self):
        c = Counter("c")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(5000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 5000

    def test_concurrent_histogram_observes(self):
        h = Histogram("h", window=64)
        threads = [
            threading.Thread(target=lambda: [h.observe(1.0) for _ in range(2000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8 * 2000
        assert h.total == pytest.approx(8 * 2000.0)
        assert len(h._buf) == 64

    def test_concurrent_get_or_create(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            seen.append(reg.counter("same"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestDatabaseWiring:
    def test_query_and_optimizer_metrics(self):
        db = Database()
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10), (2, 20)")
        db.execute("create table u (id int primary key, w int)")
        db.query("select t.id from t left outer join u on t.id = u.id")
        snap = db.metrics.snapshot()
        assert snap["queries.executed"] >= 1
        assert snap["queries.latency_s"]["count"] >= 1
        assert snap["optimizer.runs"] >= 1
        assert snap["optimizer.rewrites.AJ 2a"] >= 1

    def test_wal_and_txn_metrics(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1), (2)")
        txn = db.begin()
        db.rollback(txn)
        snap = db.metrics.snapshot()
        assert snap["wal.appends"] >= 3      # 2 inserts + 1 commit
        assert snap["txn.commits"] >= 1
        assert snap["txn.aborts"] == 1

    def test_wal_disabled_has_no_wal_metric(self):
        db = Database(wal_enabled=False)
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        assert "wal.appends" not in db.metrics.snapshot()

    def test_cached_view_metrics(self):
        from repro.cache import CachedViewManager

        db = Database()
        db.execute("create table s (k int primary key, v int)")
        db.execute("insert into s values (1, 10), (2, 20)")
        mgr = CachedViewManager(db)
        mgr.create_dynamic("agg", "select k, sum(v) as sv from s group by k")
        mgr.query_fresh("agg")                       # nothing pending: hit
        db.execute("insert into s values (3, 30)")
        mgr.query_fresh("agg")                       # pending increment: miss
        snap = db.metrics.snapshot()
        assert snap["cache.hits"] >= 1
        assert snap["cache.misses"] >= 1
        assert snap["cache.refreshes"] >= 1
        assert snap["cache.incremental_rows"] >= 1

    def test_explain_analyze_counts_as_query(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        before = db.metrics.counter("queries.executed").value
        db.explain("select id from t", analyze=True)
        assert db.metrics.counter("queries.executed").value == before + 1

"""Unit tests for the SQL type system."""

import datetime
import decimal

import pytest

from repro.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    DataType,
    TypeKind,
    common_super_type,
    decimal_type,
    type_of_literal,
    varchar,
)
from repro.errors import TypeCheckError


class TestValidation:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_integer_accepts_numeric_string(self):
        assert INTEGER.validate("17") == 17

    def test_integer_accepts_integral_float(self):
        assert INTEGER.validate(3.0) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeCheckError):
            INTEGER.validate(3.5)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            INTEGER.validate(True)

    def test_null_passes_any_type(self):
        for ty in (INTEGER, DOUBLE, DATE, BOOLEAN, varchar(5), decimal_type(10, 2)):
            assert ty.validate(None) is None

    def test_decimal_quantizes_to_scale(self):
        ty = decimal_type(10, 2)
        assert ty.validate("1.005") == decimal.Decimal("1.01")  # half-up

    def test_decimal_accepts_int(self):
        assert decimal_type(10, 2).validate(7) == decimal.Decimal("7.00")

    def test_decimal_rejects_garbage(self):
        with pytest.raises(TypeCheckError):
            decimal_type(10, 2).validate("not a number")

    def test_varchar_length_enforced(self):
        assert varchar(3).validate("abc") == "abc"
        with pytest.raises(TypeCheckError):
            varchar(3).validate("abcd")

    def test_varchar_unbounded(self):
        assert varchar(None).validate("x" * 1000) == "x" * 1000

    def test_date_from_iso_string(self):
        assert DATE.validate("2025-06-15") == datetime.date(2025, 6, 15)

    def test_date_from_datetime(self):
        value = datetime.datetime(2025, 6, 15, 12, 30)
        assert DATE.validate(value) == datetime.date(2025, 6, 15)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeCheckError):
            DATE.validate("June 15")

    def test_boolean_strict(self):
        assert BOOLEAN.validate(True) is True
        with pytest.raises(TypeCheckError):
            BOOLEAN.validate(1)

    def test_double_accepts_decimal(self):
        assert DOUBLE.validate(decimal.Decimal("1.5")) == 1.5


class TestTypeAlgebra:
    def test_str_rendering(self):
        assert str(decimal_type(15, 2)) == "DECIMAL(15, 2)"
        assert str(varchar(30)) == "VARCHAR(30)"
        assert str(INTEGER) == "INTEGER"

    def test_is_numeric(self):
        assert INTEGER.is_numeric and DOUBLE.is_numeric and decimal_type().is_numeric
        assert not varchar(5).is_numeric and not DATE.is_numeric

    def test_common_super_type_widening(self):
        assert common_super_type(INTEGER, BIGINT).kind is TypeKind.BIGINT
        assert common_super_type(BIGINT, decimal_type(10, 2)).kind is TypeKind.DECIMAL
        assert common_super_type(decimal_type(10, 2), DOUBLE).kind is TypeKind.DOUBLE

    def test_common_super_type_decimal_params(self):
        merged = common_super_type(decimal_type(10, 2), decimal_type(15, 4))
        assert (merged.precision, merged.scale) == (15, 4)

    def test_common_super_type_varchar_lengths(self):
        assert common_super_type(varchar(5), varchar(9)).length == 9
        assert common_super_type(varchar(5), varchar(None)).length is None

    def test_common_super_type_incompatible(self):
        with pytest.raises(TypeCheckError):
            common_super_type(INTEGER, varchar(5))

    def test_equality_is_structural(self):
        assert decimal_type(10, 2) == DataType(TypeKind.DECIMAL, precision=10, scale=2)


class TestLiteralInference:
    def test_small_int(self):
        assert type_of_literal(5).kind is TypeKind.INTEGER

    def test_large_int_is_bigint(self):
        assert type_of_literal(2**40).kind is TypeKind.BIGINT

    def test_decimal_scale_inferred(self):
        ty = type_of_literal(decimal.Decimal("1.25"))
        assert ty.kind is TypeKind.DECIMAL and ty.scale == 2

    def test_float_is_double(self):
        assert type_of_literal(1.5).kind is TypeKind.DOUBLE

    def test_bool_before_int(self):
        assert type_of_literal(True).kind is TypeKind.BOOLEAN

    def test_string_and_date_and_null(self):
        assert type_of_literal("x").kind is TypeKind.VARCHAR
        assert type_of_literal(datetime.date(2025, 1, 1)).kind is TypeKind.DATE
        assert type_of_literal(None).kind is TypeKind.VARCHAR

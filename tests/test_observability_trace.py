"""Rewrite-trace tests: the Table 1-4 suites fire their named cases under
``hana`` and nothing under ``none``; fixpoint non-convergence warns."""

from __future__ import annotations

import pytest

from repro import Database
from repro.observability import NULL_TRACE, QueryTrace, RewriteTally
from repro.optimizer import pipeline
from repro.optimizer.pipeline import FixpointWarning, optimize_plan
from repro.workloads.queries import (
    ASJ_NEGATIVE,
    ASJ_SUITE,
    FIG6_PAGING,
    FIG13A,
    FIG13B_CASE_JOIN,
    UAJ_SUITE,
    UNION_UAJ_SUITE,
)

UAJ_CASES = {"AJ 1a", "AJ 1b", "AJ 2a", "AJ 2b", "AJ declared", "union-uaj"}


def traced(db: Database, sql: str, profile: str = "hana") -> QueryTrace:
    """Run ``sql`` under tracing + ``profile``; restore the db afterwards."""
    old_profile, old_tracing = db.profile, db.tracing
    db.set_profile(profile)
    db.tracing = True
    try:
        db.query(sql)
    finally:
        db.set_profile(old_profile)
        db.tracing = old_tracing
    trace = db.last_trace
    assert trace is not None
    return trace


# ---------------------------------------------------------------------------
# Tables 1-4: named cases fire under hana, never under none
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", UAJ_SUITE, ids=lambda q: q.name)
def test_table1_uaj_fires_named_case_under_hana(vdm_tables_db, query):
    trace = traced(vdm_tables_db, query.sql, "hana")
    assert trace.fired_cases() & UAJ_CASES, (
        f"{query.name} fired {trace.fired_cases()}, expected a UAJ case"
    )


@pytest.mark.parametrize("query", UAJ_SUITE, ids=lambda q: q.name)
def test_table1_none_profile_fires_nothing(vdm_tables_db, query):
    trace = traced(vdm_tables_db, query.sql, "none")
    assert trace.fired_cases() == set()
    assert trace.iterations_run == 0   # optimize_plan early-returns


def test_table2_limit_pushdown_fires(vdm_tables_db):
    trace = traced(vdm_tables_db, FIG6_PAGING.sql, "hana")
    assert trace.fired("limit-pushdown-aj")
    assert not traced(vdm_tables_db, FIG6_PAGING.sql, "none").fired_cases()


@pytest.mark.parametrize("query", ASJ_SUITE, ids=lambda q: q.name)
def test_table3_asj_fires(vdm_tables_db, query):
    assert traced(vdm_tables_db, query.sql, "hana").fired("ASJ")


def test_table3_negative_control_fires_no_asj(vdm_tables_db):
    trace = traced(vdm_tables_db, ASJ_NEGATIVE.sql, "hana")
    assert not trace.fired("ASJ")


def test_table4_union_uaj_fires(vdm_tables_db):
    fig11a, fig11b = UNION_UAJ_SUITE
    assert traced(vdm_tables_db, fig11a.sql, "hana").fired("union-uaj")
    # Fig. 11(b): the bid=1 filter prunes the union first (Fig. 12b),
    # then the remaining augmentation join is removed as a plain UAJ.
    trace_b = traced(vdm_tables_db, fig11b.sql, "hana")
    assert trace_b.fired("union-prune")
    assert trace_b.fired_cases() & UAJ_CASES


def test_fig13_union_asj_variants_fire(vdm_tables_db):
    assert traced(vdm_tables_db, FIG13A.sql, "hana").fired("ASJ union-anchor")
    assert traced(
        vdm_tables_db, FIG13B_CASE_JOIN.sql, "hana"
    ).fired("ASJ union-augmenter")


# ---------------------------------------------------------------------------
# Trace structure and surfaces
# ---------------------------------------------------------------------------


def test_trace_records_passes_and_iterations(vdm_tables_db):
    trace = traced(vdm_tables_db, UAJ_SUITE[0].sql, "hana")
    passes = trace.passes()
    assert passes, "pass events must be recorded under tracing"
    names = {e.name for e in passes}
    assert {"cleanup", "simplify", "limit_pushdown"} <= names
    assert all(e.elapsed_s is not None and e.elapsed_s >= 0 for e in passes)
    assert any(e.detail.get("changed") for e in passes)
    removed = sum(e.detail.get("operators_removed", 0) for e in passes)
    assert removed >= 2   # the augmentation join and its scan
    assert trace.converged and trace.iterations_run >= 1
    assert trace.events_of("iteration")


def test_trace_report_and_to_dict(vdm_tables_db):
    trace = traced(vdm_tables_db, UAJ_SUITE[0].sql, "hana")
    report = trace.report()
    assert "profile=hana" in report
    assert "AJ 2a" in report
    assert "converged" in report
    data = trace.to_dict()
    assert data["rewrites"].get("AJ 2a", 0) >= 1
    assert data["converged"] is True
    assert data["iterations"] == trace.iterations_run
    assert any(e["kind"] == "rewrite" for e in data["events"])


def test_last_trace_requires_tracing_flag(db):
    db.execute("create table t (id int primary key)")
    db.query("select id from t")
    assert db.last_trace is None   # default path keeps only the tally


def test_query_stats_report_rewrites_without_tracing(vdm_tables_db):
    result = vdm_tables_db.query(UAJ_SUITE[0].sql)
    stats = result.stats
    assert stats is not None
    assert stats.rewrite_fires.get("AJ 2a", 0) >= 1
    assert stats.operators_removed >= 2
    assert stats.elapsed_s > 0


def test_null_trace_is_inert():
    NULL_TRACE.rewrite("AJ 2a", detail=1)
    NULL_TRACE.begin_iteration(0)
    NULL_TRACE.end_iteration(0, True)
    NULL_TRACE.record_pass("x", 0, False, 0.0)
    NULL_TRACE.warning("nope")
    assert NULL_TRACE.enabled is False


def test_rewrite_tally_counts_without_events():
    tally = RewriteTally()
    tally.rewrite("AJ 2a")
    tally.rewrite("AJ 2a")
    tally.begin_iteration(2)
    assert tally.rewrite_counts == {"AJ 2a": 2}
    assert tally.iterations_run == 3
    assert tally.fired("AJ 2a") and not tally.fired("ASJ")


# ---------------------------------------------------------------------------
# Fixpoint non-convergence (satellite 1)
# ---------------------------------------------------------------------------


def test_nonconvergence_warns_and_marks_trace(vdm_tables_db, monkeypatch):
    monkeypatch.setattr(pipeline, "MAX_ITERATIONS", 1)
    plan = vdm_tables_db.bind(UAJ_SUITE[0].sql)
    trace = QueryTrace()
    with pytest.warns(FixpointWarning, match="did not reach a fixpoint"):
        optimize_plan(plan, "hana", vdm_tables_db, trace=trace)
    assert trace.converged is False
    assert trace.events_of("warning")


def test_nonconvergence_increments_metric(vdm_tables_db, monkeypatch):
    monkeypatch.setattr(pipeline, "MAX_ITERATIONS", 1)
    before = vdm_tables_db.metrics.counter("optimizer.nonconverged").value
    with pytest.warns(FixpointWarning):
        vdm_tables_db.query(UAJ_SUITE[0].sql)
    after = vdm_tables_db.metrics.counter("optimizer.nonconverged").value
    assert after == before + 1


def test_convergence_does_not_warn(vdm_tables_db):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", FixpointWarning)
        vdm_tables_db.query(UAJ_SUITE[0].sql)

"""Fault injector semantics and engine fault-point wiring."""

import pytest

from repro.database import Database
from repro.errors import FaultInjectedError
from repro.faults import FAULT_POINTS, FaultInjector, SimulatedCrash
from repro.observability import MetricsRegistry


class TestInjector:
    def test_disarmed_fire_is_noop(self):
        injector = FaultInjector()
        for point in FAULT_POINTS:
            injector.fire(point)
        assert injector.history == []

    def test_armed_point_raises_fault_injected(self):
        injector = FaultInjector()
        injector.arm("wal.append")
        with pytest.raises(FaultInjectedError) as excinfo:
            injector.fire("wal.append")
        assert excinfo.value.point == "wal.append"
        assert injector.history == [("wal.append", "error")]

    def test_crash_rule_raises_simulated_crash(self):
        injector = FaultInjector()
        injector.arm("wal.fsync", crash=True)
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.fire("wal.fsync")
        assert excinfo.value.point == "wal.fsync"
        # SimulatedCrash must skip `except Exception` handlers like kill -9.
        assert not isinstance(excinfo.value, Exception)

    def test_custom_error(self):
        injector = FaultInjector()
        injector.arm("storage.insert", error=OSError("disk full"))
        with pytest.raises(OSError, match="disk full"):
            injector.fire("storage.insert")

    def test_nth_call_trigger(self):
        injector = FaultInjector()
        rule = injector.arm("executor.operator", nth=3)
        injector.fire("executor.operator")
        injector.fire("executor.operator")
        with pytest.raises(FaultInjectedError):
            injector.fire("executor.operator")
        injector.fire("executor.operator")  # past nth: quiet again
        assert rule.injections == 1

    def test_times_cap(self):
        injector = FaultInjector()
        rule = injector.arm("cache.refresh", times=2)
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                injector.fire("cache.refresh")
        injector.fire("cache.refresh")  # exhausted
        assert rule.injections == 2

    def test_probability_is_seeded_and_partial(self):
        def injections(seed):
            injector = FaultInjector()
            injector.arm("wal.append", probability=0.5, seed=seed)
            fired = 0
            for _ in range(200):
                try:
                    injector.fire("wal.append")
                except FaultInjectedError:
                    fired += 1
            return fired

        first, second = injections(11), injections(11)
        assert first == second  # deterministic under a fixed seed
        assert 40 < first < 160  # actually probabilistic

    def test_match_filter(self):
        injector = FaultInjector()
        injector.arm("storage.insert", match={"table": "orders"})
        injector.fire("storage.insert", table="customer")
        with pytest.raises(FaultInjectedError):
            injector.fire("storage.insert", table="orders")

    def test_disarm_one_and_all(self):
        injector = FaultInjector()
        injector.arm("wal.append")
        injector.arm("wal.fsync")
        injector.disarm("wal.append")
        assert injector.armed() == ["wal.fsync"]
        injector.disarm()
        assert injector.armed() == []
        injector.fire("wal.fsync")  # disarmed: silent

    def test_injected_counter(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(metrics=metrics)
        injector.arm("wal.append", times=3)
        for _ in range(3):
            with pytest.raises(FaultInjectedError):
                injector.fire("wal.append")
        assert metrics.counter("faults.injected").value == 3


class TestEngineWiring:
    def test_storage_insert_point_aborts_statement(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.faults.arm("storage.insert", match={"table": "t"})
        with pytest.raises(FaultInjectedError):
            db.execute("insert into t values (1)")
        db.faults.disarm()
        # The auto-transaction rolled back: nothing half-inserted.
        assert db.query("select count(*) from t").scalar() == 0
        db.execute("insert into t values (1)")
        assert db.query("select count(*) from t").scalar() == 1

    def test_storage_delete_point(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1), (2)")
        db.faults.arm("storage.delete")
        with pytest.raises(FaultInjectedError):
            db.execute("delete from t where id = 1")
        db.faults.disarm()
        assert db.query("select count(*) from t").scalar() == 2

    def test_executor_operator_point(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        db.faults.arm("executor.operator")
        with pytest.raises(FaultInjectedError):
            db.query("select id from t")
        db.faults.disarm()
        assert db.query("select id from t").rows == [(1,)]

    def test_wal_append_point_fires_from_dml(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.faults.arm("wal.append", match={"kind": "insert"})
        with pytest.raises(FaultInjectedError):
            db.execute("insert into t values (1)")

    def test_cache_refresh_point(self):
        from repro.cache import CachedViewManager

        db = Database()
        db.execute("create table t (id int primary key, v int)")
        db.execute("insert into t values (1, 10)")
        cache = CachedViewManager(db)
        db.faults.arm("cache.refresh")
        with pytest.raises(FaultInjectedError):
            cache.create_static("scv", "select id, v from t")

    def test_history_records_order(self):
        db = Database()
        db.execute("create table t (id int primary key)")
        db.faults.arm("storage.insert", times=1)
        with pytest.raises(FaultInjectedError):
            db.execute("insert into t values (1)")
        assert db.faults.history == [("storage.insert", "error")]

"""Threaded stress over one shared Database through the serving layer.

N writer threads and M analytical reader threads hammer a single
:class:`~repro.database.Database` concurrently, asserting:

- **snapshot isolation** — every reader-visible row satisfies the write
  invariant ``v = id * 3 + w`` (a torn read would mix columns from
  different writes) and aggregate scans see whole batches, never
  fragments;
- **no torn sys.* reads** — ``sys.sessions`` / ``sys.admission`` /
  ``sys.metrics`` stream cleanly while sessions open, run, and close;
- **clean shutdown under load** — ``SessionManager.shutdown`` drains
  in-flight statements while new work is still being thrown at it;
- the seeded kill-and-recover concurrency chaos campaign passes.
"""

from __future__ import annotations

import threading

import pytest

from repro.database import Database
from repro.errors import ExecutionError, OverloadError, QueryTimeoutError
from repro.faults import run_concurrency_chaos
from repro.serving import SessionManager

WRITERS = 4
READERS = 3
BATCHES_PER_WRITER = 25


def _run_stress(db, manager, *, batch_rows=4):
    """Writers insert invariant-preserving batches while readers scan;
    returns (failures, committed_batches)."""
    stop = threading.Event()
    failures: list[str] = []
    committed = [0]
    lock = threading.Lock()

    def writer(index: int):
        session = manager.session(f"w{index}")
        base = index * BATCHES_PER_WRITER * batch_rows
        for batch_no in range(BATCHES_PER_WRITER):
            if stop.is_set():
                break
            start = base + batch_no * batch_rows
            values = ", ".join(
                f"({rid}, {index}, {rid * 3 + index})"
                for rid in range(start, start + batch_rows)
            )
            try:
                session.execute(f"insert into stress values {values}")
                with lock:
                    committed[0] += 1
            except (OverloadError, QueryTimeoutError):
                continue
            except Exception as error:  # pragma: no cover - fail the test
                failures.append(f"writer{index}: {error!r}")
                return
        session.close()

    def reader(index: int):
        session = manager.session(f"r{index}")
        while not stop.is_set():
            try:
                torn = session.query(
                    "select count(*) from stress where v <> id * 3 + w"
                ).rows[0][0]
                if torn:
                    failures.append(f"reader{index}: {torn} torn rows")
                    stop.set()
                    return
                # whole batches only: every row of a batch shares one w,
                # so per-writer counts are multiples of the batch size
                rows = session.query(
                    "select w, count(*) from stress group by w"
                ).rows
                for w, count in rows:
                    if count % batch_rows:
                        failures.append(
                            f"reader{index}: writer {w} shows {count} rows "
                            f"(not a whole number of {batch_rows}-row batches)"
                        )
                        stop.set()
                        return
                session.query("select count(*) from sys.sessions")
                session.query(
                    "select tenant, breaker_state from sys.admission"
                )
                session.query("select count(*) from sys.metrics")
            except (OverloadError, QueryTimeoutError):
                continue
            except ExecutionError as error:
                if "draining" in str(error) or "closed" in str(error):
                    return
                failures.append(f"reader{index}: {error!r}")
                stop.set()
                return

    threads = [
        threading.Thread(target=writer, args=(i,), name=f"stress-w{i}")
        for i in range(WRITERS)
    ] + [
        threading.Thread(target=reader, args=(i,), name=f"stress-r{i}")
        for i in range(READERS)
    ]
    for thread in threads:
        thread.start()
    try:
        for thread in threads[:WRITERS]:
            thread.join(timeout=120)
    finally:
        stop.set()
        for thread in threads[WRITERS:]:
            thread.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "hung threads"
    return failures, committed[0]


def test_writers_and_readers_share_one_database():
    db = Database()
    db.execute("create table stress (id int primary key, w int, v int)")
    manager = SessionManager(db, max_concurrent=4, max_queue=64)
    failures, committed = _run_stress(db, manager)
    assert failures == []
    assert committed == WRITERS * BATCHES_PER_WRITER
    total = db.query("select count(*) from stress").rows[0][0]
    assert total == committed * 4
    assert db.query(
        "select count(*) from stress where v <> id * 3 + w"
    ).rows == [(0,)]
    assert manager.shutdown() is True
    db.close()


def test_clean_shutdown_while_load_is_running():
    """shutdown() fired mid-traffic: in-flight statements drain, queued
    and late statements shed as OverloadError, nothing hangs or tears."""
    db = Database()
    db.execute("create table stress (id int primary key, w int, v int)")
    manager = SessionManager(db, max_concurrent=2, max_queue=8)
    stop = threading.Event()
    failures: list[str] = []

    def writer(index: int):
        try:
            session = manager.session(f"w{index}")
        except OverloadError:
            return
        rid = index * 100_000
        while not stop.is_set():
            try:
                session.execute(
                    f"insert into stress values ({rid}, {index}, "
                    f"{rid * 3 + index})"
                )
                rid += 1
            except (OverloadError, QueryTimeoutError):
                return  # draining: shed is the designed outcome
            except ExecutionError as error:
                if "closed" in str(error) or "draining" in str(error):
                    return
                failures.append(f"writer{index}: {error!r}")
                return

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    try:
        import time
        time.sleep(0.2)  # let real load build up
        assert manager.shutdown(drain_timeout=30) is True
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "hung threads"
    assert failures == []
    # post-drain state is consistent: the invariant holds over whatever
    # committed before the drain
    assert db.query(
        "select count(*) from stress where v <> id * 3 + w"
    ).rows == [(0,)]
    db.close()


def test_durable_stress_recovers(tmp_path):
    """The same stress over a durable WAL, then kill-and-recover: every
    committed batch survives whole."""
    db = Database(wal_dir=str(tmp_path), fsync="never")
    db.execute("create table stress (id int primary key, w int, v int)")
    manager = SessionManager(db, max_concurrent=4, max_queue=64)
    failures, committed = _run_stress(db, manager, batch_rows=2)
    assert failures == []
    assert manager.shutdown() is True   # flushes the WAL
    db.close()
    recovered = Database.recover(str(tmp_path))
    assert recovered.query("select count(*) from stress").rows == [
        (committed * 2,)
    ]
    assert recovered.query(
        "select count(*) from stress where v <> id * 3 + w"
    ).rows == [(0,)]
    recovered.close()


@pytest.mark.parametrize("seed", [3, 11])
def test_concurrency_chaos_seeded(tmp_path, seed):
    report = run_concurrency_chaos(
        str(tmp_path), seed=seed, rounds=2, writers=3, readers=2,
        ops_per_writer=5,
    )
    assert report.rounds == 2
    assert report.recoveries == 2
    assert report.crashes + report.clean_shutdowns == 2
    assert report.final_rows >= report.commits  # batches are >= 1 row

"""Statistics, cardinality estimation, and join-reordering tests."""

import pytest

from repro import Database
from repro.algebra.ops import Filter, Join, Project, Scan
from repro.optimizer.cost import CardinalityEstimator, estimate_cardinality
from repro.optimizer.join_order import reorder_joins
from repro.optimizer.stats import StatisticsProvider
from tests.conftest import assert_equivalent


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "create table big (bk int primary key, s int not null, m int not null, v int)"
    )
    database.execute("create table mid (mk int primary key, s int not null)")
    database.execute("create table small (sk int primary key, name varchar(8))")
    database.bulk_load("big", [(i, i % 20, i % 200, i) for i in range(4000)])
    database.bulk_load("mid", [(i, i % 20) for i in range(200)])
    database.bulk_load("small", [(i, f"n{i}") for i in range(20)])
    return database


class TestStatistics:
    def test_row_count_and_ndv(self, db):
        provider = StatisticsProvider(db.catalog)
        stats = provider.table_stats("big")
        assert stats.row_count == 4000
        assert stats.ndv("s") == 20
        assert stats.ndv("bk") == 4000

    def test_cache_invalidation_on_growth(self, db):
        provider = StatisticsProvider(db.catalog)
        before = provider.table_stats("small").row_count
        db.execute("insert into small values (100, 'new')")
        after = provider.table_stats("small").row_count
        assert (before, after) == (20, 21)

    def test_explicit_invalidate(self, db):
        provider = StatisticsProvider(db.catalog)
        provider.table_stats("small")
        provider.invalidate("small")
        provider.invalidate()  # full clear is also fine

    def test_ndv_never_zero(self, db):
        db.execute("create table empty_t (x int)")
        provider = StatisticsProvider(db.catalog)
        assert provider.table_stats("empty_t").ndv("x") == 1


class TestCardinality:
    def estimate(self, db, sql):
        return estimate_cardinality(db.bind(sql), db.catalog)

    def test_scan(self, db):
        assert self.estimate(db, "select * from big") == 4000

    def test_equality_filter_uses_ndv(self, db):
        estimate = self.estimate(db, "select * from big where s = 3")
        assert estimate == pytest.approx(4000 / 20)

    def test_range_filter(self, db):
        estimate = self.estimate(db, "select * from big where v > 100")
        assert estimate == pytest.approx(4000 / 3)

    def test_conjunction_multiplies(self, db):
        estimate = self.estimate(db, "select * from big where s = 3 and v > 100")
        assert estimate == pytest.approx(4000 / 20 / 3)

    def test_equi_join_divides_by_ndv(self, db):
        estimate = self.estimate(
            db, "select 1 as x from big join mid on big.s = mid.s"
        )
        # 4000 * 200 / max(ndv)=20 -> 40000
        assert estimate == pytest.approx(40000)

    def test_left_outer_at_least_left(self, db):
        estimate = self.estimate(
            db,
            "select 1 as x from big left join small on big.s = small.sk "
            "where small.name is null",
        )
        assert estimate >= 1

    def test_group_by_capped_by_input(self, db):
        estimate = self.estimate(
            db, "select s, count(*) from big group by s"
        )
        assert estimate == pytest.approx(20)

    def test_limit_caps(self, db):
        assert self.estimate(db, "select * from big limit 7") == 7

    def test_union_sums(self, db):
        estimate = self.estimate(
            db, "select bk from big union all select mk from mid"
        )
        assert estimate == pytest.approx(4200)

    def test_global_aggregate_is_one(self, db):
        assert self.estimate(db, "select count(*) from big") == 1


class TestJoinReorder:
    def join_sequence(self, plan):
        """Left-deep join order as a list of base-table names."""
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        tables = []
        for node in plan.walk():
            if isinstance(node, Scan):
                tables.append(node.schema.name)
        return tables

    def test_small_relation_seeds_the_order(self, db):
        sql = (
            "select big.v from big "
            "join mid on big.s = mid.s "
            "join small on mid.s = small.sk "
            "where small.name = 'n3'"
        )
        plan = db.plan_for(sql)
        tables = self.join_sequence(plan)
        # the selective/small relations should come before `big`
        assert tables.index("big") > 0

    def test_reordering_preserves_results(self, db):
        sql = (
            "select big.bk, small.name from big "
            "join mid on big.s = mid.s "
            "join small on mid.s = small.sk"
        )
        assert_equivalent(db, sql)

    def test_outer_join_is_a_region_border(self, db):
        sql = (
            "select big.bk from big "
            "left join mid on big.s = mid.s "
            "join small on big.s = small.sk"
        )
        assert_equivalent(db, sql)

    def test_declared_cardinality_not_reordered(self, db):
        sql = (
            "select big.v, mid.s from big "
            "inner many to exact one join mid on big.s = mid.mk "
            "join small on big.s = small.sk"
        )
        assert_equivalent(db, sql)

    def test_two_way_join_untouched(self, db):
        sql = "select big.v from big join small on big.s = small.sk"
        assert_equivalent(db, sql)

    def test_reorder_function_direct(self, db):
        sql = (
            "select big.v from big join mid on big.s = mid.s "
            "join small on mid.s = small.sk"
        )
        plan = db.bind(sql)
        rebuilt = reorder_joins(plan, db.catalog)
        a = sorted(db.query(sql, optimize=False).rows)
        txn = db.begin()
        b = sorted(db._executor.execute(rebuilt, txn).rows)
        db.commit(txn)
        assert a == b

    def test_cross_product_region_still_correct(self, db):
        sql = (
            "select big.v from big join mid on big.s = mid.s "
            "cross join small"
        )
        assert_equivalent(db, sql)

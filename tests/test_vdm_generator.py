"""Synthetic VDM generator tests (the Fig. 14 population and ablation views)."""

import pytest

from repro import Database
from repro.algebra.ops import Join, Scan
from repro.vdm.generator import SyntheticVdm, build_wide_view


@pytest.fixture(scope="module")
def population():
    db = Database(wal_enabled=False)
    generator = SyntheticVdm(db, seed=13)
    views = generator.build_views(count=8, min_rows=60, max_rows=600)
    return db, views


def extension_join_count(db, sql):
    return sum(
        1 for n in db.plan_for(sql).walk()
        if isinstance(n, Join) and "bid_u" in str(n.condition)
    )


class TestPopulation:
    def test_count_and_determinism(self, population):
        _, views = population
        assert len(views) == 8
        db2 = Database(wal_enabled=False)
        views2 = SyntheticVdm(db2, seed=13).build_views(
            count=8, min_rows=60, max_rows=600
        )
        assert [v.rows for v in views] == [v.rows for v in views2]
        assert [v.canonical for v in views] == [v.canonical for v in views2]

    def test_row_counts_log_spaced(self, population):
        _, views = population
        rows = [v.rows for v in views]
        assert abs(rows[0] - 60) <= 1 and abs(rows[-1] - 600) <= 1
        assert rows == sorted(rows)

    def test_canonical_mix_present(self, population):
        _, views = population
        kinds = {v.canonical for v in views}
        assert kinds == {True, False}

    def test_views_queryable(self, population):
        db, views = population
        for view in views[:3]:
            result = db.query(f"select * from {view.name} limit 5")
            assert len(result.rows) == 5

    def test_case_join_extension_always_optimized(self, population):
        db, views = population
        for view in views:
            assert extension_join_count(db, f"select * from {view.extended_case} limit 10") == 0

    def test_plain_extension_optimized_iff_canonical(self, population):
        db, views = population
        for view in views:
            joins = extension_join_count(db, f"select * from {view.extended_plain} limit 10")
            assert joins == (0 if view.canonical else 1), view.name

    def test_extension_results_correct(self, population):
        db, views = population
        for view in views[:2] + views[-2:]:
            for name in (view.extended_plain, view.extended_case):
                a = db.query(f"select * from {name}")
                b = db.query(f"select * from {name}", optimize=False)
                assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows)), name

    def test_draft_rows_visible_in_view(self, population):
        db, views = population
        view = views[0]
        active = db.query(f"select count(*) from {view.fact_table}").scalar()
        drafts = db.query(f"select count(*) from {view.draft_table}").scalar()
        total = db.query(f"select count(*) from {view.name}").scalar()
        assert total == active + drafts


class TestWideView:
    def test_wide_view_prunes_unused_joins(self):
        db = Database(wal_enabled=False)
        build_wide_view(db, "wide", join_count=12, fact_rows=100)
        unoptimized = db.plan_for("select fkey from wide", optimize=False)
        optimized = db.plan_for("select fkey from wide")
        assert sum(1 for n in unoptimized.walk() if isinstance(n, Join)) == 12
        assert sum(1 for n in optimized.walk() if isinstance(n, Join)) == 0

    def test_wide_view_zero_joins(self):
        db = Database(wal_enabled=False)
        build_wide_view(db, "flat", join_count=0, fact_rows=10)
        assert db.query("select count(*) from flat").scalar() == 10

    def test_wide_view_used_field_keeps_one_join(self):
        db = Database(wal_enabled=False)
        build_wide_view(db, "wide2", join_count=5, fact_rows=50)
        plan = db.plan_for("select fkey, dval3 from wide2")
        assert sum(1 for n in plan.walk() if isinstance(n, Join)) == 1

"""Cached views: SCV and DCV (paper §3).

The paper notes that VDM views *can* be materialized for performance: SAP
HANA offers static cached views (periodically refreshed, delayed snapshot)
and dynamic cached views (incrementally maintained, up-to-date snapshot).
This example shows both over a revenue-by-region rollup, including the
freshness difference after new transactions arrive.

Run:  python examples/cached_analytics.py
"""

import time

from repro import Database
from repro.cache import CachedViewManager


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"{label:<46}{(time.perf_counter() - start) * 1000:9.2f} ms")
    return result


def main() -> None:
    db = Database(wal_enabled=False)
    db.execute(
        "create table salesfact (sid int primary key, region int not null, "
        "amount decimal(12,2))"
    )
    db.bulk_load(
        "salesfact", [(i, i % 12, f"{i % 9973}.50") for i in range(60000)]
    )
    rollup = (
        "select region, count(*) as n, sum(amount) as revenue "
        "from salesfact group by region"
    )

    manager = CachedViewManager(db)
    manager.create_static("scv_revenue", rollup)
    manager.create_dynamic("dcv_revenue", rollup)

    print("60k-row fact table, 12-region revenue rollup:\n")
    timed("on-the-fly aggregation", lambda: db.query(rollup))
    timed("static cached view (SCV) read",
          lambda: db.query("select * from scv_revenue"))
    timed("dynamic cached view (DCV) fresh read",
          lambda: manager.query_fresh("dcv_revenue"))

    # New transactions arrive...
    db.execute("insert into salesfact values (900001, 3, 1000.00)")
    db.execute("insert into salesfact values (900002, 3, 2000.00)")
    print("\nafter 2 new transactions in region 3:")

    scv_n = db.query("select n from scv_revenue where region = 3").scalar()
    dcv_n = manager.query_fresh(
        "dcv_revenue", "select n from dcv_revenue where region = 3"
    ).scalar()
    live_n = db.query(
        "select count(*) from salesfact where region = 3"
    ).scalar()
    print(f"  live count        : {live_n}")
    print(f"  SCV (delayed)     : {scv_n}   stale: {manager.is_stale('scv_revenue')}")
    print(f"  DCV (up-to-date)  : {dcv_n}")

    timed("\nSCV refresh (full rebuild)",
          lambda: manager.refresh("scv_revenue"))
    print("  SCV now:", db.query("select n from scv_revenue where region = 3").scalar())

    # DCV maintenance is proportional to the delta, not the table.
    db.execute("insert into salesfact values (900003, 7, 1.00)")
    timed("DCV incremental maintenance (1 new row)",
          lambda: manager.apply_increments("dcv_revenue"))


if __name__ == "__main__":
    main()

"""Sales analytics over a CDS-modeled VDM (paper §2.3, §7.1, §7.2).

Builds entities with associations, compiles them into VDM views (every
association path becomes a declared augmentation join), and runs the
paper's §7 analytical patterns:

- aggregation pushdown across decimal rounding with ALLOW_PRECISION_LOSS;
- a reusable, non-additive `margin` expression macro.

Run:  python examples/sales_analytics.py
"""

from repro import Database
from repro.datatypes import INTEGER, decimal_type, varchar
from repro.vdm.cds import Association, Element, Entity, PathField
from repro.vdm.compiler import compile_entity_view, deploy_entity
from repro.workloads import create_sales_schema, load_sales


def main() -> None:
    db = Database(wal_enabled=False)

    # -- CDS-modeled master data -------------------------------------------
    product = Entity(
        "product",
        [
            Element("pid", INTEGER, key=True),
            Element("pname", varchar(30)),
            Element("pcost", decimal_type(15, 2)),
        ],
    )
    store = Entity(
        "store",
        [
            Element("sid", INTEGER, key=True),
            Element("sname", varchar(30)),
            Element("region", varchar(10)),
        ],
    )
    sale = Entity(
        "sale",
        [
            Element("txid", INTEGER, key=True),
            Element("pid", INTEGER, not_null=True),
            Element("sid", INTEGER, not_null=True),
            Element("price", decimal_type(15, 2)),
            Element("qty", INTEGER),
        ],
        [
            Association("product", "product", (("pid", "pid"),)),
            Association("store", "store", (("sid", "sid"),)),
        ],
    )
    entities = {e.name: e for e in (product, store, sale)}
    for entity in entities.values():
        deploy_entity(db, entity)

    import random
    rng = random.Random(2025)
    db.bulk_load("product", [(i, f"Product {i}", f"{rng.randint(100, 5000)}.00")
                             for i in range(40)])
    db.bulk_load("store", [(i, f"Store {i}", f"R{i % 4}") for i in range(10)])
    db.bulk_load(
        "sale",
        [
            (i, rng.randrange(40), rng.randrange(10),
             f"{rng.randint(200, 9000)}.{rng.randint(0, 99):02d}", rng.randint(1, 9))
            for i in range(3000)
        ],
    )

    # -- a basic VDM view: association paths become augmentation joins -------
    view_sql = compile_entity_view(
        "v_sale",
        sale,
        [
            "txid", "price", "qty",
            PathField("product.pname", "productname"),
            PathField("product.pcost", "productcost"),
            PathField("store.region", "region"),
        ],
        entities,
    )
    db.execute(view_sql)
    print("compiled VDM view:\n" + view_sql + "\n")

    # -- revenue per region (only the store join survives optimization) -------
    print(db.explain("select region, sum(price * qty) as revenue from v_sale group by region"))
    for region, revenue in sorted(
        db.query("select region, sum(price * qty) as revenue from v_sale group by region").rows
    ):
        print(f"  {region}: {revenue}")

    # -- §7.1: taxed revenue, rounding per line item vs. once at the end ------
    strict = db.query("select sum(round(price * 1.19, 2)) from v_sale").scalar()
    fast = db.query(
        "select allow_precision_loss(sum(round(price * 1.19, 2))) from v_sale"
    ).scalar()
    print(f"\ntaxed revenue, exact per-line rounding : {strict}")
    print(f"taxed revenue, allow_precision_loss    : {fast}")
    print(f"accepted discrepancy                   : {abs(strict - fast)}")

    # -- §7.2: a reusable margin macro (non-additive over aggregates) ---------
    db.execute(
        "create view v_sale_margin as "
        "select s.txid, s.price, s.qty, s.pid, p.pcost "
        "from sale s left outer many to one join product p on s.pid = p.pid "
        "with expression macros "
        "(1 - sum(pcost * qty) / sum(price * qty) as margin)"
    )
    print("\nper-product margin via EXPRESSION_MACRO(margin):")
    rows = db.query(
        "select pid, expression_macro(margin) as margin from v_sale_margin "
        "group by pid order by margin desc limit 5"
    ).rows
    for pid, margin in rows:
        print(f"  product {pid}: {margin:.4f}" if margin is not None else pid)

    # the same macro at a different aggregation level (global)
    overall = db.query(
        "select expression_macro(margin) as margin from v_sale_margin"
    ).scalar()
    print(f"overall margin: {overall:.4f}")

    # -- the §7 workload module also ships a ready-made schema ----------------
    create_sales_schema(db)
    load_sales(db, orders=200)
    print(
        "\nsalesorderitem rows:",
        db.query("select count(*) from salesorderitem").scalar(),
    )


if __name__ == "__main__":
    main()

"""HTAP mechanics: MVCC snapshots, delta merge, WAL recovery (paper §2.2).

Shows the storage-engine behaviours the paper attributes to SAP HANA:
analytical snapshots that ignore concurrent writers, the write-optimized
delta merging into the dictionary-encoded main, and ARIES-style recovery of
committed work only.

Run:  python examples/htap_transactions.py
"""

from repro import Database
from repro.catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from repro.datatypes import INTEGER, decimal_type
from repro.storage import ColumnTable, TransactionManager


def main() -> None:
    db = Database()  # WAL on by default
    db.execute(
        "create table ledger (entry int primary key, account int not null, "
        "amount decimal(15,2))"
    )
    for i in range(1000):
        db.execute(f"insert into ledger values ({i}, {i % 10}, {i}.25)")

    # -- snapshot isolation ---------------------------------------------------
    analyst = db.begin()  # long-running analytical snapshot
    before = db.query("select sum(amount) from ledger", txn=analyst).scalar()

    writer = db.begin()
    db.execute("insert into ledger values (5000, 1, 999.99)", txn=writer)
    db.execute("update ledger set amount = amount + 1 where account = 2", txn=writer)
    db.commit(writer)

    during = db.query("select sum(amount) from ledger", txn=analyst).scalar()
    after = db.query("select sum(amount) from ledger").scalar()
    print(f"analyst's frozen snapshot : {before} (still {during} after commits)")
    print(f"fresh snapshot            : {after}")
    assert before == during != after
    db.commit(analyst)

    # -- delta merge -------------------------------------------------------------
    table = db.catalog.table("ledger")
    print(f"\ndelta rows before merge   : {table.delta_size}")
    table.merge_delta()
    print(f"delta rows after merge    : {table.delta_size}")
    fragments = table.column("account")
    print(
        f"dictionary-encoded main   : {len(fragments.main)} rows, "
        f"{fragments.main.distinct_count()} distinct values, "
        f"{fragments.main.memory_codes_bytes()} code bytes"
    )
    assert db.query("select sum(amount) from ledger").scalar() == after

    # -- rollback --------------------------------------------------------------
    doomed = db.begin()
    db.execute("delete from ledger where account = 3", txn=doomed)
    db.rollback(doomed)
    assert db.query("select count(*) from ledger").scalar() == 1001
    print("\nrollback undone cleanly, row count:", 1001)

    # -- WAL recovery -------------------------------------------------------------
    in_flight = db.begin()
    db.execute("insert into ledger values (6000, 9, 1.00)", txn=in_flight)
    # "crash" now: in_flight never commits.  Recover into a fresh engine.
    recovered = Database(wal_enabled=False)
    recovered.execute(
        "create table ledger (entry int primary key, account int not null, "
        "amount decimal(15,2))"
    )
    replayed = db.wal.recover(recovered.catalog, recovered.txn_manager)
    rows = recovered.query("select count(*), sum(amount) from ledger").rows[0]
    print(f"\nrecovered {replayed.get('ledger', 0)} committed changes")
    print(f"recovered state           : count={rows[0]}, sum={rows[1]}")
    assert rows[0] == 1001  # the in-flight insert is gone
    original = db.query("select sum(amount) from ledger").scalar()
    assert rows[1] == original
    print("recovery matches the pre-crash committed state.")

    # -- vacuum -------------------------------------------------------------------
    db.execute("delete from ledger where account = 5")
    reclaimed = table.vacuum()
    print(f"\nvacuum reclaimed {reclaimed} dead row versions")


if __name__ == "__main__":
    main()

"""The JournalEntryItemBrowser walkthrough (paper §3, Figs. 3-4).

Builds the ACDOCA-centric VDM stack whose unoptimized plan has exactly the
paper's Fig. 3 statistics (47 shared / 62 unshared table instances, 49
joins, a five-way Union All, a GROUP BY, a DISTINCT, DAC filters), then
shows how `select count(*)` collapses to the Fig. 4 plan: the fact table
plus only the two DAC-protected joins.

Run:  python examples/journal_browser.py
"""

import time

from repro import Database
from repro.vdm.journal import FIG3_EXPECTED, JournalModel


def main() -> None:
    print("building the journal model (tables, data, 24-view VDM stack)...")
    db = Database(wal_enabled=False)
    model = JournalModel(db, rows=2000).build()

    query = "select * from journalentryitembrowser"
    stats = db.plan_statistics(query, optimize=False)
    print("\nFig. 3 — the unoptimized plan of", repr(query))
    print("  ", stats.summary())
    print("   paper:", FIG3_EXPECTED)
    print("   VDM nesting depth:", model.vdm.nesting_depth(model.consumption_view))

    count_query = "select count(*) from journalentryitembrowser"
    print("\nFig. 4 — the optimized plan of", repr(count_query))
    print(db.explain(count_query))
    print(
        "  the LFA1/KNA1 (supplier/customer) joins survive because the DAC\n"
        "  filters reference their columns; everything else is pruned."
    )

    t0 = time.perf_counter()
    optimized = db.query(count_query).scalar()
    t1 = time.perf_counter()
    unoptimized = db.query(count_query, optimize=False).scalar()
    t2 = time.perf_counter()
    print(f"\ncount(*): {optimized} (optimized {1000*(t1-t0):.0f} ms, "
          f"unoptimized {unoptimized} in {1000*(t2-t1):.0f} ms, "
          f"speedup {(t2-t1)/(t1-t0):.1f}x)")

    print("\na typical narrow analytical query over the same browser view:")
    narrow = (
        "select company_name, sum(amount) as total "
        "from journalentryitembrowser group by company_name order by total desc"
    )
    print(db.explain(narrow))
    for row in db.query(narrow):
        print(" ", row)

    print("\npaging (UI scenario, §4.4):")
    t0 = time.perf_counter()
    page = db.query("select * from journalentryitembrowser limit 5")
    t1 = time.perf_counter()
    print(f"  first page of {len(page.column_names)} fields in {1000*(t1-t0):.0f} ms")

    print("\nper-user DAC (the same consumption view, different user):")
    other_user = model.access_control.protected_sql(
        model.consumption_view,
        {"suppliergroup": "G2", "customergroup": "G0"},
        select="count(*)",
    )
    print("  ", other_user)
    print("   rows visible:", db.query(other_user).scalar())


if __name__ == "__main__":
    main()

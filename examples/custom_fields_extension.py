"""Upgrade-safe custom fields (paper §5 and §6.3, Figs. 7-9, 13).

The full extension story:

1. a customer adds a field ``zz_priority`` to an SAP-managed table;
2. the stable consumption view cannot be cascade-redefined, so the field is
   exposed through an augmentation self-join (Fig. 8b);
3. when the table participates in the draft pattern, the logical table is a
   Union All and the extension needs the CASE JOIN's declared intent for
   reliable optimization (Fig. 13b).

The example prints the plans so you can watch the self-joins disappear.

Run:  python examples/custom_fields_extension.py
"""

from repro import Database
from repro.algebra.ops import Join, Scan
from repro.datatypes import varchar
from repro.vdm import CustomFieldsExtension, DraftPattern


def plan_shape(db, sql):
    plan = db.plan_for(sql)
    scans = [n.schema.name for n in plan.walk() if isinstance(n, Scan)]
    joins = sum(1 for n in plan.walk() if isinstance(n, Join))
    return f"{joins} join(s), scans: {sorted(scans)}"


def main() -> None:
    db = Database()
    db.execute(
        "create table workorder ("
        " wo_id int primary key, wo_text varchar(40), wo_status varchar(1) not null)"
    )
    for i in range(12):
        db.execute(f"insert into workorder values ({i}, 'Order {i}', '{'NC'[i % 2]}')")

    # The SAP-managed ("stable") consumption view. Interim views in between
    # would make cascade redefinition unsafe; we must not touch them.
    db.execute(
        "create view workorderlist as select wo_id, wo_text from workorder "
        "where wo_status <> 'X'"
    )

    extension = CustomFieldsExtension(db)

    # Step 1: the physical custom field.
    extension.add_custom_field("workorder", "zz_priority", varchar(8))
    db.execute("update workorder set zz_priority = 'HIGH' where wo_id < 4")

    # Step 2: expose it via an augmentation self-join (Fig. 8b) — BUT the
    # stable view filters on wo_status, so the augmenter must repeat the
    # filter or the optimizer rightly refuses to remove the join (Fig. 10c).
    db.execute(
        "create view workorderlist_ext as "
        "select v.*, x.zz_priority from workorderlist v "
        "left outer join (select wo_id, zz_priority from workorder "
        "                 where wo_status <> 'X') x on v.wo_id = x.wo_id"
    )
    print("extended view plan:", plan_shape(db, "select * from workorderlist_ext"))
    print("  (one scan: the augmentation self-join was rewired away)")
    for row in db.query("select * from workorderlist_ext order by wo_id limit 4"):
        print(" ", row)

    # Step 3: the draft pattern (§6.1).  The logical work order is now
    # active ∪ draft, and extensions must self-join with that union.
    # (The draft twin inherits the custom field: it was created after step 1.)
    draft = DraftPattern.create(db, "workorder")
    draft.save_draft(
        {"wo_id": 100, "wo_text": "draft order", "wo_status": "N", "zz_priority": "LOW"},
        session="alice",
    )

    plain_sql = extension.extend_draft_view(
        "wd_ext_plain", "workorder_with_draft", draft,
        [("wo_id", "wo_id")], ["zz_priority"],
        use_case_join=False, branch_filter="wo_status <> 'X'",
    )
    case_sql = extension.extend_draft_view(
        "wd_ext_case", "workorder_with_draft", draft,
        [("wo_id", "wo_id")], ["zz_priority"],
        use_case_join=True, branch_filter="wo_status <> 'X'",
    )
    # NOTE: workorder_with_draft has unfiltered branches; the extension's
    # branch filter is NOT subsumed -> even the case join must keep the
    # join (correctness first).  Rebuild with matching branches:
    db.execute(
        "create view workorder_logical as "
        "select 1 as bid_, wo_id, wo_text, wo_status from workorder where wo_status <> 'X' "
        "union all "
        "select 2 as bid_, wo_id, wo_text, wo_status from workorder_draft where wo_status <> 'X'"
    )
    extension.extend_draft_view(
        "logical_ext_plain", "workorder_logical", draft,
        [("wo_id", "wo_id")], ["zz_priority"],
        use_case_join=False, branch_filter="wo_status <> 'X'",
    )
    extension.extend_draft_view(
        "logical_ext_case", "workorder_logical", draft,
        [("wo_id", "wo_id")], ["zz_priority"],
        use_case_join=True, branch_filter="wo_status <> 'X'",
    )

    print("\nFig. 13b — the same extension, two join flavours:")
    print("  plain LEFT OUTER JOIN :", plan_shape(db, "select * from logical_ext_plain limit 10"))
    print("  CASE JOIN             :", plan_shape(db, "select * from logical_ext_case  limit 10"))
    print("  (the structural heuristic gives up on the filtered branches;")
    print("   the declared intent lets the optimizer verify subsumption)")

    print("\nrows through the case-join extension (incl. the draft):")
    for row in db.query(
        "select bid_, wo_id, wo_text, zz_priority from logical_ext_case "
        "order by wo_id limit 6"
    ):
        print(" ", row)
    print("  draft row:")
    for row in db.query(
        "select bid_, wo_id, wo_text, zz_priority from logical_ext_case where bid_ = 2"
    ):
        print(" ", row)


if __name__ == "__main__":
    main()

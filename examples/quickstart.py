"""Quickstart: an embedded HTAP database with the paper's optimizer.

Creates a tiny order-management schema, runs transactional and analytical
statements on the SAME tables (the HTAP promise), and shows the paper's
headline optimization — unused augmentation joins disappearing from plans.

Run:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # -- schema & data (transactional side) --------------------------------
    db.execute(
        "create table customer ("
        " c_id int primary key, c_name varchar(40), c_country varchar(3))"
    )
    db.execute(
        "create table orders ("
        " o_id int primary key, o_cust int not null, o_total decimal(15,2),"
        " o_status varchar(1) not null)"
    )
    for i in range(8):
        db.execute(f"insert into customer values ({i}, 'Customer {i}', 'DE')")
    for i in range(40):
        db.execute(
            f"insert into orders values ({i}, {i % 8}, {i * 7}.25, '{'NP'[i % 2]}')"
        )

    # A business-oriented view in the VDM spirit: orders augmented with the
    # customer via a declared many-to-one join (§7.3).
    db.execute(
        "create view orderview as "
        "select o.o_id, o.o_total, o.o_status, c.c_name, c.c_country "
        "from orders o left outer many to one join customer c on o.o_cust = c.c_id"
    )

    # -- transactional update and analytical read, one engine ---------------
    txn = db.begin()
    db.execute("update orders set o_status = 'P' where o_id = 0", txn=txn)
    db.commit(txn)

    revenue = db.query("select sum(o_total) from orderview").scalar()
    print(f"total revenue: {revenue}")

    # -- the paper's point: unused joins are optimized away -----------------
    narrow = "select o_id, o_total from orderview"
    print("\nunoptimized plan (view fully unfolded):")
    print(db.explain(narrow, optimize=False))
    print("\noptimized plan (the customer join is an unused augmentation join):")
    print(db.explain(narrow))

    wide = "select o_id, c_name from orderview"
    print("\nwhen the customer's field IS used, the join stays:")
    print(db.explain(wide))

    # -- paging with limit pushdown (§4.4) -----------------------------------
    page = "select * from orderview limit 5 offset 10"
    print("\npaging plan — the LIMIT moved below the augmentation join:")
    print(db.explain(page))
    for row in db.query(page):
        print(" ", row)


if __name__ == "__main__":
    main()

"""Typed column vectors: the engine's batch data currency.

A column inside a :class:`repro.engine.chunk.Chunk` is one of:

``list``          object fallback — mixed-type columns, DML staging, and
                  every value that came out of the delta fragment;
``DictVector``    dictionary-coded values: a *shared* (never copied)
                  dictionary reference plus an ``array('q')`` code vector,
                  NULL = code ``-1`` — what :class:`MainFragment` scans
                  emit without decoding;
``IntVector``     ``array('q')`` integers with an optional null-position
                  set (``-1`` is a legal value, so validity is explicit);
``FloatVector``   ``array('d')`` floats, same validity scheme.

All vectors satisfy a small sequence protocol (``len``/``[]``/iteration/
``==`` against plain lists) so row-at-a-time code keeps working unchanged;
the vectorized kernels (:mod:`repro.engine.kernels`) dispatch on the
concrete class to operate on whole code/typed buffers instead.

This module is intentionally dependency-free: both the storage layer
(which produces vectors) and the engine (which consumes them) import it,
and neither may drag the other in.
"""

from __future__ import annotations

import sys
from array import array

_MISSING = object()


def _sort_key(value: object):
    # Mirrors repro.storage.column._sort_key (type-tagged so mixed-type
    # dictionaries stay sortable); duplicated here to keep this module
    # import-free.
    return (type(value).__name__, value)


class DictVector:
    """Dictionary-coded column: shared dictionary ref + ``array('q')`` codes.

    ``dictionary`` is shared by reference with the owning main fragment
    (or with a sibling vector after a dictionary-transform kernel) — the
    vector never copies it, so a thousand batches over one fragment cost
    one dictionary.  Code ``-1`` is NULL.

    ``sorted_dict`` is True when the dictionary is value-sorted over one
    homogeneous type (the merged-fragment invariant), which is what lets
    range predicates compare raw codes against a bisected threshold.
    """

    __slots__ = ("dictionary", "codes", "sorted_dict", "_index")

    def __init__(
        self,
        dictionary: list,
        codes: "array[int]",
        sorted_dict: bool = True,
        index: dict | None = None,
    ):
        self.dictionary = dictionary
        self.codes = codes
        self.sorted_dict = sorted_dict
        # value -> code; built lazily, shared across derived vectors.
        self._index = index

    def index(self) -> dict:
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self.dictionary)}
        return self._index

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, i: int):
        code = self.codes[i]
        return None if code < 0 else self.dictionary[code]

    def __iter__(self):
        dictionary = self.dictionary
        for code in self.codes:
            yield None if code < 0 else dictionary[code]

    def __eq__(self, other) -> bool:
        if isinstance(other, DictVector):
            if self.dictionary is other.dictionary:
                return self.codes == other.codes
            return self.tolist() == other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    __hash__ = None  # mutable container semantics, like list

    def __repr__(self) -> str:
        return f"DictVector({self.tolist()!r})"

    def tolist(self) -> list:
        dictionary = self.dictionary
        return [None if code < 0 else dictionary[code] for code in self.codes]

    def take(self, indices) -> "DictVector":
        codes = self.codes
        return DictVector(
            self.dictionary,
            array("q", (codes[i] for i in indices)),
            self.sorted_dict,
            self._index,
        )

    def slice(self, start: int, stop: int) -> "DictVector":
        return DictVector(
            self.dictionary, self.codes[start:stop], self.sorted_dict, self._index
        )

    def nbytes(self) -> int:
        """Exact buffer size.  The dictionary is shared with the fragment
        (one copy per table, not per batch) so only a pointer is charged."""
        return sys.getsizeof(self.codes) + 16


class _TypedVector:
    """Shared machinery for null-aware fixed-width vectors."""

    __slots__ = ("data", "nulls")
    typecode = "q"

    def __init__(self, values=(), nulls: "set[int] | None" = None):
        if isinstance(values, array):
            self.data = values
            self.nulls = nulls or None
        else:
            data = array(self.typecode)
            found_nulls: set[int] = set()
            for i, v in enumerate(values):
                if v is None:
                    found_nulls.add(i)
                    data.append(0)
                else:
                    data.append(v)
            self.data = data
            self.nulls = found_nulls or None

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, i: int):
        if self.nulls is not None and (i if i >= 0 else len(self.data) + i) in self.nulls:
            return None
        return self.data[i]

    def __iter__(self):
        nulls = self.nulls
        if nulls is None:
            yield from self.data
        else:
            for i, v in enumerate(self.data):
                yield None if i in nulls else v

    def __eq__(self, other) -> bool:
        if isinstance(other, _TypedVector):
            return self.tolist() == other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.tolist()!r})"

    def tolist(self) -> list:
        nulls = self.nulls
        if nulls is None:
            return list(self.data)
        return [None if i in nulls else v for i, v in enumerate(self.data)]

    def take(self, indices):
        data = self.data
        nulls = self.nulls
        out = array(self.typecode, (data[i] for i in indices))
        if nulls is None:
            return type(self)(out)
        new_nulls = {pos for pos, i in enumerate(indices) if i in nulls}
        return type(self)(out, new_nulls or None)

    def slice(self, start: int, stop: int):
        out = self.data[start:stop]
        nulls = self.nulls
        if nulls is None:
            return type(self)(out)
        new_nulls = {i - start for i in nulls if start <= i < stop}
        return type(self)(out, new_nulls or None)

    def nbytes(self) -> int:
        total = sys.getsizeof(self.data) + 16
        if self.nulls is not None:
            total += 32 * len(self.nulls) + 64
        return total


class IntVector(_TypedVector):
    """Dense 64-bit integer column (``array('q')``) with explicit nulls."""

    __slots__ = ()
    typecode = "q"


class FloatVector(_TypedVector):
    """Dense 64-bit float column (``array('d')``) with explicit nulls."""

    __slots__ = ()
    typecode = "d"


Vector = (DictVector, IntVector, FloatVector)


# ---------------------------------------------------------------------------
# column algebra shared by Chunk and the physical operators
# ---------------------------------------------------------------------------


def decode_column(col) -> list:
    """A plain value list, whatever the column representation."""
    if isinstance(col, list):
        return col
    return col.tolist() if isinstance(col, Vector) else list(col)


def take_column(col, indices):
    """Row selection by position, preserving the column representation."""
    if isinstance(col, list):
        return [col[i] for i in indices]
    return col.take(indices)


def pad_take_column(col, indices):
    """Like :func:`take_column`, but a negative index yields NULL (the
    outer-join null-extension convention).  Dictionary vectors stay coded:
    ``-1`` already *is* their NULL."""
    if isinstance(col, DictVector):
        codes = col.codes
        return DictVector(
            col.dictionary,
            array("q", (codes[j] if j >= 0 else -1 for j in indices)),
            col.sorted_dict,
            col._index,
        )
    return [None if j < 0 else col[j] for j in indices]


def slice_column(col, start: int, stop: int):
    if isinstance(col, list):
        return col[start:stop]
    return col.slice(start, stop)


def concat_columns(columns: list):
    """Concatenate column pieces, keeping the typed form when compatible.

    Dictionary vectors merge code buffers only while every piece shares
    the *same* dictionary object (the per-fragment invariant); any
    mismatch decodes to an object list.
    """
    if len(columns) == 1:
        return columns[0]
    first = columns[0]
    if isinstance(first, DictVector) and all(
        isinstance(c, DictVector) and c.dictionary is first.dictionary
        for c in columns[1:]
    ):
        codes = array("q")
        for c in columns:
            codes.extend(c.codes)
        return DictVector(first.dictionary, codes, first.sorted_dict, first._index)
    if isinstance(first, _TypedVector) and all(
        type(c) is type(first) for c in columns[1:]
    ):
        data = array(first.typecode)
        nulls: set[int] = set()
        offset = 0
        for c in columns:
            data.extend(c.data)
            if c.nulls is not None:
                nulls.update(i + offset for i in c.nulls)
            offset += len(c.data)
        return type(first)(data, nulls or None)
    out: list = []
    for c in columns:
        out.extend(decode_column(c))
    return out


def maybe_typed(values: list):
    """Pack a homogeneous int/float value list (NULLs allowed) into a
    typed vector; anything mixed, Decimal, bool, or out of 64-bit range
    stays an object list."""
    kind = None
    for v in values:
        if v is None:
            continue
        t = type(v)  # exact: bool is an int subclass but must stay object
        if t is int:
            if kind is None:
                kind = int
            elif kind is not int:
                return values
        elif t is float:
            if kind is None:
                kind = float
            elif kind is not float:
                return values
        else:
            return values
    try:
        if kind is int:
            return IntVector(values)
        if kind is float:
            return FloatVector(values)
    except OverflowError:
        pass
    return values


def column_nbytes(col) -> int:
    """Exact size for typed vectors; sampled estimate for object lists.

    Object lists keep the historical first-8-rows sampling (walking whole
    columns would break the O(columns) estimated-bytes contract); typed
    buffers are measured exactly — small dictionary codes no longer get
    billed as full decoded Python objects.
    """
    if isinstance(col, Vector):
        return col.nbytes()
    per_value = 0
    for value in col[:8]:
        if value is not None:
            per_value = sys.getsizeof(value)
            break
    return 56 + (8 + per_value) * len(col)

"""Exception hierarchy shared across the engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch one base class.  The hierarchy mirrors the stages of query
processing: lexing/parsing, binding (name resolution), catalog/DDL,
optimization, execution, and transactions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed SQL.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so error messages can point at the source text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised during AST -> algebra binding: unknown names, ambiguity, arity."""


class CatalogError(ReproError):
    """Raised for DDL problems: duplicate/missing tables, views, or columns."""


class ConstraintError(ReproError):
    """Raised when a data modification violates a declared constraint."""


class OptimizerError(ReproError):
    """Raised when the optimizer produces or detects an inconsistent plan."""


class ExecutionError(ReproError):
    """Raised by the execution engine for runtime failures."""


class TransactionError(ReproError):
    """Raised for illegal transaction state transitions or conflicts."""


class QueryTimeoutError(ExecutionError):
    """Raised when a statement exceeds its cooperative deadline.

    The deadline is checked at operator boundaries, so a running operator
    finishes its current materialization before the query aborts.
    """


class FaultInjectedError(ReproError):
    """Raised by an armed (non-crash) fault point — see :mod:`repro.faults`.

    Carries the fault point name so tests and the chaos harness can tell
    injected failures apart from organic ones.
    """

    def __init__(self, point: str, message: str | None = None):
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


class TypeCheckError(ReproError):
    """Raised when expression operands have incompatible SQL types."""


class MemoryBudgetWarning(RuntimeWarning):
    """A query's estimated operator memory exceeded
    ``Database(memory_budget_bytes=...)``.

    The budget is *soft*: the query keeps running and returns its full
    result.  The overshoot is reported here, counted in the
    ``exec.memory_budget_exceeded`` metric, and surfaced as a degraded
    reason by :meth:`repro.database.Database.health` — the same
    degrade-don't-die contract the optimizer sandbox and WAL recovery use.
    """

"""Exception hierarchy shared across the engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch one base class.  The hierarchy mirrors the stages of query
processing: lexing/parsing, binding (name resolution), catalog/DDL,
optimization, execution, and transactions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed SQL.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so error messages can point at the source text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised during AST -> algebra binding: unknown names, ambiguity, arity."""


class CatalogError(ReproError):
    """Raised for DDL problems: duplicate/missing tables, views, or columns."""


class ConstraintError(ReproError):
    """Raised when a data modification violates a declared constraint."""


class OptimizerError(ReproError):
    """Raised when the optimizer produces or detects an inconsistent plan."""


class ExecutionError(ReproError):
    """Raised by the execution engine for runtime failures."""


class TransactionError(ReproError):
    """Raised for illegal transaction state transitions or conflicts."""


class QueryTimeoutError(ExecutionError):
    """Raised when a statement exceeds its cooperative deadline.

    The deadline is checked at operator boundaries, so a running operator
    finishes its current materialization before the query aborts.
    """


class FaultInjectedError(ReproError):
    """Raised by an armed (non-crash) fault point — see :mod:`repro.faults`.

    Carries the fault point name so tests and the chaos harness can tell
    injected failures apart from organic ones.
    """

    def __init__(self, point: str, message: str | None = None):
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


class TypeCheckError(ReproError):
    """Raised when expression operands have incompatible SQL types."""


class OverloadError(ReproError):
    """Raised when the serving layer sheds load instead of queuing unboundedly.

    Overload is a *designed* state: the admission controller rejects work
    the moment its bounded queue is full (or the server is draining) rather
    than letting latency collapse for everyone.  ``retry_after`` is a hint,
    in seconds, for when the client should try again — the HTTP gateway
    maps it onto a ``Retry-After`` header with a 429 status.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class RateLimitedError(OverloadError):
    """Raised when a tenant's token bucket is empty.

    A subclass of :class:`OverloadError` so callers can treat both kinds of
    shed uniformly; ``retry_after`` is the time until the next token.
    """


class CircuitOpenError(ReproError):
    """Raised when a tenant's circuit breaker is open (or a half-open probe
    is already in flight).

    Carries the tenant name and a ``retry_after`` hint (seconds until the
    breaker next allows a probe).  Maps to HTTP 503.
    """

    def __init__(self, tenant: str, retry_after: float | None = None,
                 message: str | None = None):
        super().__init__(
            message or f"circuit breaker open for tenant {tenant!r}"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class TenantAccessError(ReproError):
    """Raised when a statement references a table owned by another tenant.

    Namespace scoping is a serving-layer concern (accident prevention, not
    a security boundary): tables created through a tenant's session belong
    to that tenant; ``sys.*`` and tables created outside any session are
    shared.  Maps to HTTP 403.
    """


class MemoryBudgetWarning(RuntimeWarning):
    """A query's estimated operator memory exceeded
    ``Database(memory_budget_bytes=...)``.

    The budget is *soft*: the query keeps running and returns its full
    result.  The overshoot is reported here, counted in the
    ``exec.memory_budget_exceeded`` metric, and surfaced as a degraded
    reason by :meth:`repro.database.Database.health` — the same
    degrade-don't-die contract the optimizer sandbox and WAL recovery use.
    """

"""Fault injection across the query lifecycle.

The engine threads named *fault points* through its failure-relevant code
paths; a :class:`FaultInjector` armed at one of those points turns the
next matching call into an injected failure.  Three trigger shapes are
supported (combinable):

- **always / nth-call** — fire on every call, or only on the ``nth``
  matching call (1-based), optionally at most ``times`` times;
- **probabilistic** — fire with probability ``p`` using a seeded,
  rule-local RNG so chaos runs are reproducible;
- **crash simulation** — instead of raising an ordinary
  :class:`~repro.errors.FaultInjectedError`, raise :class:`SimulatedCrash`
  (a ``BaseException``), which deliberately skips ``except Exception``
  cleanup handlers the way a real process kill would.  The in-memory
  database is then abandoned and :meth:`repro.database.Database.recover`
  rebuilds state from the durable WAL.

Fault-point catalog (see DESIGN.md §9 for the full semantics):

========================  ====================================================
point                     fired
========================  ====================================================
``wal.append``            before a WAL record reaches the disk buffer
``wal.fsync``             after the buffered write, before ``os.fsync``
``wal.checkpoint``        at the start of a checkpoint
``wal.replay``            before each replayed transaction during recovery
``storage.insert``        before a row append in :class:`ColumnTable`
``storage.delete``        before a row delete in :class:`ColumnTable`
``cache.refresh``         at the start of a cached-view refresh
``executor.operator``     before each operator materialization
``optimizer.rule``        inside each sandboxed rule pass (ctx: ``rule``)
========================  ====================================================

Every injection increments the ``faults.injected`` counter when the
injector was built with a metrics registry.  Arming any point flips
:meth:`repro.database.Database.health` (and the ``/healthz`` endpoint)
to ``degraded``.

Example::

    db = Database(wal_dir="/tmp/wal")
    db.faults.arm("wal.append", crash=True, nth=3)
    try:
        db.execute("insert into t values (1)")
    except SimulatedCrash:
        db = Database.recover("/tmp/wal")   # committed rows survive
"""

from .injector import (  # noqa: F401
    FAULT_POINTS,
    FaultInjector,
    FaultRule,
    SimulatedCrash,
)
from .chaos import (  # noqa: F401
    ChaosReport,
    ConcurrencyChaosReport,
    run_chaos,
    run_concurrency_chaos,
)

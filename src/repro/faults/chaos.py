"""Kill-and-recover chaos harness for the durable WAL.

Drives a :class:`~repro.database.Database` through randomized DML and
checkpoints while repeatedly crash-simulating it at armed fault points,
recovering with :meth:`Database.recover` after every crash, and checking
the recovered state against a shadow model of committed rows.
:func:`run_concurrency_chaos` runs the same kill-and-recover discipline
with N writer and M analytical reader threads hammering one database
through the serving layer.

The invariant checked is **committed-data equivalence with commit
ambiguity**: after recovery the table must equal either

- the shadow state (the crashed transaction was lost whole), or
- the shadow state with the crashed transaction fully applied (the crash
  hit *after* its commit record reached the log — e.g. during the commit
  fsync).

Anything in between — a half-applied transaction — is a bug and raises
``AssertionError``.  The harness also tears segment tails with garbage
bytes (exercising CRC truncation) and probes crashes in the middle of
recovery itself (arming ``wal.replay`` on a throwaway attach).

Driven by ``repro chaos`` and the CI ``chaos-smoke`` job; deterministic
for a fixed ``seed``.
"""

from __future__ import annotations

import os
import random
import threading
import warnings
from dataclasses import dataclass, field

from .injector import SimulatedCrash

#: Crash points exercised while a transaction is running.  ``wal.fsync``
#: only fires when the fsync policy actually syncs; ``wal.checkpoint``
#: is exercised by checkpoint operations instead.
DML_CRASH_POINTS = (
    "wal.append",
    "wal.fsync",
    "storage.insert",
    "storage.delete",
)


@dataclass
class ChaosReport:
    """What one :func:`run_chaos` campaign did and survived."""

    seed: int
    ops: int = 0
    commits: int = 0
    crashes: int = 0
    recoveries: int = 0
    checkpoints: int = 0
    torn_tails: int = 0
    replay_crashes: int = 0
    ambiguous_commits: int = 0
    final_rows: int = 0
    crash_points: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        points = ", ".join(
            f"{point}={count}"
            for point, count in sorted(self.crash_points.items())
        ) or "none"
        return (
            f"chaos seed={self.seed}: {self.ops} ops, {self.commits} commits, "
            f"{self.crashes} crashes ({points}), {self.recoveries} recoveries, "
            f"{self.checkpoints} checkpoints, {self.torn_tails} torn tails, "
            f"{self.replay_crashes} mid-replay crashes, "
            f"{self.ambiguous_commits} ambiguous commits, "
            f"{self.final_rows} rows survive"
        )


def _snapshot(db) -> dict[int, int]:
    return {row[0]: row[1] for row in db.query("select id, v from chaos").rows}


def _tear_tail(wal_dir: str, rng: random.Random) -> bool:
    """Append garbage to the newest segment, as a torn OS write would."""
    names = sorted(
        n for n in os.listdir(wal_dir)
        if n.startswith("wal-") and n.endswith(".seg")
    )
    if not names:
        return False
    with open(os.path.join(wal_dir, names[-1]), "ab") as handle:
        handle.write(rng.randbytes(rng.randint(4, 48)))
    return True


def _probe_replay_crash(wal_dir: str, profile: str, fsync: str) -> int:
    """Crash a throwaway recovery mid-replay; the directory must survive.

    Returns 1 if the ``wal.replay`` point actually fired (it cannot when
    no committed transactions follow the checkpoint).
    """
    from ..database import Database

    probe = Database(profile=profile, wal_dir=wal_dir, fsync=fsync)
    probe.faults.arm("wal.replay", crash=True, times=1)
    fired = 0
    try:
        probe._replay_from_disk()
    except SimulatedCrash:
        fired = 1
    finally:
        probe.close()
    return fired


def run_chaos(
    wal_dir: str,
    *,
    seed: int = 0,
    ops: int = 60,
    fsync: str = "commit",
    profile: str = "hana",
    crash_probability: float = 0.3,
    batch_size: int | None = None,
    log=None,
) -> ChaosReport:
    """Run one randomized kill-and-recover campaign in ``wal_dir``.

    ``wal_dir`` should be empty (the campaign creates its own table).
    Raises ``AssertionError`` on any committed-data divergence.
    ``batch_size`` pins the streaming executor's batch size for every
    database the campaign opens, so the verification queries cross batch
    boundaries the same way the production engine would.
    """
    from ..database import Database  # local: repro.database imports repro.faults

    rng = random.Random(seed)
    report = ChaosReport(seed=seed)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    db_kwargs: dict = {"profile": profile, "wal_dir": wal_dir, "fsync": fsync}
    if batch_size is not None:
        db_kwargs["batch_size"] = batch_size
    db = Database(**db_kwargs)
    db.execute("create table chaos (id int primary key, v int)")
    shadow: dict[int, int] = {}
    next_id = 1

    def verify(recovered, attempt: dict[int, int] | None) -> None:
        nonlocal shadow
        got = _snapshot(recovered)
        if got == shadow:
            return
        if attempt is not None and got == attempt:
            # The crash hit after the commit record reached the log: the
            # transaction is durably committed.  Either outcome is legal;
            # half-applied is not.
            report.ambiguous_commits += 1
            shadow = attempt
            return
        missing = sorted(set(shadow) - set(got))
        extra = sorted(set(got) - set(shadow))
        raise AssertionError(
            f"chaos seed={seed} op={report.ops}: recovered state diverges "
            f"from committed shadow (missing ids {missing[:10]}, "
            f"unexpected ids {extra[:10]})"
        )

    def recover_after_crash(attempt: dict[int, int] | None) -> None:
        nonlocal db
        db.faults.disarm()
        db.close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if rng.random() < 0.3 and _tear_tail(wal_dir, rng):
                report.torn_tails += 1
            if rng.random() < 0.3:
                report.replay_crashes += _probe_replay_crash(
                    wal_dir, profile, fsync
                )
            db = Database.recover(
                wal_dir, profile=profile, fsync=fsync,
                **({} if batch_size is None else {"batch_size": batch_size}),
            )
        report.recoveries += 1
        verify(db, attempt)

    for _ in range(ops):
        report.ops += 1
        roll = rng.random()
        if roll < 0.12:
            # Checkpoint op, sometimes crashed at its fault point.
            crash = rng.random() < crash_probability
            if crash:
                db.faults.arm("wal.checkpoint", crash=True, times=1)
            try:
                db.checkpoint()
                report.checkpoints += 1
                db.faults.disarm()
            except SimulatedCrash:
                report.crashes += 1
                report.crash_points["wal.checkpoint"] = (
                    report.crash_points.get("wal.checkpoint", 0) + 1
                )
                say(f"op {report.ops}: crash at wal.checkpoint")
                recover_after_crash(None)
            continue

        # DML op: a batch insert or a delete, as one transaction.
        attempt = dict(shadow)
        if shadow and roll > 0.75:
            victim = rng.choice(sorted(shadow))
            del attempt[victim]
            sql = f"delete from chaos where id = {victim}"
        else:
            batch = [
                (next_id + i, rng.randrange(1000))
                for i in range(rng.randint(1, 4))
            ]
            next_id += len(batch)
            attempt.update(batch)
            values = ", ".join(f"({rid}, {v})" for rid, v in batch)
            sql = f"insert into chaos values {values}"

        point = None
        if rng.random() < crash_probability:
            candidates = [
                p for p in DML_CRASH_POINTS
                if not (p == "wal.fsync" and fsync == "never")
            ]
            point = rng.choice(candidates)
            db.faults.arm(point, crash=True, times=1)
        txn = db.begin()
        try:
            db.execute(sql, txn)
            db.commit(txn)
        except SimulatedCrash as crash:
            report.crashes += 1
            report.crash_points[crash.point] = (
                report.crash_points.get(crash.point, 0) + 1
            )
            say(f"op {report.ops}: crash at {crash.point}")
            recover_after_crash(attempt)
        else:
            db.faults.disarm()
            shadow = attempt
            report.commits += 1

    # Final kill-and-recover pass: whatever the campaign left behind must
    # come back verbatim.
    db.close()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        db = Database.recover(
            wal_dir, profile=profile, fsync=fsync,
            **({} if batch_size is None else {"batch_size": batch_size}),
        )
    report.recoveries += 1
    verify(db, None)
    report.final_rows = len(shadow)
    db.close()
    say(report.summary())
    return report


@dataclass
class ConcurrencyChaosReport:
    """What one :func:`run_concurrency_chaos` campaign did and survived."""

    seed: int
    rounds: int = 0
    commits: int = 0
    crashes: int = 0
    recoveries: int = 0
    clean_shutdowns: int = 0
    shed: int = 0
    reader_checks: int = 0
    ambiguous_commits: int = 0
    final_rows: int = 0

    def summary(self) -> str:
        return (
            f"concurrency-chaos seed={self.seed}: {self.rounds} rounds, "
            f"{self.commits} commits, {self.crashes} crashes, "
            f"{self.recoveries} recoveries, "
            f"{self.clean_shutdowns} clean shutdowns, {self.shed} shed, "
            f"{self.reader_checks} reader checks, "
            f"{self.ambiguous_commits} ambiguous commits, "
            f"{self.final_rows} rows survive"
        )


#: Readers assert this never returns a row: every visible row satisfies
#: ``v = id*3 + w``, so a torn read (value columns from different writes)
#: is caught by a plain analytical scan.
_MT_INVARIANT_SQL = "select count(*) from chaos_mt where v <> id * 3 + w"


def run_concurrency_chaos(
    wal_dir: str,
    *,
    seed: int = 0,
    rounds: int = 3,
    writers: int = 4,
    readers: int = 2,
    ops_per_writer: int = 8,
    fsync: str = "commit",
    profile: str = "hana",
    max_concurrent: int = 4,
    max_queue: int = 16,
    log=None,
) -> ConcurrencyChaosReport:
    """Kill-and-recover while N writers + M readers run through serving.

    Each round opens (or recovers) a durable database, puts a
    :class:`~repro.serving.session.SessionManager` in front of it, and
    lets ``writers`` threads insert batches (each batch one autocommit
    transaction, every row satisfying ``v = id*3 + w``) while ``readers``
    threads run analytical invariant scans plus ``sys.*`` queries.  Most
    rounds arm one ``wal.append`` crash mid-traffic; every round ends
    with recovery and the committed-data check:

    - every committed batch is present in full after recovery;
    - any extra rows form whole attempt batches (commit ambiguity),
      never fragments;
    - the ``v = id*3 + w`` invariant holds over the recovered table;
    - rounds without a crash must drain to a clean shutdown.

    Raises ``AssertionError`` on any violation; deterministic per seed
    up to thread scheduling (which only affects interleaving, never the
    checked invariants).
    """
    from ..database import Database  # local: repro.database imports repro.faults
    from ..errors import OverloadError, QueryTimeoutError, ReproError
    from ..serving import SessionManager

    rng = random.Random(seed)
    report = ConcurrencyChaosReport(seed=seed)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    state_lock = threading.Lock()
    committed: dict[int, int] = {}   # id -> v, batches recorded post-commit
    attempts: list[dict[int, int]] = []  # in-flight batches (ambiguity pool)
    next_id = 1

    db = Database(profile=profile, wal_dir=wal_dir, fsync=fsync)
    db.execute("create table chaos_mt (id int primary key, w int, v int)")

    for round_no in range(rounds):
        report.rounds += 1
        manager = SessionManager(
            db, max_concurrent=max_concurrent, max_queue=max_queue
        )
        # Arm one crash mid-traffic on most rounds; the last nth values
        # routinely exceed the round's append count, giving crash-free
        # rounds that must instead drain to a clean shutdown.
        arm_crash = rng.random() < 0.8
        if arm_crash:
            db.faults.arm(
                "wal.append", crash=True, times=1,
                nth=rng.randint(1, writers * ops_per_writer),
            )
        stop = threading.Event()
        crashed = threading.Event()
        failures: list[str] = []

        def writer(index: int) -> None:
            nonlocal next_id
            session = manager.session(f"writer{index}")
            for _ in range(ops_per_writer):
                if stop.is_set():
                    break
                with state_lock:
                    batch_ids = list(range(next_id, next_id + rng.randint(1, 3)))
                    next_id = batch_ids[-1] + 1
                    batch = {rid: rid * 3 + index for rid in batch_ids}
                    attempts.append(batch)
                values = ", ".join(
                    f"({rid}, {index}, {v})" for rid, v in batch.items()
                )
                try:
                    session.execute(f"insert into chaos_mt values {values}")
                except SimulatedCrash:
                    crashed.set()
                    stop.set()
                    return  # batch stays in the ambiguity pool
                except (OverloadError, QueryTimeoutError):
                    with state_lock:
                        attempts.remove(batch)
                        report.shed += 1
                    continue
                except ReproError as error:
                    failures.append(f"writer{index}: {error!r}")
                    return
                with state_lock:
                    attempts.remove(batch)
                    committed.update(batch)
                    report.commits += 1

        def reader(index: int) -> None:
            session = manager.session(f"reader{index}")
            while not stop.is_set():
                try:
                    torn = session.query(_MT_INVARIANT_SQL).rows[0][0]
                    if torn:
                        failures.append(
                            f"reader{index}: {torn} torn rows (v <> id*3+w)"
                        )
                        stop.set()
                        return
                    session.query("select count(*) from sys.sessions")
                    session.query("select count(*) from sys.admission")
                    report.reader_checks += 1
                except SimulatedCrash:
                    # Even a read-only snapshot writes a commit record, so
                    # readers can consume the armed wal.append crash.
                    crashed.set()
                    stop.set()
                    return
                except (OverloadError, QueryTimeoutError):
                    continue
                except ReproError as error:
                    failures.append(f"reader{index}: {error!r}")
                    stop.set()
                    return

        threads = [
            threading.Thread(target=writer, args=(i,), name=f"chaos-w{i}")
            for i in range(writers)
        ] + [
            threading.Thread(target=reader, args=(i,), name=f"chaos-r{i}")
            for i in range(readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads[:writers]:
            thread.join(timeout=60)
        stop.set()
        for thread in threads[writers:]:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads), (
            f"concurrency-chaos seed={seed} round={round_no}: hung threads"
        )
        assert not failures, (
            f"concurrency-chaos seed={seed} round={round_no}: {failures}"
        )

        db.faults.disarm()
        if crashed.is_set():
            report.crashes += 1
            say(f"round {round_no}: crash at wal.append")
        else:
            drained = manager.shutdown(drain_timeout=30.0)
            assert drained, (
                f"concurrency-chaos seed={seed} round={round_no}: "
                f"shutdown did not drain"
            )
            report.clean_shutdowns += 1
        db.close()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            db = Database.recover(wal_dir, profile=profile, fsync=fsync)
        report.recoveries += 1

        got = {
            row[0]: row[1]
            for row in db.query("select id, v from chaos_mt").rows
        }
        missing = {rid for rid in committed if got.get(rid) != committed[rid]}
        assert not missing, (
            f"concurrency-chaos seed={seed} round={round_no}: committed "
            f"rows lost/changed after recovery: {sorted(missing)[:10]}"
        )
        extras = set(got) - set(committed)
        for batch in attempts:
            overlap = extras & set(batch)
            assert not overlap or overlap == set(batch), (
                f"concurrency-chaos seed={seed} round={round_no}: "
                f"half-applied batch after recovery: {sorted(batch)}"
            )
            if overlap:
                # Commit ambiguity: the record reached the log before the
                # crash.  Fold the whole batch into the shadow state.
                committed.update(batch)
                extras -= overlap
                report.ambiguous_commits += 1
        assert not extras, (
            f"concurrency-chaos seed={seed} round={round_no}: unexpected "
            f"rows after recovery: {sorted(extras)[:10]}"
        )
        attempts.clear()
        torn = db.query(_MT_INVARIANT_SQL).rows[0][0]
        assert torn == 0, (
            f"concurrency-chaos seed={seed} round={round_no}: {torn} "
            f"recovered rows violate v = id*3 + w"
        )
        say(f"round {round_no}: recovered, {len(committed)} rows committed")

    report.final_rows = len(committed)
    db.close()
    say(report.summary())
    return report

"""The fault injector: named points, arming rules, and firing semantics."""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from ..errors import FaultInjectedError

#: The canonical fault-point names threaded through the engine.  ``arm``
#: accepts unknown names too (subsystems can add points without touching
#: this list), but the CLI and docs enumerate these.
FAULT_POINTS = (
    "wal.append",
    "wal.fsync",
    "wal.checkpoint",
    "wal.replay",
    "storage.insert",
    "storage.delete",
    "cache.refresh",
    "executor.operator",
    "executor.batch",
    "optimizer.rule",
)


class SimulatedCrash(BaseException):
    """A crash-simulation fault fired.

    Derives from ``BaseException`` on purpose: ``except Exception`` /
    ``except ReproError`` cleanup paths (rollback, cache invalidation)
    must *not* run, exactly as they would not after ``kill -9``.  Only
    the test or chaos harness that armed the crash catches this.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


@dataclass
class FaultRule:
    """One armed fault: trigger condition plus injected action."""

    point: str
    crash: bool = False
    error: Exception | None = None     # raised instead of FaultInjectedError
    probability: float = 1.0
    nth: int | None = None             # fire only on the nth matching call
    times: int | None = None           # stop after this many injections
    match: dict | None = None          # ctx filter: all pairs must match
    calls: int = 0                     # matching calls seen so far
    injections: int = 0                # faults actually injected
    _rng: random.Random = field(default_factory=random.Random, repr=False)

    def should_fire(self, ctx: dict) -> bool:
        if self.match and any(ctx.get(k) != v for k, v in self.match.items()):
            return False
        if self.times is not None and self.injections >= self.times:
            return False
        self.calls += 1
        if self.nth is not None and self.calls != self.nth:
            return False
        if self.probability < 1.0 and self._rng.random() >= self.probability:
            return False
        return True


class FaultInjector:
    """Registry of armed fault rules, consulted by `fire()` call sites.

    Thread-safe; the disarmed fast path is a single attribute load plus a
    truthiness check, so leaving injection wired into hot paths costs
    nothing in production.
    """

    def __init__(self, metrics=None):
        self._rules: dict[str, FaultRule] = {}
        self._lock = threading.Lock()
        self._m_injected = (
            None if metrics is None else metrics.counter("faults.injected")
        )
        #: (point, kind) pairs of every injection, newest last.
        self.history: list[tuple[str, str]] = []
        #: point -> [calls, injections] accumulated from disarmed/replaced
        #: rules, so ``sys.fault_points`` survives rule churn.
        self._totals: dict[str, list[int]] = {}

    # -- arming -----------------------------------------------------------

    def arm(
        self,
        point: str,
        *,
        crash: bool = False,
        error: Exception | None = None,
        probability: float = 1.0,
        nth: int | None = None,
        times: int | None = None,
        match: dict | None = None,
        seed: int | None = None,
    ) -> FaultRule:
        """Arm ``point``; the returned rule exposes call/injection counts."""
        rule = FaultRule(
            point=point, crash=crash, error=error, probability=probability,
            nth=nth, times=times, match=match,
        )
        if seed is not None:
            rule._rng.seed(seed)
        with self._lock:
            previous = self._rules.get(point)
            if previous is not None:
                self._fold_totals(previous)
            self._rules[point] = rule
        return rule

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or everything when ``point`` is None."""
        with self._lock:
            if point is None:
                for rule in self._rules.values():
                    self._fold_totals(rule)
                self._rules.clear()
            else:
                rule = self._rules.pop(point, None)
                if rule is not None:
                    self._fold_totals(rule)

    def armed(self) -> list[str]:
        with self._lock:
            return sorted(self._rules)

    def _fold_totals(self, rule: FaultRule) -> None:
        """Accumulate a retired rule's counts (caller holds the lock)."""
        totals = self._totals.setdefault(rule.point, [0, 0])
        totals[0] += rule.calls
        totals[1] += rule.injections

    def point_stats(self) -> list[tuple[str, bool, int, int]]:
        """``(point, armed, calls, injections)`` for ``sys.fault_points``.

        Covers the canonical :data:`FAULT_POINTS` plus any ad-hoc names
        that were ever armed; counts are cumulative across rule churn
        (live rule + folded totals from disarmed/replaced rules).
        """
        with self._lock:
            names = set(FAULT_POINTS) | set(self._rules) | set(self._totals)
            rows = []
            for name in sorted(names):
                calls, injections = self._totals.get(name, (0, 0))
                rule = self._rules.get(name)
                if rule is not None:
                    calls += rule.calls
                    injections += rule.injections
                rows.append((name, rule is not None, calls, injections))
            return rows

    # -- firing -----------------------------------------------------------

    def fire(self, point: str, **ctx) -> None:
        """Consult the rules for ``point``; raise if one fires.

        Call sites hold a reference to the injector (or None) and invoke
        this unconditionally — the empty-registry fast path keeps the
        disarmed cost negligible.
        """
        if not self._rules:
            return
        with self._lock:
            rule = self._rules.get(point)
            if rule is None or not rule.should_fire(ctx):
                return
            rule.injections += 1
            self.history.append((point, "crash" if rule.crash else "error"))
        if self._m_injected is not None:
            self._m_injected.inc()
        if rule.crash:
            raise SimulatedCrash(point)
        if rule.error is not None:
            raise rule.error
        raise FaultInjectedError(point)

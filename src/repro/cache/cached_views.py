"""Static and dynamic cached views (paper §3).

- A **static cached view (SCV)** materializes a view's result into a cache
  table.  It serves a *delayed snapshot*: reads are table scans; freshness
  is whatever the last :meth:`CachedViewManager.refresh` produced.  Staleness
  is detectable via base-table modification counters.

- A **dynamic cached view (DCV)** is an incrementally maintained aggregate
  cache over a single base table (``select keys..., aggs... from t [where p]
  group by keys``).  New base rows merge into the aggregate state in O(new
  rows); deletes force a recompute (the classic incremental-view-maintenance
  trade-off for MIN/MAX without auxiliary structures).  Reads first apply
  pending increments, so a DCV serves the *up-to-date snapshot*.

Both caches are exposed as ordinary tables in the catalog (``<name>``), so
the full SQL surface works on top of them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..algebra.binder import Binder
from ..algebra.ops import Aggregate, Filter, LogicalOp, Project, Scan
from ..catalog.schema import ColumnSchema, TableSchema
from ..database import Database
from ..errors import CatalogError, ExecutionError
from ..sql import ast, parse_statement


@dataclass
class CachedViewInfo:
    """Bookkeeping for one cached view."""

    name: str
    kind: str                      # "static" | "dynamic"
    query_sql: str
    base_tables: tuple[str, ...]
    refreshed_at_version: dict[str, int] = field(default_factory=dict)
    refresh_count: int = 0
    # DCV-only:
    processed_rows: dict[str, int] = field(default_factory=dict)


class CachedViewManager:
    """Creates, refreshes, and maintains cached views for one database."""

    def __init__(self, db: Database):
        self.db = db
        # Serializes view registration and maintenance (refresh, DCV
        # increments, the delete-all + bulk_load rebuild dance): two
        # sessions refreshing or deploying the same view concurrently would
        # otherwise duplicate cache rows or drop each other's temp delta
        # tables.  Reentrant: create_* calls refresh, apply_increments can
        # fall back to refresh.
        self._lock = threading.RLock()
        self._views: dict[str, CachedViewInfo] = {}
        # Self-register so sys.cache_entries can enumerate this manager's
        # views (the facade pre-seeds the attribute with None).
        db.cached_views = self
        # Cache observability: hits = serves straight from the cache table,
        # misses = serves that first had to do maintenance work (stale SCV
        # refresh or pending DCV increments).
        self._m_hits = db.metrics.counter("cache.hits")
        self._m_misses = db.metrics.counter("cache.misses")
        self._m_refreshes = db.metrics.counter("cache.refreshes")
        self._m_increments = db.metrics.counter("cache.incremental_rows")
        # An invalidation = discarding previously materialized contents
        # (a re-refresh of a live SCV/DCV, or a DCV falling back to a full
        # rebuild because deletes made its increments unmergeable).
        self._m_invalidations = db.metrics.counter("cache.invalidations")

    # -- shared helpers ------------------------------------------------------

    def info(self, name: str) -> CachedViewInfo:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no cached view {name!r}") from None

    def infos(self) -> list[CachedViewInfo]:
        """All registered cached views (the ``sys.cache_entries`` feed)."""
        with self._lock:
            return list(self._views.values())

    def _base_tables(self, query_sql: str) -> tuple[str, ...]:
        plan = self._bind(query_sql)
        return tuple(sorted({
            n.schema.name for n in plan.walk() if isinstance(n, Scan)
        }))

    def _bind(self, query_sql: str) -> LogicalOp:
        statement = parse_statement(query_sql)
        if not isinstance(statement, ast.Query):
            raise CatalogError("cached views require a SELECT query")
        return Binder(self.db.catalog).bind_query(statement)

    def _table_version(self, table: str) -> int:
        """A cheap modification counter: total row versions ever created
        plus deletions observed (monotone under any change)."""
        storage = self.db.catalog.table(table)
        deletes = sum(1 for d in storage.deleted_tids if d != 0)
        return len(storage) + deletes

    def _materialize_schema(self, name: str, plan: LogicalOp) -> TableSchema:
        columns = [
            ColumnSchema(col.name, col.data_type, nullable=True)  # type: ignore[arg-type]
            for col in plan.output
        ]
        return TableSchema(name, columns, [])

    def is_stale(self, name: str) -> bool:
        """Has any base table changed since the last refresh?"""
        info = self.info(name)
        return any(
            self._table_version(t) != info.refreshed_at_version.get(t, -1)
            for t in info.base_tables
        )

    def drop(self, name: str) -> None:
        with self._lock:
            info = self.info(name)
            self.db.catalog.drop_table(info.name)
            del self._views[info.name]

    # -- static cached views -----------------------------------------------------

    def create_static(self, name: str, query_sql: str) -> CachedViewInfo:
        """Materialize ``query_sql`` into cache table ``name`` (an SCV)."""
        lowered = name.lower()
        with self._lock:
            if lowered in self._views:
                raise CatalogError(f"cached view {name!r} already exists")
            plan = self._bind(query_sql)
            schema = self._materialize_schema(lowered, plan)
            self.db.create_table_from_schema(schema)
            info = CachedViewInfo(lowered, "static", query_sql,
                                  self._base_tables(query_sql))
            self._views[lowered] = info
            self.refresh(lowered)
            return info

    def refresh(self, name: str) -> int:
        """Re-materialize an SCV (or fully rebuild a DCV); returns rows."""
        with self._lock:
            return self._refresh_locked(name)

    def _refresh_locked(self, name: str) -> int:
        info = self.info(name)
        faults = getattr(self.db, "faults", None)
        if faults is not None:
            faults.fire("cache.refresh", view=info.name)
        if info.refresh_count:
            self._m_invalidations.inc()
        result = self.db.query(info.query_sql)
        storage = self.db.catalog.table(info.name)
        # Rebuild in place: clear + bulk load (outside user transactions, as
        # a maintenance operation).
        txn = self.db.begin()
        try:
            for row_id in storage.visible_row_ids(txn):
                storage.delete_row(txn, row_id)
        finally:
            self.db.commit(txn)
        storage.bulk_load(result.rows, merge=True)
        for table in info.base_tables:
            info.refreshed_at_version[table] = self._table_version(table)
        if info.kind == "dynamic":
            base = info.base_tables[0]
            info.processed_rows[base] = len(self.db.catalog.table(base))
        info.refresh_count += 1
        self._m_refreshes.inc()
        return len(result.rows)

    # -- dynamic cached views ------------------------------------------------------

    _ADDITIVE = {"COUNT", "COUNT_STAR", "SUM", "MIN", "MAX"}

    def create_dynamic(self, name: str, query_sql: str) -> CachedViewInfo:
        """Create an incrementally maintained aggregate cache (a DCV).

        The query must be a single-table GROUP BY with COUNT/SUM/MIN/MAX
        aggregates (AVG can be phrased as SUM/COUNT).  Anything else raises.
        """
        lowered = name.lower()
        with self._lock:
            if lowered in self._views:
                raise CatalogError(f"cached view {name!r} already exists")
            plan = self._bind(query_sql)
            self._validate_dynamic_shape(plan)
            schema = self._materialize_schema(lowered, plan)
            self.db.create_table_from_schema(schema)
            info = CachedViewInfo(lowered, "dynamic", query_sql,
                                  self._base_tables(query_sql))
            self._views[lowered] = info
            self.refresh(lowered)
            return info

    def _validate_dynamic_shape(self, plan: LogicalOp) -> None:
        node = plan
        if isinstance(node, Project):
            if not all(
                type(expr).__name__ == "ColRef" for _, expr in node.items
            ):
                raise CatalogError(
                    "dynamic cached views allow only plain columns in the select list"
                )
            node = node.child
        if not isinstance(node, Aggregate):
            raise CatalogError("dynamic cached views require a GROUP BY query")
        for _, call in node.aggs:
            if call.func not in self._ADDITIVE or call.distinct:
                raise CatalogError(
                    f"aggregate {call.func} is not incrementally maintainable"
                )
        below = node.child
        if isinstance(below, Filter):
            below = below.child
        if not isinstance(below, Scan):
            raise CatalogError("dynamic cached views must aggregate one base table")

    def apply_increments(self, name: str) -> int:
        """Fold base rows added since the last maintenance into the cache.

        Returns the number of new base rows processed.  If deletions
        happened, falls back to a full refresh (MIN/MAX are not reversible).
        """
        with self._lock:
            return self._apply_increments_locked(name)

    def _apply_increments_locked(self, name: str) -> int:
        info = self.info(name)
        if info.kind != "dynamic":
            raise ExecutionError(f"{name!r} is a static cached view; use refresh()")
        base = info.base_tables[0]
        storage = self.db.catalog.table(base)
        deletes = sum(1 for d in storage.deleted_tids if d != 0)
        if deletes and self._table_version(base) != info.refreshed_at_version.get(base):
            self.refresh(name)
            return 0
        processed = info.processed_rows.get(base, 0)
        total = len(storage)
        if total <= processed:
            return 0
        # Aggregate ONLY the new slice by rewriting the query with a row
        # window — we reuse the engine by materializing the slice into a
        # temp table with the base schema.
        new_rows = total - processed
        slice_rows = [
            [storage.column(c.name).get(i) for c in storage.schema.columns]
            for i in range(processed, total)
        ]
        delta_table = f"_dcv_delta_{info.name}"
        if self.db.catalog.has_table(delta_table):
            self.db.catalog.drop_table(delta_table)
        delta_schema = TableSchema(
            delta_table,
            [ColumnSchema(c.name, c.data_type, True) for c in storage.schema.columns],
            [],
        )
        self.db.create_table_from_schema(delta_schema)
        self.db.catalog.table(delta_table).bulk_load(slice_rows, merge=False)
        delta_sql = _replace_table(info.query_sql, base, delta_table)
        delta_result = self.db.query(delta_sql)
        self._merge_delta_groups(info, delta_result)
        self.db.catalog.drop_table(delta_table)
        info.processed_rows[base] = total
        info.refreshed_at_version[base] = self._table_version(base)
        self._m_increments.inc(new_rows)
        return new_rows

    def _merge_delta_groups(self, info: CachedViewInfo, delta_result) -> None:
        cache = self.db.catalog.table(info.name)
        plan = self._bind(info.query_sql)
        node = plan.child if isinstance(plan, Project) else plan
        assert isinstance(node, Aggregate)
        key_count = len(node.group_cids)
        agg_funcs = [call.func for _, call in node.aggs]

        txn = self.db.begin()
        try:
            existing: dict[tuple, tuple[int, list]] = {}
            for row_id in cache.visible_row_ids(txn):
                row = [cache.column(c.name).get(row_id) for c in cache.schema.columns]
                existing[tuple(row[:key_count])] = (row_id, row)
            for delta_row in delta_result.rows:
                key = tuple(delta_row[:key_count])
                if key not in existing:
                    cache.insert(txn, list(delta_row))
                    continue
                row_id, row = existing[key]
                merged = list(row)
                for index, func in enumerate(agg_funcs):
                    position = key_count + index
                    old, new = row[position], delta_row[position]
                    merged[position] = _merge_agg(func, old, new)
                new_id = cache.update_row(txn, row_id, merged)
                existing[key] = (new_id, merged)
        except Exception:
            self.db.rollback(txn)
            raise
        self.db.commit(txn)

    def query_fresh(self, name: str, sql: str | None = None):
        """Query a cached view at its freshness contract.

        DCV: pending increments are applied first (up-to-date snapshot).
        SCV: served as-is (delayed snapshot).
        """
        info = self.info(name)
        spans = self.db.spans
        # Held across maintenance *and* the read so the up-to-date-snapshot
        # contract survives a concurrent refresh between the two.
        with self._lock, spans.span(
            "cache.query_fresh", view=info.name, kind=info.kind
        ):
            if info.kind == "dynamic":
                if self.apply_increments(name):
                    self._m_misses.inc()
                    spans.event("cache.miss", view=info.name, kind=info.kind)
                else:
                    self._m_hits.inc()
                    spans.event("cache.hit", view=info.name, kind=info.kind)
            else:
                self._m_hits.inc()
                spans.event("cache.hit", view=info.name, kind=info.kind)
            return self.db.query(sql or f"select * from {info.name}")


def _merge_agg(func: str, old, new):
    if old is None:
        return new
    if new is None:
        return old
    if func in ("COUNT", "COUNT_STAR", "SUM"):
        return old + new
    if func == "MIN":
        return min(old, new)
    if func == "MAX":
        return max(old, new)
    raise ExecutionError(f"unmergeable aggregate {func!r}")


def _replace_table(query_sql: str, table: str, replacement: str) -> str:
    """Swap the base table name in a DCV definition (word-boundary safe)."""
    import re

    return re.sub(rf"\b{re.escape(table)}\b", replacement, query_sql,
                  flags=re.IGNORECASE)

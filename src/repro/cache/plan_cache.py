"""Parameterized plan cache: shape-keyed reuse of optimized plans.

Heavy traffic is mostly repeated statement *shapes* — the same SQL with
different literals (the paper's S/4HANA reality: a handful of generated
statement shapes executed millions of times).  BENCH_history shows the
parse→bind→optimize pipeline dominating cheap queries, so this module
caches the *optimized generic plan* per shape and re-binds only the
literal parameters on a hit, skipping parse, bind, and every optimizer
pass.

Correctness model
-----------------

A shape is promoted on its **second** execution (the first runs the fully
normal path, so a once-only statement pays nothing and behaves exactly as
before).  At promotion the statement is re-parsed with slot-tagged
literals and re-bound with ``parameterize=True`` so statement literals
become opaque :class:`repro.algebra.expr.Param` nodes; the optimizer then
produces a *generic* plan.  Because every value-dependent rewrite in the
optimizer guards on :class:`Const`, the generic plan is valid for any
parameter values of the same types — but it may be *weaker* (e.g. the
ASJ-subsumption check of Fig. 10c needs literal equality).  The
promotion therefore compares the rewrite tally of the generic
optimization against the value-bound one and refuses to cache (negative
cache) whenever they differ, whenever the parameterized bind fails
(binder structural matching is textual), or whenever the plan contains a
scalar subquery.

Slots that survive as ``Param`` in the generic plan are *free* — any
value may be substituted at hit time.  All other literal slots are
*fixed*: they were consumed structurally (``LIMIT``/``OFFSET``,
``DECIMAL(p,s)`` type arguments) or absorbed by a value-dependent
rewrite, so the entry key includes the fixed-slot values — ``... LIMIT
5`` and ``... LIMIT 50`` cache as two entries under one shape.

Invalidation is precise and lazy: every entry carries a fingerprint —
catalog DDL version (tables *and* view deploys/drops), optimizer profile,
``vectorized``/``batch_size`` knobs, and a bucketed row-count signature
of the referenced base tables (a stats refresh big enough to change plan
choice changes a bucket) — that is re-checked on every hit.  A mismatch
evicts the entry, counts ``plan_cache.invalidations``, and falls back to
the normal compile path.

The cache is shared across serving sessions/tenants: plans are immutable
(hit-time substitution builds new trees), and namespace/ownership checks
happen before the engine sees the statement.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..algebra.expr import Param, ScalarSubquery, walk
from ..algebra.ops import LogicalOp, Scan
from ..datatypes import DataType

#: Sentinel stored in the shape map for shapes that must never be cached
#: (value-dependent rewrites, bind failures, scalar subqueries).
UNCACHEABLE = "uncacheable"

#: Rough per-plan-node memory estimate for the sys.plan_cache / doctor
#: accounting (Python objects; exact sizes are not the point —
#: boundedness under a capacity is).
_BYTES_PER_NODE = 512


@dataclass
class CachedPlan:
    """One cached generic plan plus everything needed to re-bind it."""

    shape: str
    param_types: tuple[DataType, ...]
    generic_plan: LogicalOp
    #: Slots that survive as Param in the generic plan (substitutable).
    free_slots: frozenset[int]
    #: (slot, value) for every non-free slot, slot-ascending — part of the
    #: entry key; a hit carries exactly these values in these slots.
    fixed_values: tuple[tuple[int, object], ...]
    fingerprint: tuple
    #: Base tables whose row counts feed the stats-signature re-check.
    tables: tuple[str, ...]
    operators_before: int
    operators_after: int
    rewrite_fires: dict[str, int]
    created_at: float = field(default_factory=time.time)
    last_used_at: float = field(default_factory=time.time)
    hits: int = 0
    #: Compiled physical tree for ``last_values`` — reused directly when a
    #: hit carries exactly the same parameter values (physical operators
    #: hold only configuration, so re-execution is safe).
    last_values: tuple | None = None
    physical: object | None = None
    approx_bytes: int = 0


class PlanCache:
    """Bounded LRU of :class:`CachedPlan` entries.

    Two-level keying: a *shape key* ``(normalized_sql, literal_types)``
    maps to the learned fixed/free slot split, and each distinct
    combination of fixed-slot values owns one LRU entry.  Thread-safe:
    one lock guards both maps; expensive work (optimizing a generic plan)
    happens outside the lock in the caller.
    """

    def __init__(self, capacity: int, metrics=None):
        self.capacity = max(0, capacity)
        self._lock = threading.Lock()
        #: (shape_key, fixed_values) -> CachedPlan, LRU order.
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        #: shape_key -> seen-count (int), UNCACHEABLE, or the learned
        #: fixed-slot tuple (promotion succeeded at least once).  Bounded
        #: at a multiple of capacity so an endless stream of distinct
        #: shapes cannot grow it without bound.
        self._shapes: "OrderedDict[tuple, object]" = OrderedDict()
        self._shape_capacity = max(64, 8 * self.capacity)
        if metrics is not None:
            self._m_hits = metrics.counter("plan_cache.hits")
            self._m_misses = metrics.counter("plan_cache.misses")
            self._m_evictions = metrics.counter("plan_cache.evictions")
            self._m_invalidations = metrics.counter("plan_cache.invalidations")
        else:
            self._m_hits = self._m_misses = None
            self._m_evictions = self._m_invalidations = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.uncacheable = 0

    # -- probe ------------------------------------------------------------

    def probe(
        self, shape_key: tuple, values: list[object], env: tuple, stats_fn,
    ) -> CachedPlan | None:
        """Return a valid entry for this statement or None (counts hit/miss).

        ``env`` is the caller's current environment fingerprint head
        (catalog version, profile, knobs); ``stats_fn(tables)`` computes
        the bucketed row-count signature for an entry's base tables.  A
        stored entry whose combined fingerprint differs is invalidated
        here — the lazy eviction path for DDL / knob / stats changes.
        """
        with self._lock:
            split = self._shapes.get(shape_key)
            if not isinstance(split, tuple):
                self._count_miss()
                return None
            fixed = tuple(values[slot] for slot in split)
            key = (shape_key, fixed)
            entry = self._entries.get(key)
            if entry is not None \
                    and entry.fingerprint != (env, stats_fn(entry.tables)):
                del self._entries[key]
                self.invalidations += 1
                if self._m_invalidations is not None:
                    self._m_invalidations.inc()
                entry = None
            if entry is None:
                self._count_miss()
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            entry.last_used_at = time.time()
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return entry

    def _count_miss(self) -> None:
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()

    def peek(
        self, shape_key: tuple, values: list[object],
        env: tuple | None = None, stats_fn=None,
    ) -> CachedPlan | None:
        """Entry for this statement without touching LRU order or counters.

        Used by EXPLAIN's ``(cached)`` annotation; with ``env`` given, a
        stale entry reads as absent (but is not evicted)."""
        with self._lock:
            split = self._shapes.get(shape_key)
            if not isinstance(split, tuple):
                return None
            entry = self._entries.get(
                (shape_key, tuple(values[slot] for slot in split))
            )
            if entry is not None and env is not None \
                    and entry.fingerprint != (env, stats_fn(entry.tables)):
                return None
            return entry

    # -- promotion tracking ----------------------------------------------

    def should_promote(self, shape_key: tuple) -> bool:
        """Record one normal-path execution; True = promote this one now.

        The first execution of a shape returns False (run normally, pay
        nothing).  The second returns True; so does any later miss of a
        shape whose split is already learned (a new fixed-value
        combination, or an evicted/invalidated entry).  Uncacheable
        shapes always return False.
        """
        with self._lock:
            state = self._shapes.get(shape_key)
            if state is UNCACHEABLE:
                return False
            if isinstance(state, tuple):
                return True
            if state is None:
                self._shapes[shape_key] = 1
                self._shapes.move_to_end(shape_key)
                self._trim_shapes()
                return False
            self._shapes[shape_key] = int(state) + 1  # type: ignore[arg-type]
            self._shapes.move_to_end(shape_key)
            return True

    def mark_uncacheable(self, shape_key: tuple) -> None:
        with self._lock:
            self._shapes[shape_key] = UNCACHEABLE
            self._shapes.move_to_end(shape_key)
            self._trim_shapes()
            self.uncacheable += 1

    def _trim_shapes(self) -> None:
        while len(self._shapes) > self._shape_capacity:
            self._shapes.popitem(last=False)

    # -- storing ----------------------------------------------------------

    def store(self, shape_key: tuple, entry: CachedPlan) -> None:
        if self.capacity == 0:
            return
        entry.approx_bytes = (
            len(entry.shape)
            + _BYTES_PER_NODE * sum(1 for _ in entry.generic_plan.walk())
        )
        split = tuple(slot for slot, _ in entry.fixed_values)
        fixed = tuple(value for _, value in entry.fixed_values)
        with self._lock:
            self._shapes[shape_key] = split
            self._shapes.move_to_end(shape_key)
            self._trim_shapes()
            self._entries[(shape_key, fixed)] = entry
            self._entries.move_to_end((shape_key, fixed))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()

    def remember_compiled(
        self, entry: CachedPlan, values: list[object], physical: object,
    ) -> None:
        """Attach the physical tree compiled for ``values`` to the entry,
        so an exact-value repeat reuses it without recompiling."""
        with self._lock:
            entry.last_values = tuple(values)
            entry.physical = physical

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (explicit invalidation); returns count dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._shapes.clear()
            self.invalidations += count
            if self._m_invalidations is not None and count:
                self._m_invalidations.inc(count)
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def approx_bytes(self) -> int:
        with self._lock:
            return sum(e.approx_bytes for e in self._entries.values())

    def entries(self) -> list[CachedPlan]:
        """Snapshot of entries, least-recently-used first."""
        with self._lock:
            return list(self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ---------------------------------------------------------------------------
# plan analysis helpers (used by Database during promotion)
# ---------------------------------------------------------------------------


def plan_param_slots(plan: LogicalOp) -> frozenset[int]:
    """Slots of every Param surviving anywhere in ``plan``'s expressions."""
    slots: set[int] = set()
    for expr in _plan_exprs(plan):
        for node in walk(expr):
            if isinstance(node, Param):
                slots.add(node.slot)
    return frozenset(slots)


def plan_has_scalar_subquery(plan: LogicalOp) -> bool:
    return any(
        isinstance(node, ScalarSubquery)
        for expr in _plan_exprs(plan)
        for node in walk(expr)
    )


def plan_base_tables(plan: LogicalOp) -> tuple[str, ...]:
    """Sorted distinct base-table names scanned by ``plan``."""
    names = {op.schema.name for op in plan.walk() if isinstance(op, Scan)}
    return tuple(sorted(names))


def _plan_exprs(plan: LogicalOp):
    from ..algebra import ops

    for op in plan.walk():
        if isinstance(op, ops.Project):
            for _, expr in op.items:
                yield expr
        elif isinstance(op, ops.Filter):
            yield op.predicate
        elif isinstance(op, ops.Join):
            if op.condition is not None:
                yield op.condition
        elif isinstance(op, ops.Aggregate):
            for _, call in op.aggs:
                if call.arg is not None:
                    yield call.arg

"""Cached views (paper §3).

"Note that views can be materialized for query performance.  SAP HANA
provides static cached views (SCV) and dynamic cached views (DCV).  They
are primarily materialized in memory and thus called cached views.  SCV is
refreshed periodically, providing a delayed snapshot of view.  DCV is
incrementally maintained, providing the up-to-date snapshot."
"""

from .cached_views import CachedViewManager, CachedViewInfo  # noqa: F401
from .plan_cache import CachedPlan, PlanCache  # noqa: F401

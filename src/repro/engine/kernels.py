"""Vectorized expression kernels over typed column vectors.

:mod:`repro.engine.eval` consults this module before falling back to its
row-at-a-time handlers:

- :func:`try_select` compiles a predicate into a *selection vector* (kept
  row positions) operating on whole columns — dictionary-coded columns
  compare raw codes against a single looked-up/bisected code threshold
  instead of decoding every row;
- :func:`try_evaluate` computes ``col <op> const`` arithmetic as a
  *dictionary transform*: O(distinct) arithmetic plus a shared code
  vector, instead of O(rows) Python-object arithmetic.

Kernels only engage while a :class:`KernelTally` is active on the current
thread — the executor activates one per vectorized execution, which is
both the ``Database(vectorized=...)`` gate and the metrics sink
(``exec.kernel_calls`` / ``exec.rows_selected`` / ``exec.dict_compares``
plus per-operator attribution for ``sys.operator_stats``).

Correctness rule: a kernel must be *exactly* equivalent to the row path
(`repro fuzz --oracle vectorized-differential` holds it to that), so any
case with divergent coercion semantics — notably Decimal↔float
comparisons, which the row path coerces through ``float()`` — returns
None and takes the row path instead.
"""

from __future__ import annotations

import decimal
import threading
import time
from array import array
from bisect import bisect_left, bisect_right

from ..algebra.expr import Call, ColRef, Const
from ..errors import ExecutionError
from ..vectors import DictVector, FloatVector, IntVector

_CMP_OPS = frozenset(("=", "<>", "<", "<=", ">", ">="))
_ARITH_OPS = frozenset(("+", "-", "*", "/", "%"))
#: Operator seen by the column when the expression was ``const <op> col``.
_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

_perf_counter = time.perf_counter


def coerce_pair(a: object, b: object) -> tuple[object, object]:
    """Unify numeric operand representations for one row (the engine-wide
    comparison semantics; kernels and the row path must share it)."""
    if isinstance(a, float) and isinstance(b, decimal.Decimal):
        return a, float(b)
    if isinstance(a, decimal.Decimal) and isinstance(b, float):
        return float(a), b
    if isinstance(a, int) and isinstance(b, decimal.Decimal):
        return decimal.Decimal(a), b
    if isinstance(a, decimal.Decimal) and isinstance(b, int):
        return a, decimal.Decimal(b)
    return a, b


# ---------------------------------------------------------------------------
# tally: the activation gate and the metrics sink
# ---------------------------------------------------------------------------


class KernelTally:
    """Per-execution kernel accounting.

    ``per_op`` maps ``id(physical op) -> [calls, rows_selected,
    dict_compares, seconds]``; ``current_op`` is maintained by
    ``PhysicalOp._stream`` with save/restore nesting, so attribution is
    exclusive — a kernel that runs inside Filter while Filter's parent is
    draining it bills Filter, not the parent.
    """

    __slots__ = ("calls", "rows_selected", "dict_compares", "per_op", "current_op")

    def __init__(self) -> None:
        self.calls = 0
        self.rows_selected = 0
        self.dict_compares = 0
        self.per_op: dict[int, list] = {}
        self.current_op: int | None = None


_tls = threading.local()


def active() -> KernelTally | None:
    return getattr(_tls, "tally", None)


def activate(tally: KernelTally | None) -> KernelTally | None:
    """Install ``tally`` for this thread; returns the previous one so a
    nested execution (scalar subqueries) can restore it."""
    previous = getattr(_tls, "tally", None)
    _tls.tally = tally
    return previous


def _record(
    tally: KernelTally, elapsed: float, selected: int, dict_compares: int
) -> None:
    tally.calls += 1
    tally.rows_selected += selected
    tally.dict_compares += dict_compares
    entry = tally.per_op.get(tally.current_op)
    if entry is None:
        entry = tally.per_op[tally.current_op] = [0, 0, 0, 0.0]
    entry[0] += 1
    entry[1] += selected
    entry[2] += dict_compares
    entry[3] += elapsed


def note_dict_compares(count: int) -> None:
    """Credit code-level comparisons done outside a kernel call (join and
    aggregate key readers that avoid per-row decoding)."""
    tally = active()
    if tally is not None:
        tally.dict_compares += count
        entry = tally.per_op.get(tally.current_op)
        if entry is None:
            entry = tally.per_op[tally.current_op] = [0, 0, 0, 0.0]
        entry[2] += count


# ---------------------------------------------------------------------------
# selection kernels
# ---------------------------------------------------------------------------


def try_select(expr, chunk) -> list[int] | None:
    """Selection vector for ``expr`` over ``chunk``, or None when no kernel
    applies (the caller falls back to row-at-a-time evaluation)."""
    tally = active()
    if tally is None:
        return None
    start = _perf_counter()
    out = _select(expr, chunk)
    if out is None:
        return None
    selection, compares = out
    _record(tally, _perf_counter() - start, len(selection), compares)
    return selection


def _select(expr, chunk):
    if not isinstance(expr, Call):
        return None
    op = expr.op
    if op == "AND":
        first = _select(expr.args[0], chunk)
        if first is None:
            return None
        second = _select(expr.args[1], chunk)
        if second is None:
            return None
        sel_a, cmp_a = first
        sel_b, cmp_b = second
        in_b = set(sel_b)
        return [i for i in sel_a if i in in_b], cmp_a + cmp_b
    if op in ("ISNULL", "ISNOTNULL"):
        arg = expr.args[0]
        if not (isinstance(arg, ColRef) and chunk.has_column(arg.cid)):
            return None
        col = chunk.column(arg.cid)
        want_null = op == "ISNULL"
        if isinstance(col, DictVector):
            codes = col.codes
            if want_null:
                return [i for i, c in enumerate(codes) if c < 0], len(codes)
            return [i for i, c in enumerate(codes) if c >= 0], len(codes)
        if isinstance(col, (IntVector, FloatVector)):
            nulls = col.nulls or frozenset()
            if want_null:
                return sorted(nulls), len(col)
            return [i for i in range(len(col)) if i not in nulls], len(col)
        return None
    if op not in _CMP_OPS or len(expr.args) != 2:
        return None
    a, b = expr.args
    if isinstance(a, ColRef) and isinstance(b, Const):
        col_ref, const = a, b.value
    elif isinstance(b, ColRef) and isinstance(a, Const):
        col_ref, const, op = b, a.value, _FLIP[op]
    else:
        return None
    if not chunk.has_column(col_ref.cid):
        return None
    col = chunk.column(col_ref.cid)
    if isinstance(col, DictVector):
        return _select_dict(col, op, const)
    if isinstance(col, (IntVector, FloatVector)):
        return _select_typed(col, op, const)
    return None


def _select_dict(col: DictVector, op: str, const):
    codes = col.codes
    n = len(codes)
    if const is None:
        return [], 0  # comparison with NULL is never TRUE
    dictionary = col.dictionary
    if isinstance(const, (decimal.Decimal, float)) and not isinstance(const, bool):
        # Decimal↔float comparisons coerce through float() on the row path
        # (inexact-tolerant); exact dictionary lookups/bisection would
        # diverge, so only engage on a homogeneous same-type dictionary.
        if not (col.sorted_dict and dictionary and type(dictionary[0]) is type(const)):
            return None
    if op == "=" or op == "<>":
        index = col.index()
        if len(index) < len(dictionary):
            # Transformed dictionaries may hold ==-equal duplicates (e.g.
            # ``col * 0``); a single looked-up code would miss the others.
            return None
        try:
            code = index.get(const)
        except TypeError:  # unhashable const: row path raises the real error
            return None
        if op == "=":
            if code is None:
                return [], n
            return [i for i, c in enumerate(codes) if c == code], n
        if code is None:
            return [i for i, c in enumerate(codes) if c >= 0], n
        return [i for i, c in enumerate(codes) if c >= 0 and c != code], n
    if not col.sorted_dict:
        return None  # ranges need a value-ordered homogeneous dictionary
    try:
        if op == "<":
            hi = bisect_left(dictionary, const)
            return [i for i, c in enumerate(codes) if 0 <= c < hi], n
        if op == "<=":
            hi = bisect_right(dictionary, const)
            return [i for i, c in enumerate(codes) if 0 <= c < hi], n
        if op == ">":
            lo = bisect_right(dictionary, const)
            return [i for i, c in enumerate(codes) if c >= lo], n
        lo = bisect_left(dictionary, const)
        return [i for i, c in enumerate(codes) if c >= lo], n
    except TypeError:
        return None  # incomparable types: the row path raises properly


def _select_typed(col, op: str, const):
    if const is None:
        return [], 0
    if isinstance(const, decimal.Decimal):
        if isinstance(col, FloatVector):
            const = float(const)  # row-path float coercion
        # IntVector: int↔Decimal comparison is exact on both paths
    elif not isinstance(const, (int, float)):
        return None  # cross-type comparisons: row path decides/raises
    data = col.data
    nulls = col.nulls or frozenset()
    n = len(data)
    if op == "=":
        sel = [i for i, v in enumerate(data) if v == const]
    elif op == "<>":
        sel = [i for i, v in enumerate(data) if v != const]
    elif op == "<":
        sel = [i for i, v in enumerate(data) if v < const]
    elif op == "<=":
        sel = [i for i, v in enumerate(data) if v <= const]
    elif op == ">":
        sel = [i for i, v in enumerate(data) if v > const]
    else:
        sel = [i for i, v in enumerate(data) if v >= const]
    if nulls:
        sel = [i for i in sel if i not in nulls]
    return sel, n


# ---------------------------------------------------------------------------
# arithmetic kernels (dictionary / typed-buffer transforms)
# ---------------------------------------------------------------------------


def try_evaluate(expr, chunk):
    """Whole-column result for ``col <op> const`` arithmetic, or None."""
    tally = active()
    if tally is None:
        return None
    if not (
        isinstance(expr, Call) and expr.op in _ARITH_OPS and len(expr.args) == 2
    ):
        return None
    a, b = expr.args
    if isinstance(a, ColRef) and isinstance(b, Const):
        col_ref, const, reversed_args = a, b.value, False
    elif isinstance(b, ColRef) and isinstance(a, Const):
        col_ref, const, reversed_args = b, a.value, True
    else:
        return None
    if not chunk.has_column(col_ref.cid):
        return None
    col = chunk.column(col_ref.cid)
    if not isinstance(col, DictVector):
        return None
    start = _perf_counter()
    result = _dict_transform(col, expr.op, const, reversed_args)
    if result is None:
        return None
    _record(tally, _perf_counter() - start, len(col), 0)
    return result


def _arith_pair(op: str, a, b):
    """One arithmetic application with the row path's exact semantics."""
    a, b = coerce_pair(a, b)
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if isinstance(a, decimal.Decimal) or isinstance(b, decimal.Decimal):
                return decimal.Decimal(a) / decimal.Decimal(b)
            return a / b
        return a % b
    except (ZeroDivisionError, decimal.DivisionByZero, decimal.InvalidOperation):
        raise ExecutionError("division by zero") from None


def _dict_transform(col: DictVector, op: str, const, reversed_args: bool):
    codes = col.codes
    if const is None:
        return [None] * len(codes)  # NULL operand: all-NULL column
    transformed: list = []
    errors: dict[int, Exception] = {}
    for position, value in enumerate(col.dictionary):
        try:
            if reversed_args:
                transformed.append(_arith_pair(op, const, value))
            else:
                transformed.append(_arith_pair(op, value, const))
        except Exception as exc:  # raise only if a live code references it
            transformed.append(None)
            errors[position] = exc
    if errors:
        for code in codes:
            if code in errors:
                raise errors[code]
    # Arithmetic can reorder/collide values; the derived dictionary makes
    # no sortedness claim and gets a fresh lazy index.
    return DictVector(transformed, codes, False, None)

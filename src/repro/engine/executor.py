"""Plan execution.

The executor walks a (bound, optionally optimized) logical plan and
materializes chunks bottom-up.  Scans read only the columns referenced
anywhere in the plan — the engine-side half of the paper's "remove
unnecessary operations" story (the optimizer removes operators; the scan
reads only live columns).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..algebra import ops
from ..algebra.expr import AggCall, Call, ColRef, Expr, referenced_cids, walk
from ..errors import ExecutionError, QueryTimeoutError
from ..storage.mvcc import Transaction
from .chunk import Chunk
from .eval import _coerce_pair, evaluate, evaluate_predicate


@dataclass
class QueryStats:
    """Summary statistics for one executed query.

    Populated on :attr:`QueryResult.stats` by the :class:`Database` facade.

    - ``elapsed_s`` — wall time of the whole query (parse/bind/optimize
      plus execution);
    - ``operators_before`` / ``operators_after`` — plan node counts before
      and after optimization (the paper's plan-complexity measure: a UAJ
      query drops from e.g. 4 operators to 2);
    - ``rows_scanned`` — total rows produced by Scan operators, when the
      query ran instrumented (``EXPLAIN ANALYZE``); None otherwise;
    - ``rewrite_fires`` — named rewrite case -> fire count for this query.

    Example::

        result = db.query("select o.o_orderkey from orders o "
                          "left outer join customer c "
                          "on o.o_custkey = c.c_custkey")
        result.stats.elapsed_s          # e.g. 0.0021
        result.stats.operators_before   # 4  (Project, Join, 2x Scan)
        result.stats.operators_after    # 2  (Project, Scan)
        result.stats.rewrite_fires      # {"AJ 2a": 1}
    """

    elapsed_s: float = 0.0
    operators_before: int = 0
    operators_after: int = 0
    rows_scanned: int | None = None
    rewrite_fires: dict[str, int] = field(default_factory=dict)

    @property
    def operators_removed(self) -> int:
        return self.operators_before - self.operators_after


@dataclass
class QueryResult:
    """A fully materialized query result."""

    column_names: list[str]
    rows: list[tuple]
    stats: QueryStats | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.column_names) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.column_names)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.column_names, row)) for row in self.rows]


class Executor:
    """Executes logical plans against catalog storage under a snapshot.

    Pass a :class:`repro.observability.instrument.ExecutionCollector` to
    :meth:`execute` to capture per-operator actual rows, chunk counts, and
    wall times (the EXPLAIN ANALYZE machinery).  Without a collector the
    only instrumentation overhead is one ``is None`` check per operator
    materialization.
    """

    def __init__(self, catalog, metrics=None, tracer=None, faults=None):
        self._catalog = catalog
        self._collector = None
        self._tracer = tracer
        self._faults = faults
        # Cooperative statement deadline (time.monotonic() value), checked
        # at operator boundaries; None means no timeout.
        self._deadline = None
        # Pre-resolved counter handles (pruning is a per-scan hot path).
        if metrics is None:
            self._m_blocks_pruned = None
            self._m_blocks_scanned = None
        else:
            self._m_blocks_pruned = metrics.counter("nse.blocks_pruned")
            self._m_blocks_scanned = metrics.counter("nse.blocks_scanned")

    def execute(
        self, plan: ops.LogicalOp, txn: Transaction, collector=None,
        deadline: float | None = None,
    ) -> QueryResult:
        # A nested execute (scalar subqueries) without its own deadline
        # inherits the enclosing statement's — the budget is per statement.
        previous_deadline = self._deadline
        if deadline is not None:
            self._deadline = deadline
        try:
            if collector is None:
                return self._execute(plan, txn)
            previous = self._collector
            self._collector = collector
            try:
                # Scalar-subquery resolution may rewrite the tree; record the
                # tree that actually runs so EXPLAIN ANALYZE annotates it.
                resolved = self._resolve_scalar_subqueries(plan, txn)
                collector.root = resolved
                used = _collect_used_cids(resolved)
                chunk = self._exec(resolved, txn, used)
                cids = [c.cid for c in resolved.output]
                return QueryResult([c.name for c in resolved.output], chunk.rows(cids))
            finally:
                self._collector = previous
        finally:
            self._deadline = previous_deadline

    def _execute(self, plan: ops.LogicalOp, txn: Transaction) -> QueryResult:
        plan = self._resolve_scalar_subqueries(plan, txn)
        used = _collect_used_cids(plan)
        chunk = self._exec(plan, txn, used)
        cids = [c.cid for c in plan.output]
        return QueryResult([c.name for c in plan.output], chunk.rows(cids))

    def _resolve_scalar_subqueries(
        self, plan: ops.LogicalOp, txn: Transaction
    ) -> ops.LogicalOp:
        """Evaluate uncorrelated scalar subqueries to constants under this
        query's snapshot, then substitute them into the plan."""
        from ..algebra.expr import Const, ScalarSubquery, rewrite_expr, walk
        from ..algebra.ops import rewrite_op_exprs

        def has_subquery(expr: Expr) -> bool:
            return any(isinstance(node, ScalarSubquery) for node in walk(expr))

        # Fast path: most plans have no scalar subqueries at all.
        def plan_has_subquery(node: ops.LogicalOp) -> bool:
            if isinstance(node, ops.Project):
                if any(has_subquery(e) for _, e in node.items):
                    return True
            elif isinstance(node, ops.Filter):
                if has_subquery(node.predicate):
                    return True
            elif isinstance(node, ops.Join):
                if node.condition is not None and has_subquery(node.condition):
                    return True
            elif isinstance(node, ops.Aggregate):
                if any(c.arg is not None and has_subquery(c.arg) for _, c in node.aggs):
                    return True
            return any(plan_has_subquery(child) for child in node.children)

        if not plan_has_subquery(plan):
            return plan

        def resolve_expr(expr: Expr) -> Expr:
            if not has_subquery(expr):
                return expr

            def substitute(node: Expr) -> Expr | None:
                if isinstance(node, ScalarSubquery):
                    result = self.execute(node.plan, txn)  # type: ignore[arg-type]
                    if len(result.rows) > 1:
                        raise ExecutionError(
                            f"scalar subquery returned {len(result.rows)} rows"
                        )
                    value = result.rows[0][0] if result.rows else None
                    return Const(value, node.data_type)
                return None

            return rewrite_expr(expr, substitute)

        return rewrite_op_exprs(plan, resolve_expr)

    # -- dispatch -----------------------------------------------------------

    def _exec(self, op: ops.LogicalOp, txn: Transaction, used: frozenset[int]) -> Chunk:
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeoutError(
                f"statement deadline exceeded at {type(op).__name__}"
            )
        if self._faults is not None:
            self._faults.fire("executor.operator", op=type(op).__name__)
        collector = self._collector
        if collector is None:
            return self._dispatch(op, txn, used)
        start = time.perf_counter()
        chunk = self._dispatch(op, txn, used)
        collector.record(op, chunk.row_count, time.perf_counter() - start)
        return chunk

    def _dispatch(self, op: ops.LogicalOp, txn: Transaction, used: frozenset[int]) -> Chunk:
        if isinstance(op, ops.OneRow):
            return Chunk({}, 1)
        if isinstance(op, ops.Scan):
            return self._exec_scan(op, txn, used)
        if isinstance(op, ops.Project):
            return self._exec_project(op, txn, used)
        if isinstance(op, ops.Filter):
            return self._exec_filter(op, txn, used)
        if isinstance(op, ops.Join):
            return self._exec_join(op, txn, used)
        if isinstance(op, ops.Aggregate):
            return self._exec_aggregate(op, txn, used)
        if isinstance(op, ops.UnionAll):
            return self._exec_union(op, txn, used)
        if isinstance(op, ops.Distinct):
            return self._exec_distinct(op, txn, used)
        if isinstance(op, ops.Sort):
            return self._exec_sort(op, txn, used)
        if isinstance(op, ops.Limit):
            return self._exec_limit(op, txn, used)
        raise ExecutionError(f"no executor for {type(op).__name__}")

    # -- leaf ------------------------------------------------------------------

    def _exec_scan(self, op: ops.Scan, txn: Transaction, used: frozenset[int]) -> Chunk:
        table = self._catalog.table(op.schema.name)
        wanted = [col for col in op.output if col.cid in used]
        names = [col.name for col in wanted]
        columns, row_count = table.read_columns(txn, names)
        return Chunk({col.cid: values for col, values in zip(wanted, columns)}, row_count)

    # -- unary -------------------------------------------------------------------

    def _exec_project(self, op: ops.Project, txn: Transaction, used: frozenset[int]) -> Chunk:
        child = self._exec(op.child, txn, used)
        columns: dict[int, list] = {}
        for col, expr in op.items:
            if col.cid in used:
                columns[col.cid] = evaluate(expr, child)
        return Chunk(columns, child.row_count)

    def _exec_filter(self, op: ops.Filter, txn: Transaction, used: frozenset[int]) -> Chunk:
        if isinstance(op.child, ops.Scan):
            pruned = self._exec_scan_block_pruned(op.child, op.predicate, txn, used)
            if pruned is not None:
                keep = evaluate_predicate(op.predicate, pruned)
                return pruned.take(keep)
        child = self._exec(op.child, txn, used)
        keep = evaluate_predicate(op.predicate, child)
        return child.take(keep)

    def _exec_scan_block_pruned(
        self,
        scan: ops.Scan,
        predicate: Expr,
        txn: Transaction,
        used: frozenset[int],
    ) -> Chunk | None:
        """Zone-map pruning for a filtered scan (the §2.2 partition-pruning
        behaviour at block granularity): blocks of the merged main fragment
        whose min/max cannot satisfy a ``col <op> const`` conjunct are
        skipped before any value decodes; the (small) delta is always read.

        Returns None when nothing can be pruned (caller falls back).
        """
        from ..algebra.expr import conjuncts as split
        from ..storage.column import BLOCK_ROWS

        table = self._catalog.table(scan.schema.name)
        bounds: list[tuple[str, str, object]] = []
        scan_cids = scan.output_cids
        for conjunct in split(predicate):
            if not (isinstance(conjunct, Call) and conjunct.op in ("=", "<", "<=", ">", ">=")):
                continue
            a, b = conjunct.args
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
            from ..algebra.expr import Const as ConstExpr

            if isinstance(a, ColRef) and isinstance(b, ConstExpr) and a.cid in scan_cids:
                if b.value is not None:
                    bounds.append((a.name, conjunct.op, b.value))
            elif isinstance(b, ColRef) and isinstance(a, ConstExpr) and b.cid in scan_cids:
                if a.value is not None:
                    bounds.append((b.name, flip[conjunct.op], a.value))
        if not bounds:
            return None

        first = table.column(scan.schema.columns[0].name)
        main_rows = len(first.main)
        if main_rows == 0:
            return None
        block_count = (main_rows + BLOCK_ROWS - 1) // BLOCK_ROWS
        keep_block = [True] * block_count
        for column_name, operator, value in bounds:
            zones = table.column(column_name).main.zone_map()
            for index, (low, high, _has_null) in enumerate(zones):
                if not keep_block[index]:
                    continue
                if low is None:  # all-NULL block never satisfies a comparison
                    keep_block[index] = False
                    continue
                try:
                    if operator == "=" and not (low <= value <= high):
                        keep_block[index] = False
                    elif operator == "<" and not (low < value):
                        keep_block[index] = False
                    elif operator == "<=" and not (low <= value):
                        keep_block[index] = False
                    elif operator == ">" and not (high > value):
                        keep_block[index] = False
                    elif operator == ">=" and not (high >= value):
                        keep_block[index] = False
                except TypeError:
                    continue  # incomparable types: cannot prune on this bound
        if all(keep_block):
            return None  # no pruning achieved; the plain scan path is cheaper
        scanned = sum(keep_block)
        pruned = block_count - scanned
        if self._m_blocks_pruned is not None:
            self._m_blocks_pruned.inc(pruned)
            self._m_blocks_scanned.inc(scanned)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                "nse.block_pruning", table=scan.schema.name,
                blocks_pruned=pruned, blocks_scanned=scanned,
            )

        row_ids: list[int] = []
        for index, keep in enumerate(keep_block):
            if keep:
                start = index * BLOCK_ROWS
                row_ids.extend(range(start, min(start + BLOCK_ROWS, main_rows)))
        row_ids.extend(range(main_rows, len(table)))  # the delta, always
        if table._mvcc_dirty:
            created, deleted = table.created_tids, table.deleted_tids
            is_visible = table._txns.is_visible
            row_ids = [
                i for i in row_ids if is_visible(created[i], deleted[i], txn)
            ]
        wanted = [col for col in scan.output if col.cid in used]
        columns = {}
        for col in wanted:
            fragments = table.column(col.name)
            columns[col.cid] = [fragments.get(i) for i in row_ids]
        return Chunk(columns, len(row_ids))

    def _exec_sort(self, op: ops.Sort, txn: Transaction, used: frozenset[int]) -> Chunk:
        child = self._exec(op.child, txn, used)
        key_cols = [(child.column(k.cid), k.ascending) for k in op.keys]

        def compare(i: int, j: int) -> int:
            for col, ascending in key_cols:
                a, b = col[i], col[j]
                if a is None and b is None:
                    continue
                if a is None:
                    return 1  # NULLS LAST
                if b is None:
                    return -1
                a, b = _coerce_pair(a, b)
                if a == b:
                    continue
                less = a < b
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return 0

        order = sorted(range(child.row_count), key=functools.cmp_to_key(compare))
        return child.take(order)

    def _exec_limit(self, op: ops.Limit, txn: Transaction, used: frozenset[int]) -> Chunk:
        if isinstance(op.child, ops.Scan):
            # Early termination: a limit directly over a scan (the shape the
            # §4.4 pushdown produces) decodes only the requested rows.
            return self._exec_scan_limited(op.child, txn, used, op.offset, op.limit)
        pipelined = self._exec_limit_pipelined(op, txn, used)
        if pipelined is not None:
            return pipelined
        child = self._exec(op.child, txn, used)
        start = op.offset
        stop = None if op.limit is None else start + op.limit
        return child.slice(start, stop)

    _PIPELINE_BATCH = 2048

    def _exec_limit_pipelined(
        self, op: ops.Limit, txn: Transaction, used: frozenset[int]
    ) -> Chunk | None:
        """Pipelined limit over a Project/Filter chain ending in a Scan.

        Models the push-based, pipelined processing the paper describes for
        the HEX engine (§2.2): the scan stops as soon as enough rows survive
        the chain, so a paging query over a filtered view costs O(page), not
        O(table).
        """
        if op.limit is None:
            return None
        chain: list[ops.LogicalOp] = []
        node: ops.LogicalOp = op.child
        while isinstance(node, (ops.Project, ops.Filter)):
            chain.append(node)
            node = node.children[0]
        if not isinstance(node, ops.Scan) or not chain:
            return None
        table = self._catalog.table(node.schema.name)
        row_ids = table.visible_row_ids(txn)
        wanted = [col for col in node.output if col.cid in used]
        need = op.offset + op.limit
        pieces: list[Chunk] = []
        produced = 0
        # Adaptive batching: start near the page size and grow, so selective
        # pages stay cheap and unselective filters converge quickly.
        batch_size = max(64, min(need * 4, self._PIPELINE_BATCH))
        start = 0
        while start < len(row_ids):
            batch_ids = row_ids[start:start + batch_size]
            start += batch_size
            batch_size = min(batch_size * 4, 65536)
            columns = {}
            for col in wanted:
                fragments = table.column(col.name)
                columns[col.cid] = [fragments.get(i) for i in batch_ids]
            chunk = Chunk(columns, len(batch_ids))
            for step in reversed(chain):
                if isinstance(step, ops.Filter):
                    chunk = chunk.take(evaluate_predicate(step.predicate, chunk))
                else:
                    assert isinstance(step, ops.Project)
                    chunk = Chunk(
                        {
                            col.cid: evaluate(expr, chunk)
                            for col, expr in step.items
                            if col.cid in used
                        },
                        chunk.row_count,
                    )
            pieces.append(chunk)
            produced += chunk.row_count
            if produced >= need:
                break
        merged_columns: dict[int, list] = {}
        keys = pieces[0].columns.keys() if pieces else []
        for cid in keys:
            values: list = []
            for piece in pieces:
                values.extend(piece.columns[cid])
            merged_columns[cid] = values
        merged = Chunk(merged_columns, produced)
        return merged.slice(op.offset, need)

    def _exec_scan_limited(
        self,
        op: ops.Scan,
        txn: Transaction,
        used: frozenset[int],
        offset: int,
        limit: int | None,
    ) -> Chunk:
        table = self._catalog.table(op.schema.name)
        row_ids = table.visible_row_ids(txn)
        stop = None if limit is None else offset + limit
        row_ids = row_ids[offset:stop]
        wanted = [col for col in op.output if col.cid in used]
        columns = {}
        for col in wanted:
            fragments = table.column(col.name)
            columns[col.cid] = [fragments.get(i) for i in row_ids]
        return Chunk(columns, len(row_ids))

    def _exec_distinct(self, op: ops.Distinct, txn: Transaction, used: frozenset[int]) -> Chunk:
        child = self._exec(op.child, txn, used)
        cids = [c.cid for c in op.output if c.cid in child.columns]
        seen: set[tuple] = set()
        keep: list[int] = []
        cols = [child.column(cid) for cid in cids]
        for i in range(child.row_count):
            key = tuple(col[i] for col in cols)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return child.take(keep)

    # -- aggregate -----------------------------------------------------------------

    def _exec_aggregate(self, op: ops.Aggregate, txn: Transaction, used: frozenset[int]) -> Chunk:
        child = self._exec(op.child, txn, used)
        key_cols = [child.column(cid) for cid in op.group_cids]
        agg_inputs = [
            None if call.arg is None else evaluate(call.arg, child)
            for _, call in op.aggs
        ]

        groups: dict[tuple, int] = {}
        order: list[tuple] = []
        states: list[list[dict]] = [[] for _ in op.aggs]  # per agg, per group
        for i in range(child.row_count):
            key = tuple(col[i] for col in key_cols)
            slot = groups.get(key)
            if slot is None:
                slot = len(order)
                groups[key] = slot
                order.append(key)
                for state in states:
                    state.append(_new_state())
            for agg_index, (_, call) in enumerate(op.aggs):
                value = None if agg_inputs[agg_index] is None else agg_inputs[agg_index][i]
                _accumulate(states[agg_index][slot], call, value)

        if not op.group_cids and not order:
            # Global aggregate over empty input: one all-default group.
            order.append(())
            for state in states:
                state.append(_new_state())

        columns: dict[int, list] = {}
        for pos, cid in enumerate(op.group_cids):
            columns[cid] = [key[pos] for key in order]
        for agg_index, (col, call) in enumerate(op.aggs):
            columns[col.cid] = [
                _finalize(states[agg_index][g], call) for g in range(len(order))
            ]
        return Chunk(columns, len(order))

    # -- join ---------------------------------------------------------------------

    def _exec_join(self, op: ops.Join, txn: Transaction, used: frozenset[int]) -> Chunk:
        if op.join_type in (ops.JoinType.SEMI, ops.JoinType.ANTI):
            return self._exec_semi_anti(op, txn, used)
        left = self._exec(op.left, txn, used)
        right = self._exec(op.right, txn, used)
        left_cids = op.left.output_cids
        right_cids = op.right.output_cids

        equi: list[tuple[Expr, Expr]] = []
        residual: list[Expr] = []
        from ..algebra.expr import conjuncts

        for conjunct in conjuncts(op.condition):
            pair = _equi_pair(conjunct, left_cids, right_cids)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)

        if equi:
            lidx, ridx = self._hash_join_pairs(left, right, equi)
        else:
            lidx = [i for i in range(left.row_count) for _ in range(right.row_count)]
            ridx = list(range(right.row_count)) * left.row_count

        if residual and lidx:
            combined = _combine(left, right, lidx, ridx)
            keep_mask = [True] * len(lidx)
            from .eval import evaluate as _eval

            for conjunct in residual:
                values = _eval(conjunct, combined)
                for i, v in enumerate(values):
                    if v is not True:
                        keep_mask[i] = False
            lidx = [l for l, k in zip(lidx, keep_mask) if k]
            ridx = [r for r, k in zip(ridx, keep_mask) if k]
        elif residual:
            pass  # no candidate pairs; nothing to filter

        if op.join_type is ops.JoinType.LEFT_OUTER:
            matched = set(lidx)
            extra = [i for i in range(left.row_count) if i not in matched]
            lidx = lidx + extra
            ridx = ridx + [-1] * len(extra)
        return _combine(left, right, lidx, ridx)

    def _exec_semi_anti(self, op: ops.Join, txn: Transaction, used: frozenset[int]) -> Chunk:
        """SEMI/ANTI join execution (EXISTS / IN subqueries).

        ``null_aware`` implements NOT IN's three-valued semantics: a NULL
        probe value, or any NULL in the subquery's values, makes membership
        UNKNOWN — which filters the row.
        """
        from ..algebra.expr import conjuncts

        # The subquery side only needs its join-key columns.
        condition_refs = referenced_cids(op.condition) if op.condition is not None else frozenset()
        left = self._exec(op.left, txn, used | condition_refs)
        right = self._exec(op.right, txn, used | condition_refs)
        is_anti = op.join_type is ops.JoinType.ANTI

        if op.condition is None:  # EXISTS without correlation: all-or-nothing
            keep_all = right.row_count > 0
            if keep_all != is_anti:
                return left
            return left.take([])

        equi: list[tuple[Expr, Expr]] = []
        residual: list[Expr] = []
        left_cids = op.left.output_cids
        right_cids = op.right.output_cids
        for conjunct in conjuncts(op.condition):
            pair = _equi_pair(conjunct, left_cids, right_cids)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        if not equi or residual:
            raise ExecutionError(
                "SEMI/ANTI joins support plain equi conditions only"
            )
        probe_cols = [evaluate(le, left) for le, _ in equi]
        build_cols = [evaluate(re, right) for _, re in equi]
        members: set[tuple] = set()
        right_has_null = False
        for j in range(right.row_count):
            key = tuple(_norm_key(col[j]) for col in build_cols)
            if any(k is None for k in key):
                right_has_null = True
                continue
            members.add(key)
        keep: list[int] = []
        for i in range(left.row_count):
            key = tuple(_norm_key(col[i]) for col in probe_cols)
            if any(k is None for k in key):
                matched = None  # UNKNOWN
            elif key in members:
                matched = True
            elif op.null_aware and right_has_null:
                matched = None  # could match a NULL member: UNKNOWN
            else:
                matched = False
            if (matched is True) if not is_anti else (matched is False):
                keep.append(i)
        return left.take(keep)

    @staticmethod
    def _hash_join_pairs(
        left: Chunk, right: Chunk, equi: list[tuple[Expr, Expr]]
    ) -> tuple[list[int], list[int]]:
        """Hash join with build-side selection by actual cardinality.

        This is why the paper's limit pushdown matters at execution time
        (§4.4): once the anchor is limited to a page, it becomes the build
        side and the join does one cheap probe pass instead of building a
        hash table over the large relation.
        """
        left_keys = [evaluate(le, left) for le, _ in equi]
        right_keys = [evaluate(re, right) for _, re in equi]
        build_right = right.row_count <= left.row_count
        build_keys, build_count = (
            (right_keys, right.row_count) if build_right else (left_keys, left.row_count)
        )
        probe_keys, probe_count = (
            (left_keys, left.row_count) if build_right else (right_keys, right.row_count)
        )
        table: dict[tuple, list[int]] = {}
        for j in range(build_count):
            key = tuple(_norm_key(col[j]) for col in build_keys)
            if any(k is None for k in key):
                continue
            table.setdefault(key, []).append(j)
        lidx: list[int] = []
        ridx: list[int] = []
        for i in range(probe_count):
            key = tuple(_norm_key(col[i]) for col in probe_keys)
            if any(k is None for k in key):
                continue
            for j in table.get(key, ()):
                if build_right:
                    lidx.append(i)
                    ridx.append(j)
                else:
                    lidx.append(j)
                    ridx.append(i)
        if not build_right and lidx:
            # Preserve anchor-order output regardless of build side: the
            # top-N pushdown drops the outer Sort and relies on it.
            order = sorted(range(len(lidx)), key=lambda p: (lidx[p], ridx[p]))
            lidx = [lidx[p] for p in order]
            ridx = [ridx[p] for p in order]
        return lidx, ridx

    # -- union -----------------------------------------------------------------------

    def _exec_union(self, op: ops.UnionAll, txn: Transaction, used: frozenset[int]) -> Chunk:
        positions = [pos for pos, col in enumerate(op.output) if col.cid in used]
        out_cols: dict[int, list] = {op.output[pos].cid: [] for pos in positions}
        total = 0
        for child, mapping in zip(op.inputs, op.child_maps):
            chunk = self._exec(child, txn, used | frozenset(mapping[p] for p in positions))
            total += chunk.row_count
            for pos in positions:
                out_cols[op.output[pos].cid].extend(chunk.column(mapping[pos]))
        return Chunk(out_cols, total)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _collect_used_cids(plan: ops.LogicalOp) -> frozenset[int]:
    used: set[int] = {c.cid for c in plan.output}

    def visit(op: ops.LogicalOp) -> None:
        if isinstance(op, ops.Project):
            for _, expr in op.items:
                used.update(referenced_cids(expr))
        elif isinstance(op, ops.Filter):
            used.update(referenced_cids(op.predicate))
        elif isinstance(op, ops.Join):
            if op.condition is not None:
                used.update(referenced_cids(op.condition))
        elif isinstance(op, ops.Aggregate):
            used.update(op.group_cids)
            for _, call in op.aggs:
                if call.arg is not None:
                    used.update(referenced_cids(call.arg))
        elif isinstance(op, ops.Sort):
            used.update(k.cid for k in op.keys)
        elif isinstance(op, ops.UnionAll):
            for pos, col in enumerate(op.output):
                if col.cid in used:
                    for mapping in op.child_maps:
                        used.add(mapping[pos])
        elif isinstance(op, ops.Distinct):
            used.update(c.cid for c in op.output)
        for child in op.children:
            visit(child)

    # Two passes: the first propagates top-down requirements (union mapping
    # depends on which outputs are used), the second catches unions nested
    # under unions.  A small fixpoint keeps it exact.
    previous = -1
    while len(used) != previous:
        previous = len(used)
        visit(plan)
    return frozenset(used)


def _equi_pair(
    conjunct: Expr, left_cids: frozenset[int], right_cids: frozenset[int]
) -> tuple[Expr, Expr] | None:
    if not (isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2):
        return None
    a, b = conjunct.args
    a_refs = referenced_cids(a)
    b_refs = referenced_cids(b)
    if a_refs and a_refs <= left_cids and b_refs and b_refs <= right_cids:
        return (a, b)
    if a_refs and a_refs <= right_cids and b_refs and b_refs <= left_cids:
        return (b, a)
    return None


def _norm_key(value: object) -> object:
    """Normalize join-key values so 1 == Decimal('1') hash-match."""
    import decimal

    if isinstance(value, decimal.Decimal):
        if value == value.to_integral_value():
            return int(value)
        return float(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _combine(left: Chunk, right: Chunk, lidx: list[int], ridx: list[int]) -> Chunk:
    columns: dict[int, list] = {}
    for cid, col in left.columns.items():
        columns[cid] = [col[i] for i in lidx]
    for cid, col in right.columns.items():
        columns[cid] = [None if j < 0 else col[j] for j in ridx]
    return Chunk(columns, len(lidx))


# -- aggregate state ---------------------------------------------------------


def _new_state() -> dict:
    return {"count": 0, "sum": None, "min": None, "max": None, "distinct": None}


def _accumulate(state: dict, call: AggCall, value: object) -> None:
    if call.func == "COUNT_STAR":
        state["count"] += 1
        return
    if value is None:
        return
    if call.distinct:
        if state["distinct"] is None:
            state["distinct"] = set()
        state["distinct"].add(value)
        return
    state["count"] += 1
    if call.func in ("SUM", "AVG"):
        state["sum"] = value if state["sum"] is None else state["sum"] + value
    if call.func == "MIN":
        state["min"] = value if state["min"] is None else min(state["min"], value)
    if call.func == "MAX":
        state["max"] = value if state["max"] is None else max(state["max"], value)


def _finalize(state: dict, call: AggCall) -> object:
    import decimal

    if call.func == "COUNT_STAR":
        return state["count"]
    if call.distinct:
        values = state["distinct"] or set()
        if call.func == "COUNT":
            return len(values)
        if not values:
            return None
        if call.func == "SUM":
            return sum(values)
        if call.func == "MIN":
            return min(values)
        if call.func == "MAX":
            return max(values)
        if call.func == "AVG":
            total = sum(values)
            if isinstance(total, decimal.Decimal):
                return total / decimal.Decimal(len(values))
            return total / len(values)
    if call.func == "COUNT":
        return state["count"]
    if call.func == "SUM":
        return state["sum"]
    if call.func == "MIN":
        return state["min"]
    if call.func == "MAX":
        return state["max"]
    if call.func == "AVG":
        if state["count"] == 0:
            return None
        total = state["sum"]
        if isinstance(total, decimal.Decimal):
            return total / decimal.Decimal(state["count"])
        return total / state["count"]
    raise ExecutionError(f"unknown aggregate {call.func!r}")

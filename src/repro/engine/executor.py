"""Plan execution entry point.

The executor no longer interprets logical plans itself: it compiles the
(bound, optionally optimized) logical plan into a physical operator tree
(:mod:`repro.optimizer.physical_planner` → :mod:`repro.engine.physical`)
and drains the root operator's batch stream.  All pipelining, early
termination, block pruning, deadline checks, and instrumentation live in
the physical layer; this module keeps the statement-level concerns —
scalar-subquery resolution, the dead-column analysis that scans use to
read only live columns, and the materialized :class:`QueryResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..algebra import ops
from ..algebra.expr import Expr, referenced_cids
from ..errors import ExecutionError
from ..storage.mvcc import Transaction
from . import kernels
from .chunk import Chunk
from .physical import DEFAULT_BATCH_SIZE, ExecContext


@dataclass
class QueryStats:
    """Summary statistics for one executed query.

    Populated on :attr:`QueryResult.stats` by the :class:`Database` facade.

    - ``elapsed_s`` — wall time of the whole query (parse/bind/optimize
      plus execution);
    - ``operators_before`` / ``operators_after`` — plan node counts before
      and after optimization (the paper's plan-complexity measure: a UAJ
      query drops from e.g. 4 operators to 2);
    - ``rows_scanned`` — total rows produced by scan operators, when the
      query ran instrumented (``EXPLAIN ANALYZE``); None otherwise;
    - ``rewrite_fires`` — named rewrite case -> fire count for this query.

    Example::

        result = db.query("select o.o_orderkey from orders o "
                          "left outer join customer c "
                          "on o.o_custkey = c.c_custkey")
        result.stats.elapsed_s          # e.g. 0.0021
        result.stats.operators_before   # 4  (Project, Join, 2x Scan)
        result.stats.operators_after    # 2  (Project, Scan)
        result.stats.rewrite_fires      # {"AJ 2a": 1}
    """

    elapsed_s: float = 0.0
    operators_before: int = 0
    operators_after: int = 0
    rows_scanned: int | None = None
    rewrite_fires: dict[str, int] = field(default_factory=dict)
    #: Engine-wide statement id (``q1``, ``q2``, ...) — the join key into
    #: ``sys.query_log`` / ``sys.operator_stats`` and the capture records.
    query_id: str | None = None

    @property
    def operators_removed(self) -> int:
        return self.operators_before - self.operators_after


@dataclass
class QueryResult:
    """A fully materialized query result."""

    column_names: list[str]
    rows: list[tuple]
    stats: QueryStats | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.column_names) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.column_names)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.column_names, row)) for row in self.rows]


class Executor:
    """Executes logical plans against catalog storage under a snapshot.

    Pass a :class:`repro.observability.instrument.ExecutionCollector` to
    :meth:`execute` to capture per-physical-operator actual rows, batch
    counts, wall times, and early-termination flags (the EXPLAIN ANALYZE
    machinery).  Without a collector the only instrumentation overhead is
    a couple of ``is None`` checks per batch.
    """

    def __init__(
        self, catalog, metrics=None, tracer=None, faults=None,
        batch_size: int = DEFAULT_BATCH_SIZE, plan_feedback: bool = True,
        memory_budget_bytes: int | None = None, vectorized: bool = True,
    ):
        self._catalog = catalog
        # Per-statement state (deadline, collector) lives in thread-local
        # storage: one Executor is shared by every session of a Database,
        # and plain instance attributes would let concurrent statements
        # tear each other's deadlines during the save/restore in execute().
        # Thread-locality preserves the nested-execute inheritance below
        # (scalar subqueries run on the caller's thread).
        self._tls = threading.local()
        self._tracer = tracer
        self._faults = faults
        self._batch_size = max(1, batch_size)
        #: Stamp physical operators with estimated rows at compile time so
        #: est/actual Q-error can be computed post-execution.
        self._plan_feedback = plan_feedback
        #: Soft per-query memory budget (estimated bytes); None = unlimited.
        self._memory_budget = memory_budget_bytes
        #: Vectorized kernels on (the default) or forced off — the scalar
        #: arm of the fuzz differential oracle and A/B benchmarks.
        self._vectorized = vectorized
        # Pre-resolved metric handles (these are per-batch hot paths).
        if metrics is None:
            self._m_blocks_pruned = None
            self._m_blocks_scanned = None
            self._m_batches = None
            self._m_early = None
            self._m_peak = None
            self._m_op_peak = None
            self._m_budget = None
            self._m_kernel_calls = None
            self._m_rows_selected = None
            self._m_dict_compares = None
            self._m_topn = None
        else:
            self._m_blocks_pruned = metrics.counter("nse.blocks_pruned")
            self._m_blocks_scanned = metrics.counter("nse.blocks_scanned")
            self._m_batches = metrics.counter("exec.batches_produced")
            self._m_early = metrics.counter("exec.early_terminations")
            self._m_peak = metrics.histogram("exec.peak_batch_rows")
            self._m_op_peak = metrics.histogram("exec.operator_peak_bytes")
            self._m_budget = metrics.counter("exec.memory_budget_exceeded")
            self._m_kernel_calls = metrics.counter("exec.kernel_calls")
            self._m_rows_selected = metrics.counter("exec.rows_selected")
            self._m_dict_compares = metrics.counter("exec.dict_compares")
            self._m_topn = metrics.counter("exec.topn_heap_evictions")

    @property
    def batch_size(self) -> int:
        return self._batch_size

    # Cooperative statement deadline (time.monotonic() value), checked
    # inside every operator's per-batch loop; None means no timeout.
    @property
    def _deadline(self) -> float | None:
        return getattr(self._tls, "deadline", None)

    @_deadline.setter
    def _deadline(self, value: float | None) -> None:
        self._tls.deadline = value

    @property
    def _collector(self):
        return getattr(self._tls, "collector", None)

    @_collector.setter
    def _collector(self, value) -> None:
        self._tls.collector = value

    def compile(
        self, plan: ops.LogicalOp, used: frozenset[int] | None = None,
        estimate: bool | None = None,
    ):
        """Compile a logical plan to its physical operator tree."""
        # Imported lazily: the planner imports from this module.
        from ..optimizer.physical_planner import create_physical_plan

        if estimate is None:
            estimate = self._plan_feedback
        return create_physical_plan(plan, self._catalog, used, estimate)

    def execute(
        self, plan: ops.LogicalOp, txn: Transaction, collector=None,
        deadline: float | None = None,
    ) -> QueryResult:
        # A nested execute (scalar subqueries) without its own deadline or
        # collector inherits the enclosing statement's — the time budget is
        # per statement, and EXPLAIN ANALYZE's rows_scanned counts subquery
        # scans too.
        previous_deadline = self._deadline
        if deadline is not None:
            self._deadline = deadline
        previous_collector = self._collector
        if collector is not None:
            self._collector = collector
        try:
            # Scalar-subquery resolution may rewrite the tree; record the
            # tree that actually runs so EXPLAIN ANALYZE annotates it.
            resolved = self._resolve_scalar_subqueries(plan, txn)
            used = _collect_used_cids(resolved)
            physical = self.compile(
                resolved, used,
                estimate=self._plan_feedback or collector is not None,
            )
            return self._drain(resolved, physical, txn,
                               instrumented=collector is not None)
        finally:
            self._deadline = previous_deadline
            self._collector = previous_collector

    def execute_physical(
        self, resolved: ops.LogicalOp, physical, txn: Transaction,
        collector=None, deadline: float | None = None,
    ) -> QueryResult:
        """Run a prebuilt physical operator tree (the plan-cache hit path).

        ``resolved`` is the logical plan the tree was compiled from — only
        its ``output`` columns are consulted, for result naming.  The tree
        must be free of scalar subqueries (the cache refuses such plans).
        """
        previous_deadline = self._deadline
        if deadline is not None:
            self._deadline = deadline
        previous_collector = self._collector
        if collector is not None:
            self._collector = collector
        try:
            return self._drain(resolved, physical, txn,
                               instrumented=collector is not None)
        finally:
            self._deadline = previous_deadline
            self._collector = previous_collector

    def _drain(
        self, resolved: ops.LogicalOp, physical, txn: Transaction, *,
        instrumented: bool,
    ) -> QueryResult:
        """Stream ``physical`` to completion and materialize the result."""
        # Each execution gets its own kernel tally (a nested scalar-subquery
        # execute tallies separately and restores ours); activating None is
        # the vectorized=False gate — kernels never engage without a tally.
        tally = kernels.KernelTally() if self._vectorized else None
        previous_tally = kernels.activate(tally)
        try:
            active = self._collector
            if active is not None and instrumented:
                active.root = physical
            ctx = ExecContext(
                self._catalog, txn,
                batch_size=self._batch_size,
                deadline=self._deadline,
                collector=active,
                faults=self._faults,
                tracer=self._tracer,
                m_batches=self._m_batches,
                m_early=self._m_early,
                m_blocks_pruned=self._m_blocks_pruned,
                m_blocks_scanned=self._m_blocks_scanned,
                memory_budget=self._memory_budget,
                m_budget=self._m_budget,
                vectorized=self._vectorized,
                m_topn=self._m_topn,
            )
            stream = physical.execute(ctx)
            try:
                batches = list(stream)
            finally:
                stream.close()
            if tally is not None:
                self._flush_tally(tally, physical, active)
            if self._m_peak is not None and ctx.peak_batch_rows:
                self._m_peak.observe(ctx.peak_batch_rows)
            if self._m_op_peak is not None:
                for nbytes in ctx.op_bytes.values():
                    self._m_op_peak.observe(nbytes)
            names = [c.name for c in resolved.output]
            if not batches:
                return QueryResult(names, [])
            chunk = Chunk.concat(batches)
            cids = [c.cid for c in resolved.output]
            return QueryResult(names, chunk.rows(cids))
        finally:
            kernels.activate(previous_tally)

    def _flush_tally(self, tally, physical, collector) -> None:
        """Fold this execution's kernel accounting into the engine-wide
        counters and (when instrumented) the per-operator collector."""
        if tally.calls or tally.dict_compares:
            if self._m_kernel_calls is not None:
                self._m_kernel_calls.inc(tally.calls)
                self._m_rows_selected.inc(tally.rows_selected)
                self._m_dict_compares.inc(tally.dict_compares)
        if collector is not None and tally.per_op:
            for op in physical.walk():
                entry = tally.per_op.get(id(op))
                if entry is not None:
                    collector.record_kernels(op, *entry)

    def _resolve_scalar_subqueries(
        self, plan: ops.LogicalOp, txn: Transaction
    ) -> ops.LogicalOp:
        """Evaluate uncorrelated scalar subqueries to constants under this
        query's snapshot, then substitute them into the plan."""
        from ..algebra.expr import Const, ScalarSubquery, rewrite_expr, walk
        from ..algebra.ops import rewrite_op_exprs

        def has_subquery(expr: Expr) -> bool:
            return any(isinstance(node, ScalarSubquery) for node in walk(expr))

        # Fast path: most plans have no scalar subqueries at all.
        def plan_has_subquery(node: ops.LogicalOp) -> bool:
            if isinstance(node, ops.Project):
                if any(has_subquery(e) for _, e in node.items):
                    return True
            elif isinstance(node, ops.Filter):
                if has_subquery(node.predicate):
                    return True
            elif isinstance(node, ops.Join):
                if node.condition is not None and has_subquery(node.condition):
                    return True
            elif isinstance(node, ops.Aggregate):
                if any(c.arg is not None and has_subquery(c.arg) for _, c in node.aggs):
                    return True
            return any(plan_has_subquery(child) for child in node.children)

        if not plan_has_subquery(plan):
            return plan

        def resolve_expr(expr: Expr) -> Expr:
            if not has_subquery(expr):
                return expr

            def substitute(node: Expr) -> Expr | None:
                if isinstance(node, ScalarSubquery):
                    result = self.execute(node.plan, txn)  # type: ignore[arg-type]
                    if len(result.rows) > 1:
                        raise ExecutionError(
                            f"scalar subquery returned {len(result.rows)} rows"
                        )
                    value = result.rows[0][0] if result.rows else None
                    return Const(value, node.data_type)
                return None

            return rewrite_expr(expr, substitute)

        return rewrite_op_exprs(plan, resolve_expr)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _collect_used_cids(plan: ops.LogicalOp) -> frozenset[int]:
    used: set[int] = {c.cid for c in plan.output}

    def visit(op: ops.LogicalOp) -> None:
        if isinstance(op, ops.Project):
            for _, expr in op.items:
                used.update(referenced_cids(expr))
        elif isinstance(op, ops.Filter):
            used.update(referenced_cids(op.predicate))
        elif isinstance(op, ops.Join):
            if op.condition is not None:
                used.update(referenced_cids(op.condition))
        elif isinstance(op, ops.Aggregate):
            used.update(op.group_cids)
            for _, call in op.aggs:
                if call.arg is not None:
                    used.update(referenced_cids(call.arg))
        elif isinstance(op, ops.Sort):
            used.update(k.cid for k in op.keys)
        elif isinstance(op, ops.UnionAll):
            for pos, col in enumerate(op.output):
                if col.cid in used:
                    for mapping in op.child_maps:
                        used.add(mapping[pos])
        elif isinstance(op, ops.Distinct):
            used.update(c.cid for c in op.output)
        for child in op.children:
            visit(child)

    # Two passes: the first propagates top-down requirements (union mapping
    # depends on which outputs are used), the second catches unions nested
    # under unions.  A small fixpoint keeps it exact.
    previous = -1
    while len(used) != previous:
        previous = len(used)
        visit(plan)
    return frozenset(used)

"""Columnar batches flowing between operators.

A ``Chunk`` maps cid -> column, where a column is any of the typed
vector forms from :mod:`repro.vectors` (``DictVector`` dictionary codes,
``IntVector``/``FloatVector`` dense buffers) or a plain Python list as
the mixed-type fallback.  Row-at-a-time consumers index and iterate the
columns exactly as before; vectorized kernels dispatch on the concrete
vector class.

Filters apply *selection vectors* lazily: ``select()`` records the kept
row positions against the parent's columns and defers the gather until a
column is actually read, so a chain of filters (or a projection that
drops columns) never copies rows it won't emit.  Reading ``.columns``
materializes any pending selection, which keeps every pre-existing
caller working unchanged.
"""

from __future__ import annotations

from ..vectors import (
    DictVector,
    FloatVector,
    IntVector,
    Vector,
    column_nbytes,
    concat_columns,
    decode_column,
    pad_take_column,
    slice_column,
    take_column,
)

__all__ = [
    "Chunk",
    "DictVector",
    "IntVector",
    "FloatVector",
    "Vector",
    "column_nbytes",
    "concat_columns",
    "decode_column",
    "pad_take_column",
    "slice_column",
    "take_column",
]


class Chunk:
    """A materialized columnar result: cid -> column vector or value list.

    ``row_count`` is explicit so zero-column results (e.g. the input of a
    bare ``COUNT(*)`` after full pruning) still carry cardinality.
    """

    __slots__ = ("_cols", "_base", "_sel", "row_count")

    def __init__(self, columns: dict, row_count: int):
        self._cols = columns
        self._base = None
        self._sel = None
        self.row_count = row_count

    @classmethod
    def empty(cls, cids: list[int] | None = None) -> "Chunk":
        return cls({cid: [] for cid in (cids or [])}, 0)

    @classmethod
    def concat(cls, chunks: "list[Chunk]") -> "Chunk":
        """Concatenate batches into one chunk.

        ``row_count`` is summed independently of the column dicts so
        zero-column batches (a fully-pruned ``COUNT(*)`` input) keep their
        cardinality through the batch pipeline.  Same-dictionary code
        vectors merge without decoding.
        """
        if not chunks:
            return cls({}, 0)
        if len(chunks) == 1:
            return chunks[0]
        pieces: dict[int, list] = {
            cid: [col] for cid, col in chunks[0].columns.items()
        }
        total = chunks[0].row_count
        for chunk in chunks[1:]:
            for cid, col in chunk.columns.items():
                pieces[cid].append(col)
            total += chunk.row_count
        return cls({cid: concat_columns(ps) for cid, ps in pieces.items()}, total)

    # -- column access ----------------------------------------------------

    @property
    def columns(self) -> dict:
        """cid -> column, materializing any pending selection."""
        if self._sel is not None:
            sel, base, cols = self._sel, self._base, self._cols
            for cid, col in base.items():
                if cid not in cols:
                    cols[cid] = take_column(col, sel)
            self._sel = None
            self._base = None
        return self._cols

    def column_ids(self):
        """Column ids without materializing a pending selection."""
        return (self._base if self._sel is not None else self._cols).keys()

    def column(self, cid: int):
        if self._sel is None:
            return self._cols[cid]
        col = self._cols.get(cid)
        if col is None:
            col = take_column(self._base[cid], self._sel)
            self._cols[cid] = col
        return col

    def has_column(self, cid: int) -> bool:
        return cid in (self._base if self._sel is not None else self._cols)

    # -- row selection ----------------------------------------------------

    def select(self, indices: list[int]) -> "Chunk":
        """Lazy row selection: the gather runs when a column is read."""
        if self._sel is None:
            base = self._cols
        else:
            sel = self._sel
            base = self._base
            indices = [sel[i] for i in indices]
        out = Chunk.__new__(Chunk)
        out._cols = {}
        out._base = base
        out._sel = indices
        out.row_count = len(indices)
        return out

    def take(self, indices: list[int]) -> "Chunk":
        """Row selection by position."""
        return self.select(indices)

    def slice(self, start: int, stop: int | None) -> "Chunk":
        stop = self.row_count if stop is None else min(stop, self.row_count)
        start = min(start, self.row_count)
        if self._sel is not None:
            out = Chunk.__new__(Chunk)
            out._cols = {}
            out._base = self._base
            out._sel = self._sel[start:stop]
            out.row_count = max(0, stop - start)
            return out
        return Chunk(
            {cid: slice_column(col, start, stop) for cid, col in self._cols.items()},
            max(0, stop - start),
        )

    def rows(self, cids: list[int]) -> list[tuple]:
        cols = [self.column(cid) for cid in cids]
        return list(zip(*cols)) if cols else [() for _ in range(self.row_count)]

    # -- accounting -------------------------------------------------------

    def estimated_bytes(self) -> int:
        """Size estimate for memory accounting.

        Typed vectors are measured exactly (code/typed buffers, shared
        dictionaries charged as a pointer); object-list columns keep the
        historical first-8-rows sampling so the call stays O(columns).
        """
        total = 64  # the column dict itself
        for cid in self.column_ids():
            total += column_nbytes(self.column(cid))
        return total

    def __repr__(self) -> str:
        state = "lazy" if self._sel is not None else "materialized"
        return (
            f"Chunk(rows={self.row_count}, "
            f"cids={sorted(self.column_ids())}, {state})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        if self.row_count != other.row_count:
            return False
        if set(self.column_ids()) != set(other.column_ids()):
            return False
        return all(
            decode_column(self.column(cid)) == decode_column(other.column(cid))
            for cid in self.column_ids()
        )

    __hash__ = None

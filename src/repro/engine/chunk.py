"""Columnar batches flowing between operators."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


@dataclass
class Chunk:
    """A materialized columnar result: cid -> dense value list.

    ``row_count`` is explicit so zero-column results (e.g. the input of a
    bare ``COUNT(*)`` after full pruning) still carry cardinality.
    """

    columns: dict[int, list]
    row_count: int

    @classmethod
    def empty(cls, cids: list[int] | None = None) -> "Chunk":
        return cls({cid: [] for cid in (cids or [])}, 0)

    @classmethod
    def concat(cls, chunks: "list[Chunk]") -> "Chunk":
        """Concatenate batches into one chunk.

        ``row_count`` is summed independently of the column dicts so
        zero-column batches (a fully-pruned ``COUNT(*)`` input) keep their
        cardinality through the batch pipeline.
        """
        if not chunks:
            return cls({}, 0)
        first = chunks[0]
        if len(chunks) == 1:
            return first
        columns = {cid: list(col) for cid, col in first.columns.items()}
        total = first.row_count
        for chunk in chunks[1:]:
            for cid, col in chunk.columns.items():
                columns[cid].extend(col)
            total += chunk.row_count
        return cls(columns, total)

    def column(self, cid: int) -> list:
        return self.columns[cid]

    def has_column(self, cid: int) -> bool:
        return cid in self.columns

    def take(self, indices: list[int]) -> "Chunk":
        """Row selection by position."""
        return Chunk(
            {cid: [col[i] for i in indices] for cid, col in self.columns.items()},
            len(indices),
        )

    def slice(self, start: int, stop: int | None) -> "Chunk":
        stop = self.row_count if stop is None else min(stop, self.row_count)
        start = min(start, self.row_count)
        return Chunk(
            {cid: col[start:stop] for cid, col in self.columns.items()},
            max(0, stop - start),
        )

    def rows(self, cids: list[int]) -> list[tuple]:
        cols = [self.columns[cid] for cid in cids]
        return list(zip(*cols)) if cols else [() for _ in range(self.row_count)]

    def estimated_bytes(self) -> int:
        """Cheap size estimate for memory accounting.

        Samples one non-NULL value per column (first few rows only) and
        scales its ``sys.getsizeof`` by the column length, plus the list
        slot pointers.  Never walks whole columns — blocking operators
        call this once per consumed batch, so it must stay O(columns).
        """
        total = 64  # the column dict itself
        for col in self.columns.values():
            per_value = 0
            for value in col[:8]:
                if value is not None:
                    per_value = sys.getsizeof(value)
                    break
            total += 56 + (8 + per_value) * len(col)
        return total

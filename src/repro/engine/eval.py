"""Vectorized expression evaluation with SQL semantics.

- NULL propagates through arithmetic, comparisons, and scalar functions;
- AND/OR/NOT use three-valued logic;
- DECIMAL arithmetic is exact (:mod:`decimal`), and ``ROUND`` uses
  ROUND_HALF_UP — the commercial rounding in the paper's §7.1 examples
  (an 11% tax of $13.1945 rounds to $13.19, round(1.3)+round(2.4)=3).
"""

from __future__ import annotations

import datetime
import decimal
import re
from functools import lru_cache

from ..errors import ExecutionError
from ..algebra.expr import Call, Case, Cast, ColRef, Const, Expr
from ..datatypes import DataType, TypeKind
from . import kernels
from .chunk import Chunk
from .kernels import coerce_pair as _coerce_pair


def evaluate(expr: Expr, chunk: Chunk) -> list:
    """Evaluate ``expr`` for every row of ``chunk``.

    Returns a column: a plain value list, or (for column references and
    kernel-computed arithmetic under a vectorized execution) one of the
    typed vectors from :mod:`repro.vectors` — both index and iterate the
    same way.
    """
    n = chunk.row_count
    if isinstance(expr, ColRef):
        return chunk.column(expr.cid)
    if isinstance(expr, Const):
        return [expr.value] * n
    if isinstance(expr, Cast):
        values = evaluate(expr.arg, chunk)
        target = expr.data_type
        return [None if v is None else target.validate(v) for v in values]
    if isinstance(expr, Case):
        return _eval_case(expr, chunk)
    if isinstance(expr, Call):
        # Kernel fast path (no-op unless a KernelTally is active): whole-
        # column arithmetic as a dictionary transform.
        fast = kernels.try_evaluate(expr, chunk)
        if fast is not None:
            return fast
        return _eval_call(expr, chunk)
    from ..algebra.expr import ScalarSubquery

    if isinstance(expr, ScalarSubquery):
        raise ExecutionError(
            "unresolved scalar subquery (the executor resolves these before "
            "evaluation)"
        )
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def evaluate_predicate(expr: Expr, chunk: Chunk) -> list[int]:
    """Row indices where ``expr`` is TRUE (NULL and FALSE filter out)."""
    selection = kernels.try_select(expr, chunk)
    if selection is not None:
        return selection
    values = evaluate(expr, chunk)
    return [i for i, v in enumerate(values) if v is True]


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


def _eval_call(expr: Call, chunk: Chunk) -> list:
    op = expr.op
    handler = _HANDLERS.get(op)
    if handler is not None:
        return handler(expr, chunk)
    raise ExecutionError(f"unknown operator or function {op!r}")


def _binary_args(expr: Call, chunk: Chunk) -> tuple[list, list]:
    left = evaluate(expr.args[0], chunk)
    right = evaluate(expr.args[1], chunk)
    return left, right


def _cmp(op: str):
    def compare(expr: Call, chunk: Chunk) -> list:
        left, right = _binary_args(expr, chunk)
        out = []
        for a, b in zip(left, right):
            if a is None or b is None:
                out.append(None)
                continue
            a, b = _coerce_pair(a, b)
            if op == "=":
                out.append(a == b)
            elif op == "<>":
                out.append(a != b)
            elif op == "<":
                out.append(a < b)
            elif op == "<=":
                out.append(a <= b)
            elif op == ">":
                out.append(a > b)
            else:
                out.append(a >= b)
        return out

    return compare


def _arith(op: str):
    def compute(expr: Call, chunk: Chunk) -> list:
        left, right = _binary_args(expr, chunk)
        out = []
        for a, b in zip(left, right):
            if a is None or b is None:
                out.append(None)
                continue
            a, b = _coerce_pair(a, b)
            try:
                if op == "+":
                    out.append(a + b)
                elif op == "-":
                    out.append(a - b)
                elif op == "*":
                    out.append(a * b)
                elif op == "/":
                    if isinstance(a, decimal.Decimal) or isinstance(b, decimal.Decimal):
                        out.append(decimal.Decimal(a) / decimal.Decimal(b))
                    else:
                        out.append(a / b)
                else:  # %
                    out.append(a % b)
            except (ZeroDivisionError, decimal.DivisionByZero, decimal.InvalidOperation):
                raise ExecutionError("division by zero") from None
        return out

    return compute


def _eval_and(expr: Call, chunk: Chunk) -> list:
    left, right = _binary_args(expr, chunk)
    out = []
    for a, b in zip(left, right):
        if a is False or b is False:
            out.append(False)
        elif a is None or b is None:
            out.append(None)
        else:
            out.append(True)
    return out


def _eval_or(expr: Call, chunk: Chunk) -> list:
    left, right = _binary_args(expr, chunk)
    out = []
    for a, b in zip(left, right):
        if a is True or b is True:
            out.append(True)
        elif a is None or b is None:
            out.append(None)
        else:
            out.append(False)
    return out


def _eval_not(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else (not v) for v in values]


def _eval_neg(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else -v for v in values]


def _eval_isnull(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [v is None for v in values]


def _eval_isnotnull(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [v is not None for v in values]


def _eval_concat_op(expr: Call, chunk: Chunk) -> list:
    left, right = _binary_args(expr, chunk)
    return [
        None if a is None or b is None else f"{a}{b}" for a, b in zip(left, right)
    ]


@lru_cache(maxsize=256)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.compile(f"^{regex}$", re.DOTALL)


def _eval_like(expr: Call, chunk: Chunk) -> list:
    left, right = _binary_args(expr, chunk)
    out = []
    for value, pattern in zip(left, right):
        if value is None or pattern is None:
            out.append(None)
        else:
            out.append(bool(_like_regex(str(pattern)).match(str(value))))
    return out


def _eval_in(expr: Call, chunk: Chunk) -> list:
    operand = evaluate(expr.args[0], chunk)
    item_cols = [evaluate(a, chunk) for a in expr.args[1:]]
    out = []
    for row, value in enumerate(operand):
        if value is None:
            out.append(None)
            continue
        items = [col[row] for col in item_cols]
        matched = False
        saw_null = False
        for item in items:
            if item is None:
                saw_null = True
            else:
                a, b = _coerce_pair(value, item)
                if a == b:
                    matched = True
                    break
        out.append(True if matched else (None if saw_null else False))
    return out


def _eval_case(expr: Case, chunk: Chunk) -> list:
    n = chunk.row_count
    result: list = [None] * n
    decided = [False] * n
    for cond, value in expr.branches:
        cond_vals = evaluate(cond, chunk)
        value_vals = evaluate(value, chunk)
        for i in range(n):
            if not decided[i] and cond_vals[i] is True:
                result[i] = value_vals[i]
                decided[i] = True
    if expr.else_value is not None:
        else_vals = evaluate(expr.else_value, chunk)
        for i in range(n):
            if not decided[i]:
                result[i] = else_vals[i]
    return result


def sql_round(value: object, digits: int) -> object:
    """ROUND with commercial (half-up) semantics; exact for DECIMAL."""
    if value is None:
        return None
    if isinstance(value, decimal.Decimal):
        quantum = decimal.Decimal(1).scaleb(-digits)
        return value.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    if isinstance(value, int) and digits >= 0:
        return value
    # float / negative digits: go through Decimal for half-up behaviour
    dec = decimal.Decimal(str(value))
    quantum = decimal.Decimal(1).scaleb(-digits)
    rounded = dec.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    return float(rounded) if isinstance(value, float) else int(rounded)


def _eval_round(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    if len(expr.args) == 2:
        digit_vals = evaluate(expr.args[1], chunk)
    else:
        digit_vals = [0] * chunk.row_count
    return [
        None if d is None else sql_round(v, int(d)) for v, d in zip(values, digit_vals)
    ]


def _eval_abs(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else abs(v) for v in values]


def _eval_floor(expr: Call, chunk: Chunk) -> list:
    import math

    values = evaluate(expr.args[0], chunk)
    return [None if v is None else math.floor(v) for v in values]


def _eval_ceil(expr: Call, chunk: Chunk) -> list:
    import math

    values = evaluate(expr.args[0], chunk)
    return [None if v is None else math.ceil(v) for v in values]


def _eval_coalesce(expr: Call, chunk: Chunk) -> list:
    arg_cols = [evaluate(a, chunk) for a in expr.args]
    out = []
    for row in range(chunk.row_count):
        value = None
        for col in arg_cols:
            if col[row] is not None:
                value = col[row]
                break
        out.append(value)
    return out


def _eval_nullif(expr: Call, chunk: Chunk) -> list:
    left, right = _binary_args(expr, chunk)
    return [None if (a is not None and a == b) else a for a, b in zip(left, right)]


def _eval_upper(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else str(v).upper() for v in values]


def _eval_lower(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else str(v).lower() for v in values]


def _eval_length(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    return [None if v is None else len(str(v)) for v in values]


def _eval_substr(expr: Call, chunk: Chunk) -> list:
    values = evaluate(expr.args[0], chunk)
    starts = evaluate(expr.args[1], chunk)
    lengths = evaluate(expr.args[2], chunk) if len(expr.args) == 3 else None
    out = []
    for row, value in enumerate(values):
        if value is None or starts[row] is None:
            out.append(None)
            continue
        start = max(int(starts[row]) - 1, 0)  # SQL SUBSTR is 1-based
        text = str(value)
        if lengths is None:
            out.append(text[start:])
        else:
            if lengths[row] is None:
                out.append(None)
            else:
                out.append(text[start:start + int(lengths[row])])
    return out


def _eval_concat(expr: Call, chunk: Chunk) -> list:
    arg_cols = [evaluate(a, chunk) for a in expr.args]
    out = []
    for row in range(chunk.row_count):
        parts = [col[row] for col in arg_cols]
        if any(p is None for p in parts):
            out.append(None)
        else:
            out.append("".join(str(p) for p in parts))
    return out


def _date_part(part: str):
    def extract(expr: Call, chunk: Chunk) -> list:
        values = evaluate(expr.args[0], chunk)
        out = []
        for v in values:
            if v is None:
                out.append(None)
            elif isinstance(v, datetime.date):
                out.append(getattr(v, part))
            else:
                out.append(getattr(datetime.date.fromisoformat(str(v)), part))
        return out

    return extract


_HANDLERS = {
    "=": _cmp("="),
    "<>": _cmp("<>"),
    "<": _cmp("<"),
    "<=": _cmp("<="),
    ">": _cmp(">"),
    ">=": _cmp(">="),
    "+": _arith("+"),
    "-": _arith("-"),
    "*": _arith("*"),
    "/": _arith("/"),
    "%": _arith("%"),
    "AND": _eval_and,
    "OR": _eval_or,
    "NOT": _eval_not,
    "NEG": _eval_neg,
    "ISNULL": _eval_isnull,
    "ISNOTNULL": _eval_isnotnull,
    "||": _eval_concat_op,
    "LIKE": _eval_like,
    "IN": _eval_in,
    "ROUND": _eval_round,
    "ABS": _eval_abs,
    "FLOOR": _eval_floor,
    "CEIL": _eval_ceil,
    "COALESCE": _eval_coalesce,
    "NULLIF": _eval_nullif,
    "UPPER": _eval_upper,
    "LOWER": _eval_lower,
    "LENGTH": _eval_length,
    "SUBSTR": _eval_substr,
    "CONCAT": _eval_concat,
    "YEAR": _date_part("year"),
    "MONTH": _date_part("month"),
    "DAYOFMONTH": _date_part("day"),
}

"""Physical operators: streaming batch execution.

The physical plan is compiled from the (bound, optionally optimized)
logical plan by :mod:`repro.optimizer.physical_planner`.  Each operator's
:meth:`PhysicalOp.execute` returns a generator of fixed-size
:class:`~repro.engine.chunk.Chunk` batches, so Scan→Filter→Project→Limit
chains stream end-to-end: peak memory for a pipelined segment is bounded
by ``batch_size`` and LIMIT / EXISTS / semi-join probes short-circuit
uniformly by *closing* the stream, which cascades ``GeneratorExit``
through every upstream operator.

Pipeline breakers (hash build sides, aggregation, sort) consume their
input fully before emitting; everything else forwards batches as they
arrive.  Every stream is wrapped once in :meth:`PhysicalOp._stream`,
which per batch checks the cooperative statement deadline, fires the
``executor.batch`` fault point, bumps ``exec.batches_produced``, tracks
the peak batch size, and records rows/batches/elapsed into the
EXPLAIN ANALYZE collector.
"""

from __future__ import annotations

import functools
import time
import warnings
from typing import Iterator

from ..algebra import ops
from ..algebra.expr import AggCall, Call, ColRef, Expr, referenced_cids
from ..errors import ExecutionError, MemoryBudgetWarning, QueryTimeoutError
from .chunk import Chunk
from .eval import _coerce_pair, evaluate, evaluate_predicate

#: Default number of rows per streamed batch.
DEFAULT_BATCH_SIZE = 1024

# Module-level clock binding so tests can advance a fake clock and prove
# the deadline is checked inside the per-batch loop, not per operator.
_now = time.monotonic


class ExecContext:
    """Per-execution state shared by every operator of one physical plan."""

    __slots__ = (
        "catalog", "txn", "batch_size", "deadline", "collector", "faults",
        "tracer", "peak_batch_rows", "m_batches", "m_early",
        "m_blocks_pruned", "m_blocks_scanned", "memory_budget", "m_budget",
        "track_mem", "mem_bytes", "budget_exceeded", "op_bytes",
    )

    def __init__(
        self, catalog, txn, *, batch_size: int = DEFAULT_BATCH_SIZE,
        deadline: float | None = None, collector=None, faults=None,
        tracer=None, m_batches=None, m_early=None, m_blocks_pruned=None,
        m_blocks_scanned=None, memory_budget: int | None = None,
        m_budget=None,
    ):
        self.catalog = catalog
        self.txn = txn
        self.batch_size = max(1, batch_size)
        self.deadline = deadline
        self.collector = collector
        self.faults = faults
        self.tracer = tracer
        self.m_batches = m_batches
        self.m_early = m_early
        self.m_blocks_pruned = m_blocks_pruned
        self.m_blocks_scanned = m_blocks_scanned
        #: Largest batch produced anywhere in the plan (rows); the executor
        #: observes it into the ``exec.peak_batch_rows`` histogram.
        self.peak_batch_rows = 0
        #: Soft per-query memory budget (estimated bytes); None = unlimited.
        self.memory_budget = memory_budget
        self.m_budget = m_budget
        #: Blocking operators only account their state when someone can see
        #: it (a collector) or enforce it (a budget) — the disabled path
        #: never pays for size estimation.
        self.track_mem = collector is not None or memory_budget is not None
        self.mem_bytes = 0
        self.budget_exceeded = False
        #: id(op) -> peak estimated bytes held by that operator.  Peaks are
        #: monotonic (state is never "released" back), so the query total is
        #: an upper bound: sum of per-operator peaks, not true concurrency.
        self.op_bytes: dict[int, int] = {}

    def track_memory(self, op, nbytes: int) -> None:
        """Record that ``op`` currently holds ~``nbytes`` of state.

        Keeps the per-operator *peak*, feeds the EXPLAIN ANALYZE collector,
        and — when a budget is set — degrades softly on first overshoot:
        one :class:`MemoryBudgetWarning`, one ``exec.memory_budget_exceeded``
        bump, and the query runs to completion.
        """
        key = id(op)
        previous = self.op_bytes.get(key, 0)
        if nbytes <= previous:
            return
        self.op_bytes[key] = nbytes
        self.mem_bytes += nbytes - previous
        collector = self.collector
        if collector is not None:
            collector.record_memory(op, nbytes)
        budget = self.memory_budget
        if (
            budget is not None
            and not self.budget_exceeded
            and self.mem_bytes > budget
        ):
            self.budget_exceeded = True
            if self.m_budget is not None:
                self.m_budget.inc()
            warnings.warn(
                f"query exceeded memory_budget_bytes: ~{self.mem_bytes} "
                f"estimated bytes > {budget} (in {op.name()}); "
                "execution continues",
                MemoryBudgetWarning,
                stacklevel=2,
            )


class PhysicalOp:
    """Base class: one physical operator producing a stream of batches."""

    #: True for pipeline breakers that materialize their input.
    blocking = False
    #: Duck-typed scan marker — ``ExecutionCollector.rows_scanned`` keys on
    #: it without importing this module (avoids an engine↔observability
    #: import cycle).
    is_scan_op = False
    #: Estimated output rows, stamped post-compile by the physical planner
    #: when plan feedback is enabled; joined against actual rows to compute
    #: the per-operator Q-error.  None when estimation was skipped/failed.
    est_rows: float | None = None

    def __init__(self, logical: ops.LogicalOp, children: tuple["PhysicalOp", ...]):
        self.logical = logical
        self.children = children
        self.output = logical.output

    # -- description (EXPLAIN surface) ----------------------------------

    def name(self) -> str:
        return type(self).__name__

    def strategy(self) -> str:
        """A short planner-choice annotation (build side, pruning, ...)."""
        return ""

    def label(self) -> str:
        strategy = self.strategy()
        return f"{self.name()}[{strategy}]" if strategy else self.name()

    def walk(self) -> Iterator["PhysicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- execution ------------------------------------------------------

    def execute(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Open this operator's instrumented batch stream."""
        if ctx.faults is not None:
            ctx.faults.fire("executor.operator", op=self.name())
        if ctx.collector is not None:
            ctx.collector.open_op(self)
        return self._stream(ctx)

    def _stream(self, ctx: ExecContext) -> Iterator[Chunk]:
        inner = self._run(ctx)
        collector = ctx.collector
        faults = ctx.faults
        m_batches = ctx.m_batches
        try:
            while True:
                if ctx.deadline is not None and _now() > ctx.deadline:
                    raise QueryTimeoutError(
                        f"statement deadline exceeded in {self.name()}"
                    )
                if faults is not None:
                    faults.fire("executor.batch", op=self.name())
                start = time.perf_counter()
                try:
                    chunk = next(inner)
                except StopIteration:
                    return
                elapsed = time.perf_counter() - start
                if m_batches is not None:
                    m_batches.inc()
                if chunk.row_count > ctx.peak_batch_rows:
                    ctx.peak_batch_rows = chunk.row_count
                if collector is not None:
                    collector.record(self, chunk.row_count, elapsed)
                yield chunk
        except GeneratorExit:
            # A consumer stopped early (LIMIT satisfied, EXISTS answered).
            if collector is not None:
                collector.mark_early(self)
            if ctx.m_early is not None:
                ctx.m_early.inc()
            raise
        finally:
            inner.close()

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        raise NotImplementedError


def _rebatch(chunk: Chunk, batch_size: int) -> Iterator[Chunk]:
    """Re-emit a materialized chunk as batch_size-row slices."""
    if chunk.row_count <= batch_size:
        if chunk.row_count:
            yield chunk
        return
    for start in range(0, chunk.row_count, batch_size):
        yield chunk.slice(start, start + batch_size)


def _materialize(child: PhysicalOp, ctx: ExecContext) -> Chunk:
    """Drain a child stream into one chunk (pipeline-breaker input)."""
    stream = child.execute(ctx)
    try:
        return Chunk.concat(list(stream))
    finally:
        stream.close()


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


class OneRowExec(PhysicalOp):
    """The FROM-less SELECT source: one row, no columns."""

    def __init__(self, logical: ops.LogicalOp):
        super().__init__(logical, ())

    def name(self) -> str:
        return "OneRow"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        yield Chunk({}, 1)


class BatchScanExec(PhysicalOp):
    """Batched table scan; optionally zone-map pruned.

    ``wanted`` is fixed at plan time to the columns referenced anywhere in
    the plan.  ``prune_bounds`` holds plan-time-extracted
    ``(column, op, const)`` conjuncts from a fused Filter parent; at open
    the zone maps of the merged main fragment decide which blocks to skip,
    and the surviving row ids are streamed through the storage batch API so
    block pruning composes with streaming.
    """

    is_scan_op = True

    def __init__(self, logical: ops.Scan, wanted, prune_bounds=None):
        super().__init__(logical, ())
        self.wanted = tuple(wanted)
        self.prune_bounds = tuple(prune_bounds or ())

    def name(self) -> str:
        return f"BatchScan({self.logical.schema.name})"

    def strategy(self) -> str:
        parts = [f"cols={len(self.wanted)}"]
        if self.prune_bounds:
            parts.append("zone-map")
        return " ".join(parts)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        table = ctx.catalog.table(self.logical.schema.name)
        names = [col.name for col in self.wanted]
        cids = [col.cid for col in self.wanted]
        # Virtual system tables have no column-store fragments to zone-map.
        prune = self.prune_bounds and not getattr(table, "is_virtual", False)
        row_ids = self._pruned_row_ids(ctx, table) if prune else None
        for columns, count in table.read_column_batches(
            ctx.txn, names, ctx.batch_size, row_ids=row_ids
        ):
            yield Chunk(dict(zip(cids, columns)), count)

    def _pruned_row_ids(self, ctx: ExecContext, table):
        """Zone-map pruning (§2.2 partition-pruning behaviour at block
        granularity): blocks whose min/max cannot satisfy a bound are
        skipped before any value decodes; the (small) delta is always read.
        Returns None when nothing can be pruned — the plain batched scan is
        cheaper then."""
        from ..storage.column import BLOCK_ROWS

        first = table.column(self.logical.schema.columns[0].name)
        main_rows = len(first.main)
        if main_rows == 0:
            return None
        block_count = (main_rows + BLOCK_ROWS - 1) // BLOCK_ROWS
        keep_block = [True] * block_count
        for column_name, operator, value in self.prune_bounds:
            zones = table.column(column_name).main.zone_map()
            for index, (low, high, _has_null) in enumerate(zones):
                if not keep_block[index]:
                    continue
                if low is None:  # all-NULL block never satisfies a comparison
                    keep_block[index] = False
                    continue
                try:
                    if operator == "=" and not (low <= value <= high):
                        keep_block[index] = False
                    elif operator == "<" and not (low < value):
                        keep_block[index] = False
                    elif operator == "<=" and not (low <= value):
                        keep_block[index] = False
                    elif operator == ">" and not (high > value):
                        keep_block[index] = False
                    elif operator == ">=" and not (high >= value):
                        keep_block[index] = False
                except TypeError:
                    continue  # incomparable types: cannot prune on this bound
        if all(keep_block):
            return None
        scanned = sum(keep_block)
        pruned = block_count - scanned
        if ctx.m_blocks_pruned is not None:
            ctx.m_blocks_pruned.inc(pruned)
            ctx.m_blocks_scanned.inc(scanned)
        tracer = ctx.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                "nse.block_pruning", table=self.logical.schema.name,
                blocks_pruned=pruned, blocks_scanned=scanned,
            )
        row_ids: list[int] = []
        for index, keep in enumerate(keep_block):
            if keep:
                start = index * BLOCK_ROWS
                row_ids.extend(range(start, min(start + BLOCK_ROWS, main_rows)))
        row_ids.extend(range(main_rows, len(table)))  # the delta, always
        if table._mvcc_dirty:
            created, deleted = table.created_tids, table.deleted_tids
            is_visible = table._txns.is_visible
            row_ids = [
                i for i in row_ids if is_visible(created[i], deleted[i], ctx.txn)
            ]
        return row_ids


# ---------------------------------------------------------------------------
# streaming unary operators
# ---------------------------------------------------------------------------


class FilterExec(PhysicalOp):
    """Streaming row selection; empty post-filter batches are dropped."""

    def __init__(self, logical: ops.Filter, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.predicate = logical.predicate

    def name(self) -> str:
        return "Filter"

    def strategy(self) -> str:
        return str(self.predicate)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                keep = evaluate_predicate(self.predicate, chunk)
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()


class ProjectExec(PhysicalOp):
    """Streaming projection over the plan-time-pruned item list.

    A zero-item projection (every output dead except cardinality) still
    forwards ``row_count`` — the COUNT(*) pipeline depends on it.
    """

    def __init__(self, logical: ops.Project, child: PhysicalOp, items):
        super().__init__(logical, (child,))
        self.items = tuple(items)

    def name(self) -> str:
        return "Project"

    def strategy(self) -> str:
        return f"{len(self.items)} cols"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        items = self.items
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                yield Chunk(
                    {col.cid: evaluate(expr, chunk) for col, expr in items},
                    chunk.row_count,
                )
        finally:
            stream.close()


class LimitExec(PhysicalOp):
    """Streaming LIMIT/OFFSET; closing the child stream on satisfaction is
    what turns the §4.4 pushed-down limit into an early-terminating scan."""

    def __init__(self, logical: ops.Limit, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.limit = logical.limit
        self.offset = logical.offset

    def name(self) -> str:
        return "Limit"

    def strategy(self) -> str:
        offset = f" offset {self.offset}" if self.offset else ""
        return f"{self.limit}{offset}"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.limit is not None and self.limit <= 0:
            return
        stream = self.children[0].execute(ctx)
        try:
            to_skip = self.offset
            remaining = self.limit
            for chunk in stream:
                if to_skip:
                    if chunk.row_count <= to_skip:
                        to_skip -= chunk.row_count
                        continue
                    chunk = chunk.slice(to_skip, None)
                    to_skip = 0
                if remaining is None:
                    yield chunk
                    continue
                if chunk.row_count >= remaining:
                    yield chunk.slice(0, remaining)
                    return  # closes the child stream: early termination
                remaining -= chunk.row_count
                yield chunk
        finally:
            stream.close()


class DistinctExec(PhysicalOp):
    """Streaming duplicate elimination (the seen-set is the only state)."""

    def __init__(self, logical: ops.Distinct, child: PhysicalOp):
        super().__init__(logical, (child,))

    def name(self) -> str:
        return "Distinct"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        seen: set[tuple] = set()
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                cols = [
                    chunk.column(c.cid) for c in self.output
                    if chunk.has_column(c.cid)
                ]
                keep: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(col[i] for col in cols)
                    if key not in seen:
                        seen.add(key)
                        keep.append(i)
                if ctx.track_mem:
                    # Rough tuple-key cost; exact sizes would mean walking
                    # every key, which defeats the cheap-estimate contract.
                    ctx.track_memory(self, 64 + 100 * len(seen))
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()


class SortExec(PhysicalOp):
    """Pipeline breaker: materialize, sort (NULLS LAST), re-emit batched."""

    blocking = True

    def __init__(self, logical: ops.Sort, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.keys = logical.keys

    def name(self) -> str:
        return "Sort"

    def strategy(self) -> str:
        return ", ".join(
            f"#{k.cid}{'' if k.ascending else ' desc'}" for k in self.keys
        )

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        child = _materialize(self.children[0], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, child.estimated_bytes())
        if child.row_count == 0:
            return
        key_cols = [(child.column(k.cid), k.ascending) for k in self.keys]

        def compare(i: int, j: int) -> int:
            for col, ascending in key_cols:
                a, b = col[i], col[j]
                if a is None and b is None:
                    continue
                if a is None:
                    return 1  # NULLS LAST
                if b is None:
                    return -1
                a, b = _coerce_pair(a, b)
                if a == b:
                    continue
                less = a < b
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return 0

        order = sorted(range(child.row_count), key=functools.cmp_to_key(compare))
        yield from _rebatch(child.take(order), ctx.batch_size)


class HashAggregateExec(PhysicalOp):
    """Pipeline breaker: per-batch accumulation into hashed group states."""

    blocking = True

    def __init__(self, logical: ops.Aggregate, child: PhysicalOp):
        super().__init__(logical, (child,))

    def name(self) -> str:
        return "HashAggregate"

    def strategy(self) -> str:
        op = self.logical
        aggs = ", ".join(str(call) for _, call in op.aggs)
        return f"keys={len(op.group_cids)}; {aggs}"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        groups: dict[tuple, int] = {}
        order: list[tuple] = []
        states: list[list[dict]] = [[] for _ in op.aggs]  # per agg, per group
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                key_cols = [chunk.column(cid) for cid in op.group_cids]
                agg_inputs = [
                    None if call.arg is None else evaluate(call.arg, chunk)
                    for _, call in op.aggs
                ]
                for i in range(chunk.row_count):
                    key = tuple(col[i] for col in key_cols)
                    slot = groups.get(key)
                    if slot is None:
                        slot = len(order)
                        groups[key] = slot
                        order.append(key)
                        for state in states:
                            state.append(_new_state())
                    for agg_index, (_, call) in enumerate(op.aggs):
                        inputs = agg_inputs[agg_index]
                        value = None if inputs is None else inputs[i]
                        _accumulate(states[agg_index][slot], call, value)
                if ctx.track_mem:
                    # Per-group: key tuple + one state dict per aggregate.
                    per_group = 100 + 120 * max(1, len(op.aggs))
                    ctx.track_memory(self, 64 + per_group * len(order))
        finally:
            stream.close()

        if not op.group_cids and not order:
            # Global aggregate over empty input: one all-default group.
            order.append(())
            for state in states:
                state.append(_new_state())

        columns: dict[int, list] = {}
        for pos, cid in enumerate(op.group_cids):
            columns[cid] = [key[pos] for key in order]
        for agg_index, (col, call) in enumerate(op.aggs):
            columns[col.cid] = [
                _finalize(states[agg_index][g], call) for g in range(len(order))
            ]
        yield from _rebatch(Chunk(columns, len(order)), ctx.batch_size)


class UnionAllExec(PhysicalOp):
    """Streams each child in turn, remapping child cids to output cids."""

    def __init__(self, logical: ops.UnionAll, children, positions):
        super().__init__(logical, tuple(children))
        self.positions = tuple(positions)

    def name(self) -> str:
        return "UnionAll"

    def strategy(self) -> str:
        return f"{len(self.children)} children"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        for child, mapping in zip(self.children, op.child_maps):
            stream = child.execute(ctx)
            try:
                for chunk in stream:
                    yield Chunk(
                        {
                            op.output[pos].cid: chunk.column(mapping[pos])
                            for pos in self.positions
                        },
                        chunk.row_count,
                    )
            finally:
                stream.close()


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


class HashJoinExec(PhysicalOp):
    """Hash join with a cost-chosen build side.

    - ``build=right``: build over the right input, stream the left — output
      batches preserve anchor (left) order, with LEFT OUTER NULL-extension
      inline, so the §4.4 top-N pushdown's order contract holds for free.
    - ``build=left``: build over the (smaller, e.g. pushed-limit) left,
      stream the right, buffer matches, and re-emit in anchor order.  When
      the declared cardinality bounds the right side to at most one match
      per key, the probe stops as soon as every build key has matched —
      the join-side analogue of LIMIT's early termination.
    - SEMI/ANTI probes build key sets from the right and stream the left;
      an uncorrelated EXISTS pulls right batches only until the first row.
    """

    blocking = True  # at least one side is always materialized

    def __init__(
        self, logical: ops.Join, left: PhysicalOp, right: PhysicalOp, *,
        equi, residual, build_side: str, left_cids, right_cids,
        early_out: bool = False,
    ):
        super().__init__(logical, (left, right))
        self.equi = tuple(equi)
        self.residual = tuple(residual)
        self.build_side = build_side
        self.left_cids = tuple(left_cids)
        self.right_cids = tuple(right_cids)
        self.early_out = early_out

    def name(self) -> str:
        join_type = self.logical.join_type
        if join_type is ops.JoinType.SEMI:
            return "HashSemiJoin"
        if join_type is ops.JoinType.ANTI:
            return "HashAntiJoin"
        if not self.equi and self.logical.condition is None:
            return "CrossJoin"
        if not self.equi:
            return "NestedLoopJoin"
        return "HashJoin"

    def strategy(self) -> str:
        parts = []
        if self.logical.join_type is ops.JoinType.LEFT_OUTER:
            parts.append("left-outer")
        if self.equi:
            parts.append(f"build={self.build_side}")
        if self.early_out:
            parts.append("early-out")
        if self.residual:
            parts.append("residual")
        if self.logical.null_aware:
            parts.append("null-aware")
        return " ".join(parts)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.logical.join_type in (ops.JoinType.SEMI, ops.JoinType.ANTI):
            yield from self._run_semi_anti(ctx)
        elif not self.equi:
            yield from self._run_cross(ctx)
        elif self.build_side == "right":
            yield from self._run_build_right(ctx)
        else:
            yield from self._run_build_left(ctx)

    # -- equi, build right: stream the anchor ---------------------------

    def _run_build_right(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[1], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, build.estimated_bytes())
        table = self._build_table(build, [re for _, re in self.equi])
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if not table and not left_outer:
            return  # inner join against an empty/all-NULL build: no rows
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                probe_keys = [evaluate(le, chunk) for le, _ in self.equi]
                lidx: list[int] = []
                ridx: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(_norm_key(col[i]) for col in probe_keys)
                    if any(k is None for k in key):
                        continue
                    for j in table.get(key, ()):
                        lidx.append(i)
                        ridx.append(j)
                if self.residual and lidx:
                    lidx, ridx = self._apply_residual(chunk, build, lidx, ridx)
                if left_outer:
                    lidx, ridx = _null_extend(lidx, ridx, chunk.row_count)
                if lidx:
                    yield self._combine(chunk, build, lidx, ridx)
        finally:
            stream.close()

    # -- equi, build left: buffer and re-emit in anchor order -----------

    def _run_build_left(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[0], ctx)
        build_bytes = build.estimated_bytes() if ctx.track_mem else 0
        if ctx.track_mem:
            ctx.track_memory(self, build_bytes)
        table = self._build_table(build, [le for le, _ in self.equi])
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if build.row_count == 0:
            return
        pairs: list[tuple[int, int]] = []  # (left row, buffered right pos)
        buffered: dict[int, list] = {cid: [] for cid in self.right_cids}
        buffered_rows = 0
        remaining = set(table) if (self.early_out and table) else None
        stream = self.children[1].execute(ctx)
        try:
            for chunk in stream:
                probe_keys = [evaluate(re, chunk) for _, re in self.equi]
                lidx: list[int] = []
                jidx: list[int] = []
                for j in range(chunk.row_count):
                    key = tuple(_norm_key(col[j]) for col in probe_keys)
                    if any(k is None for k in key):
                        continue
                    hits = table.get(key)
                    if not hits:
                        continue
                    for i in hits:
                        lidx.append(i)
                        jidx.append(j)
                    if remaining is not None:
                        remaining.discard(key)
                if self.residual and lidx:
                    lidx, jidx = self._apply_residual(build, chunk, lidx, jidx)
                for i, j in zip(lidx, jidx):
                    pairs.append((i, buffered_rows))
                    for cid in self.right_cids:
                        column = chunk.columns.get(cid)
                        buffered[cid].append(None if column is None else column[j])
                    buffered_rows += 1
                if ctx.track_mem:
                    ctx.track_memory(
                        self,
                        build_bytes
                        + Chunk(buffered, buffered_rows).estimated_bytes(),
                    )
                if remaining is not None and not remaining:
                    # Declared right-unique: every build key has found its
                    # (single) match — stop pulling the probe side.
                    break
        finally:
            stream.close()
        right = Chunk(buffered, buffered_rows)
        pairs.sort()  # anchor order: (left row id, right arrival order)
        lidx = [i for i, _ in pairs]
        ridx = [p for _, p in pairs]
        if left_outer:
            lidx, ridx = _null_extend(lidx, ridx, build.row_count)
        yield from _rebatch(self._combine(build, right, lidx, ridx), ctx.batch_size)

    # -- no equi keys: cross/theta --------------------------------------

    def _run_cross(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[1], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, build.estimated_bytes())
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if build.row_count == 0 and not left_outer:
            return
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                count = build.row_count
                lidx = [i for i in range(chunk.row_count) for _ in range(count)]
                ridx = list(range(count)) * chunk.row_count
                if self.residual and lidx:
                    lidx, ridx = self._apply_residual(chunk, build, lidx, ridx)
                if left_outer:
                    lidx, ridx = _null_extend(lidx, ridx, chunk.row_count)
                if lidx:
                    yield self._combine(chunk, build, lidx, ridx)
        finally:
            stream.close()

    # -- SEMI / ANTI ----------------------------------------------------

    def _run_semi_anti(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        is_anti = op.join_type is ops.JoinType.ANTI

        if op.condition is None:  # uncorrelated EXISTS: all-or-nothing
            has_row = False
            right_stream = self.children[1].execute(ctx)
            try:
                for chunk in right_stream:
                    if chunk.row_count:
                        has_row = True
                        break  # short-circuit: first batch answers EXISTS
            finally:
                right_stream.close()
            if has_row == is_anti:
                return  # left side never executes
            left_stream = self.children[0].execute(ctx)
            try:
                yield from left_stream
            finally:
                left_stream.close()
            return

        if not self.equi or self.residual:
            raise ExecutionError(
                "SEMI/ANTI joins support plain equi conditions only"
            )
        members: set[tuple] = set()
        right_has_null = False
        right_stream = self.children[1].execute(ctx)
        try:
            for chunk in right_stream:
                build_cols = [evaluate(re, chunk) for _, re in self.equi]
                for j in range(chunk.row_count):
                    key = tuple(_norm_key(col[j]) for col in build_cols)
                    if any(k is None for k in key):
                        right_has_null = True
                        continue
                    members.add(key)
        finally:
            right_stream.close()
        if ctx.track_mem:
            ctx.track_memory(self, 64 + 100 * len(members))

        null_aware = op.null_aware
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                probe_cols = [evaluate(le, chunk) for le, _ in self.equi]
                keep: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(_norm_key(col[i]) for col in probe_cols)
                    if any(k is None for k in key):
                        matched = None  # UNKNOWN
                    elif key in members:
                        matched = True
                    elif null_aware and right_has_null:
                        matched = None  # could match a NULL member: UNKNOWN
                    else:
                        matched = False
                    if (matched is True) if not is_anti else (matched is False):
                        keep.append(i)
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def _build_table(build: Chunk, key_exprs) -> dict[tuple, list[int]]:
        if build.row_count == 0:
            return {}
        key_cols = [evaluate(expr, build) for expr in key_exprs]
        table: dict[tuple, list[int]] = {}
        for j in range(build.row_count):
            key = tuple(_norm_key(col[j]) for col in key_cols)
            if any(k is None for k in key):
                continue
            table.setdefault(key, []).append(j)
        return table

    def _combine(self, left_chunk: Chunk, right_chunk: Chunk,
                 lidx: list[int], ridx: list[int]) -> Chunk:
        columns: dict[int, list] = {}
        for cid in self.left_cids:
            col = left_chunk.columns.get(cid)
            if col is not None:
                columns[cid] = [col[i] for i in lidx]
        for cid in self.right_cids:
            col = right_chunk.columns.get(cid)
            if col is None:
                columns[cid] = [None] * len(ridx)
            else:
                columns[cid] = [None if j < 0 else col[j] for j in ridx]
        return Chunk(columns, len(lidx))

    def _apply_residual(self, left_chunk: Chunk, right_chunk: Chunk,
                        lidx: list[int], ridx: list[int]):
        combined = self._residual_combine(left_chunk, right_chunk, lidx, ridx)
        keep = [True] * len(lidx)
        for conjunct in self.residual:
            values = evaluate(conjunct, combined)
            for p, value in enumerate(values):
                if value is not True:
                    keep[p] = False
        return (
            [l for l, k in zip(lidx, keep) if k],
            [r for r, k in zip(ridx, keep) if k],
        )

    def _residual_combine(self, left_chunk, right_chunk, lidx, ridx) -> Chunk:
        # Unlike _combine this keys off whatever columns the chunks carry:
        # the build-left path probes with (build, right chunk) arguments.
        columns: dict[int, list] = {}
        for cid, col in left_chunk.columns.items():
            columns[cid] = [col[i] for i in lidx]
        for cid, col in right_chunk.columns.items():
            columns[cid] = [None if j < 0 else col[j] for j in ridx]
        return Chunk(columns, len(lidx))


def _null_extend(lidx: list[int], ridx: list[int],
                 row_count: int) -> tuple[list[int], list[int]]:
    """LEFT OUTER NULL-extension inline in anchor order.

    ``lidx`` must be ascending (probe order); unmatched anchor rows are
    merged in place with a ``-1`` right index rather than appended at the
    end, so outer-join output stays anchor-ordered batch by batch.
    """
    if len(lidx) == row_count and all(l == i for i, l in enumerate(lidx)):
        return lidx, ridx  # every row matched exactly once
    out_l: list[int] = []
    out_r: list[int] = []
    pos = 0
    total = len(lidx)
    for i in range(row_count):
        matched = False
        while pos < total and lidx[pos] == i:
            out_l.append(i)
            out_r.append(ridx[pos])
            pos += 1
            matched = True
        if not matched:
            out_l.append(i)
            out_r.append(-1)
    return out_l, out_r


# ---------------------------------------------------------------------------
# shared kernels (also used by the logical-side helpers and tests)
# ---------------------------------------------------------------------------


def _equi_pair(
    conjunct: Expr, left_cids: frozenset[int], right_cids: frozenset[int]
) -> tuple[Expr, Expr] | None:
    if not (isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2):
        return None
    a, b = conjunct.args
    a_refs = referenced_cids(a)
    b_refs = referenced_cids(b)
    if a_refs and a_refs <= left_cids and b_refs and b_refs <= right_cids:
        return (a, b)
    if a_refs and a_refs <= right_cids and b_refs and b_refs <= left_cids:
        return (b, a)
    return None


def _norm_key(value: object) -> object:
    """Normalize join-key values so 1 == Decimal('1') hash-match."""
    import decimal

    if isinstance(value, decimal.Decimal):
        if value == value.to_integral_value():
            return int(value)
        return float(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


# -- aggregate state ---------------------------------------------------------


def _new_state() -> dict:
    return {"count": 0, "sum": None, "min": None, "max": None, "distinct": None}


def _accumulate(state: dict, call: AggCall, value: object) -> None:
    if call.func == "COUNT_STAR":
        state["count"] += 1
        return
    if value is None:
        return
    if call.distinct:
        if state["distinct"] is None:
            state["distinct"] = set()
        state["distinct"].add(value)
        return
    state["count"] += 1
    if call.func in ("SUM", "AVG"):
        state["sum"] = value if state["sum"] is None else state["sum"] + value
    if call.func == "MIN":
        state["min"] = value if state["min"] is None else min(state["min"], value)
    if call.func == "MAX":
        state["max"] = value if state["max"] is None else max(state["max"], value)


def _finalize(state: dict, call: AggCall) -> object:
    import decimal

    if call.func == "COUNT_STAR":
        return state["count"]
    if call.distinct:
        values = state["distinct"] or set()
        if call.func == "COUNT":
            return len(values)
        if not values:
            return None
        if call.func == "SUM":
            return sum(values)
        if call.func == "MIN":
            return min(values)
        if call.func == "MAX":
            return max(values)
        if call.func == "AVG":
            total = sum(values)
            if isinstance(total, decimal.Decimal):
                return total / decimal.Decimal(len(values))
            return total / len(values)
    if call.func == "COUNT":
        return state["count"]
    if call.func == "SUM":
        return state["sum"]
    if call.func == "MIN":
        return state["min"]
    if call.func == "MAX":
        return state["max"]
    if call.func == "AVG":
        if state["count"] == 0:
            return None
        total = state["sum"]
        if isinstance(total, decimal.Decimal):
            return total / decimal.Decimal(state["count"])
        return total / state["count"]
    raise ExecutionError(f"unknown aggregate {call.func!r}")

"""Physical operators: streaming batch execution.

The physical plan is compiled from the (bound, optionally optimized)
logical plan by :mod:`repro.optimizer.physical_planner`.  Each operator's
:meth:`PhysicalOp.execute` returns a generator of fixed-size
:class:`~repro.engine.chunk.Chunk` batches, so Scan→Filter→Project→Limit
chains stream end-to-end: peak memory for a pipelined segment is bounded
by ``batch_size`` and LIMIT / EXISTS / semi-join probes short-circuit
uniformly by *closing* the stream, which cascades ``GeneratorExit``
through every upstream operator.

Pipeline breakers (hash build sides, aggregation, sort) consume their
input fully before emitting; everything else forwards batches as they
arrive.  Every stream is wrapped once in :meth:`PhysicalOp._stream`,
which per batch checks the cooperative statement deadline, fires the
``executor.batch`` fault point, bumps ``exec.batches_produced``, tracks
the peak batch size, and records rows/batches/elapsed into the
EXPLAIN ANALYZE collector.
"""

from __future__ import annotations

import decimal
import functools
import heapq
import time
import warnings
from bisect import bisect_left, bisect_right
from typing import Iterator

from ..algebra import ops
from ..algebra.expr import AggCall, Call, ColRef, Expr, referenced_cids
from ..errors import ExecutionError, MemoryBudgetWarning, QueryTimeoutError
from ..vectors import (
    DictVector,
    FloatVector,
    IntVector,
    decode_column,
    maybe_typed,
    pad_take_column,
    take_column,
)
from . import kernels
from .chunk import Chunk
from .eval import _coerce_pair, evaluate, evaluate_predicate

#: Default number of rows per streamed batch.
DEFAULT_BATCH_SIZE = 1024

# Module-level clock binding so tests can advance a fake clock and prove
# the deadline is checked inside the per-batch loop, not per operator.
_now = time.monotonic


class ExecContext:
    """Per-execution state shared by every operator of one physical plan."""

    __slots__ = (
        "catalog", "txn", "batch_size", "deadline", "collector", "faults",
        "tracer", "peak_batch_rows", "m_batches", "m_early",
        "m_blocks_pruned", "m_blocks_scanned", "memory_budget", "m_budget",
        "track_mem", "mem_bytes", "budget_exceeded", "op_bytes",
        "vectorized", "m_topn",
    )

    def __init__(
        self, catalog, txn, *, batch_size: int = DEFAULT_BATCH_SIZE,
        deadline: float | None = None, collector=None, faults=None,
        tracer=None, m_batches=None, m_early=None, m_blocks_pruned=None,
        m_blocks_scanned=None, memory_budget: int | None = None,
        m_budget=None, vectorized: bool = True, m_topn=None,
    ):
        self.catalog = catalog
        self.txn = txn
        self.batch_size = max(1, batch_size)
        self.deadline = deadline
        self.collector = collector
        self.faults = faults
        self.tracer = tracer
        self.m_batches = m_batches
        self.m_early = m_early
        self.m_blocks_pruned = m_blocks_pruned
        self.m_blocks_scanned = m_blocks_scanned
        #: Largest batch produced anywhere in the plan (rows); the executor
        #: observes it into the ``exec.peak_batch_rows`` histogram.
        self.peak_batch_rows = 0
        #: False = the differential row-fallback arm: scans decode to plain
        #: lists and no kernels engage (the executor also skips activating
        #: a KernelTally, which is the actual kernel gate).
        self.vectorized = vectorized
        #: ``exec.topn_heap_evictions`` counter handle (may be None).
        self.m_topn = m_topn
        #: Soft per-query memory budget (estimated bytes); None = unlimited.
        self.memory_budget = memory_budget
        self.m_budget = m_budget
        #: Blocking operators only account their state when someone can see
        #: it (a collector) or enforce it (a budget) — the disabled path
        #: never pays for size estimation.
        self.track_mem = collector is not None or memory_budget is not None
        self.mem_bytes = 0
        self.budget_exceeded = False
        #: id(op) -> peak estimated bytes held by that operator.  Peaks are
        #: monotonic (state is never "released" back), so the query total is
        #: an upper bound: sum of per-operator peaks, not true concurrency.
        self.op_bytes: dict[int, int] = {}

    def track_memory(self, op, nbytes: int) -> None:
        """Record that ``op`` currently holds ~``nbytes`` of state.

        Keeps the per-operator *peak*, feeds the EXPLAIN ANALYZE collector,
        and — when a budget is set — degrades softly on first overshoot:
        one :class:`MemoryBudgetWarning`, one ``exec.memory_budget_exceeded``
        bump, and the query runs to completion.
        """
        key = id(op)
        previous = self.op_bytes.get(key, 0)
        if nbytes <= previous:
            return
        self.op_bytes[key] = nbytes
        self.mem_bytes += nbytes - previous
        collector = self.collector
        if collector is not None:
            collector.record_memory(op, nbytes)
        budget = self.memory_budget
        if (
            budget is not None
            and not self.budget_exceeded
            and self.mem_bytes > budget
        ):
            self.budget_exceeded = True
            if self.m_budget is not None:
                self.m_budget.inc()
            warnings.warn(
                f"query exceeded memory_budget_bytes: ~{self.mem_bytes} "
                f"estimated bytes > {budget} (in {op.name()}); "
                "execution continues",
                MemoryBudgetWarning,
                stacklevel=2,
            )


class PhysicalOp:
    """Base class: one physical operator producing a stream of batches."""

    #: True for pipeline breakers that materialize their input.
    blocking = False
    #: Duck-typed scan marker — ``ExecutionCollector.rows_scanned`` keys on
    #: it without importing this module (avoids an engine↔observability
    #: import cycle).
    is_scan_op = False
    #: Estimated output rows, stamped post-compile by the physical planner
    #: when plan feedback is enabled; joined against actual rows to compute
    #: the per-operator Q-error.  None when estimation was skipped/failed.
    est_rows: float | None = None

    def __init__(self, logical: ops.LogicalOp, children: tuple["PhysicalOp", ...]):
        self.logical = logical
        self.children = children
        self.output = logical.output

    # -- description (EXPLAIN surface) ----------------------------------

    def name(self) -> str:
        return type(self).__name__

    def strategy(self) -> str:
        """A short planner-choice annotation (build side, pruning, ...)."""
        return ""

    def label(self) -> str:
        strategy = self.strategy()
        return f"{self.name()}[{strategy}]" if strategy else self.name()

    def walk(self) -> Iterator["PhysicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- execution ------------------------------------------------------

    def execute(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Open this operator's instrumented batch stream."""
        if ctx.faults is not None:
            ctx.faults.fire("executor.operator", op=self.name())
        if ctx.collector is not None:
            ctx.collector.open_op(self)
        return self._stream(ctx)

    def _stream(self, ctx: ExecContext) -> Iterator[Chunk]:
        inner = self._run(ctx)
        collector = ctx.collector
        faults = ctx.faults
        m_batches = ctx.m_batches
        # Kernel attribution: while this operator's _run body executes,
        # the active tally bills kernels to this op; pulling a child batch
        # nests the child's own save/restore inside ours, so billing stays
        # exclusive per operator.
        tally = kernels.active()
        self_key = id(self)
        try:
            while True:
                if ctx.deadline is not None and _now() > ctx.deadline:
                    raise QueryTimeoutError(
                        f"statement deadline exceeded in {self.name()}"
                    )
                if faults is not None:
                    faults.fire("executor.batch", op=self.name())
                start = time.perf_counter()
                if tally is None:
                    try:
                        chunk = next(inner)
                    except StopIteration:
                        return
                else:
                    previous_op = tally.current_op
                    tally.current_op = self_key
                    try:
                        chunk = next(inner)
                    except StopIteration:
                        return
                    finally:
                        tally.current_op = previous_op
                elapsed = time.perf_counter() - start
                if m_batches is not None:
                    m_batches.inc()
                if chunk.row_count > ctx.peak_batch_rows:
                    ctx.peak_batch_rows = chunk.row_count
                if collector is not None:
                    collector.record(self, chunk.row_count, elapsed)
                yield chunk
        except GeneratorExit:
            # A consumer stopped early (LIMIT satisfied, EXISTS answered).
            if collector is not None:
                collector.mark_early(self)
            if ctx.m_early is not None:
                ctx.m_early.inc()
            raise
        finally:
            inner.close()

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        raise NotImplementedError


def _rebatch(chunk: Chunk, batch_size: int) -> Iterator[Chunk]:
    """Re-emit a materialized chunk as batch_size-row slices."""
    if chunk.row_count <= batch_size:
        if chunk.row_count:
            yield chunk
        return
    for start in range(0, chunk.row_count, batch_size):
        yield chunk.slice(start, start + batch_size)


def _materialize(child: PhysicalOp, ctx: ExecContext) -> Chunk:
    """Drain a child stream into one chunk (pipeline-breaker input)."""
    stream = child.execute(ctx)
    try:
        return Chunk.concat(list(stream))
    finally:
        stream.close()


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


class OneRowExec(PhysicalOp):
    """The FROM-less SELECT source: one row, no columns."""

    def __init__(self, logical: ops.LogicalOp):
        super().__init__(logical, ())

    def name(self) -> str:
        return "OneRow"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        yield Chunk({}, 1)


class BatchScanExec(PhysicalOp):
    """Batched table scan; optionally zone-map pruned.

    ``wanted`` is fixed at plan time to the columns referenced anywhere in
    the plan.  ``prune_bounds`` holds plan-time-extracted
    ``(column, op, const)`` conjuncts from a fused Filter parent; at open
    the zone maps of the merged main fragment decide which blocks to skip,
    and the surviving row ids are streamed through the storage batch API so
    block pruning composes with streaming.
    """

    is_scan_op = True

    def __init__(self, logical: ops.Scan, wanted, prune_bounds=None):
        super().__init__(logical, ())
        self.wanted = tuple(wanted)
        self.prune_bounds = tuple(prune_bounds or ())

    def name(self) -> str:
        return f"BatchScan({self.logical.schema.name})"

    def strategy(self) -> str:
        parts = [f"cols={len(self.wanted)}"]
        if self.prune_bounds:
            parts.append("zone-map")
        return " ".join(parts)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        table = ctx.catalog.table(self.logical.schema.name)
        names = [col.name for col in self.wanted]
        cids = [col.cid for col in self.wanted]
        # Virtual system tables have no column-store fragments to zone-map.
        prune = self.prune_bounds and not getattr(table, "is_virtual", False)
        row_ids = self._pruned_row_ids(ctx, table) if prune else None
        for columns, count in table.read_column_batches(
            ctx.txn, names, ctx.batch_size, row_ids=row_ids,
            vectorized=ctx.vectorized,
        ):
            yield Chunk(dict(zip(cids, columns)), count)

    def _pruned_row_ids(self, ctx: ExecContext, table):
        """Zone-map pruning (§2.2 partition-pruning behaviour at block
        granularity): blocks whose min/max cannot satisfy a bound are
        skipped before any value decodes; the (small) delta is always read.
        Returns None when nothing can be pruned — the plain batched scan is
        cheaper then."""
        from ..storage.column import BLOCK_ROWS

        first = table.column(self.logical.schema.columns[0].name)
        main_rows = len(first.main)
        if main_rows == 0:
            return None
        block_count = (main_rows + BLOCK_ROWS - 1) // BLOCK_ROWS
        keep_block = [True] * block_count
        for column_name, operator, value in self.prune_bounds:
            zones = table.column(column_name).main.zone_map()
            for index, (low, high, _has_null) in enumerate(zones):
                if not keep_block[index]:
                    continue
                if low is None:  # all-NULL block never satisfies a comparison
                    keep_block[index] = False
                    continue
                try:
                    if operator == "=" and not (low <= value <= high):
                        keep_block[index] = False
                    elif operator == "<" and not (low < value):
                        keep_block[index] = False
                    elif operator == "<=" and not (low <= value):
                        keep_block[index] = False
                    elif operator == ">" and not (high > value):
                        keep_block[index] = False
                    elif operator == ">=" and not (high >= value):
                        keep_block[index] = False
                except TypeError:
                    continue  # incomparable types: cannot prune on this bound
        if all(keep_block):
            return None
        scanned = sum(keep_block)
        pruned = block_count - scanned
        if ctx.m_blocks_pruned is not None:
            ctx.m_blocks_pruned.inc(pruned)
            ctx.m_blocks_scanned.inc(scanned)
        tracer = ctx.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                "nse.block_pruning", table=self.logical.schema.name,
                blocks_pruned=pruned, blocks_scanned=scanned,
            )
        row_ids: list[int] = []
        for index, keep in enumerate(keep_block):
            if keep:
                start = index * BLOCK_ROWS
                row_ids.extend(range(start, min(start + BLOCK_ROWS, main_rows)))
        row_ids.extend(range(main_rows, len(table)))  # the delta, always
        if table._mvcc_dirty:
            created, deleted = table.created_tids, table.deleted_tids
            is_visible = table._txns.is_visible
            row_ids = [
                i for i in row_ids if is_visible(created[i], deleted[i], ctx.txn)
            ]
        return row_ids


# ---------------------------------------------------------------------------
# streaming unary operators
# ---------------------------------------------------------------------------


class FilterExec(PhysicalOp):
    """Streaming row selection; empty post-filter batches are dropped."""

    def __init__(self, logical: ops.Filter, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.predicate = logical.predicate

    def name(self) -> str:
        return "Filter"

    def strategy(self) -> str:
        return str(self.predicate)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                keep = evaluate_predicate(self.predicate, chunk)
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()


class ProjectExec(PhysicalOp):
    """Streaming projection over the plan-time-pruned item list.

    A zero-item projection (every output dead except cardinality) still
    forwards ``row_count`` — the COUNT(*) pipeline depends on it.
    """

    def __init__(self, logical: ops.Project, child: PhysicalOp, items):
        super().__init__(logical, (child,))
        self.items = tuple(items)

    def name(self) -> str:
        return "Project"

    def strategy(self) -> str:
        return f"{len(self.items)} cols"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        items = self.items
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                yield Chunk(
                    {col.cid: evaluate(expr, chunk) for col, expr in items},
                    chunk.row_count,
                )
        finally:
            stream.close()


class LimitExec(PhysicalOp):
    """Streaming LIMIT/OFFSET; closing the child stream on satisfaction is
    what turns the §4.4 pushed-down limit into an early-terminating scan."""

    def __init__(self, logical: ops.Limit, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.limit = logical.limit
        self.offset = logical.offset

    def name(self) -> str:
        return "Limit"

    def strategy(self) -> str:
        offset = f" offset {self.offset}" if self.offset else ""
        return f"{self.limit}{offset}"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.limit is not None and self.limit <= 0:
            return
        stream = self.children[0].execute(ctx)
        try:
            to_skip = self.offset
            remaining = self.limit
            for chunk in stream:
                if to_skip:
                    if chunk.row_count <= to_skip:
                        to_skip -= chunk.row_count
                        continue
                    chunk = chunk.slice(to_skip, None)
                    to_skip = 0
                if remaining is None:
                    yield chunk
                    continue
                if chunk.row_count >= remaining:
                    yield chunk.slice(0, remaining)
                    return  # closes the child stream: early termination
                remaining -= chunk.row_count
                yield chunk
        finally:
            stream.close()


class DistinctExec(PhysicalOp):
    """Streaming duplicate elimination (the seen-set is the only state)."""

    def __init__(self, logical: ops.Distinct, child: PhysicalOp):
        super().__init__(logical, (child,))

    def name(self) -> str:
        return "Distinct"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        seen: set[tuple] = set()
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                cols = [
                    decode_column(chunk.column(c.cid)) for c in self.output
                    if chunk.has_column(c.cid)
                ]
                keep: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(col[i] for col in cols)
                    if key not in seen:
                        seen.add(key)
                        keep.append(i)
                if ctx.track_mem:
                    # Rough tuple-key cost; exact sizes would mean walking
                    # every key, which defeats the cheap-estimate contract.
                    ctx.track_memory(self, 64 + 100 * len(seen))
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()


class SortExec(PhysicalOp):
    """Pipeline breaker: materialize, sort (NULLS LAST), re-emit batched."""

    blocking = True

    def __init__(self, logical: ops.Sort, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.keys = logical.keys

    def name(self) -> str:
        return "Sort"

    def strategy(self) -> str:
        return ", ".join(
            f"#{k.cid}{'' if k.ascending else ' desc'}" for k in self.keys
        )

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        child = _materialize(self.children[0], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, child.estimated_bytes())
        if child.row_count == 0:
            return
        # Decode each key column once: comparator calls are O(n log n) and
        # would otherwise decode dictionary codes per comparison.
        key_cols = [
            (decode_column(child.column(k.cid)), k.ascending) for k in self.keys
        ]

        def compare(i: int, j: int) -> int:
            for col, ascending in key_cols:
                a, b = col[i], col[j]
                if a is None and b is None:
                    continue
                if a is None:
                    return 1  # NULLS LAST
                if b is None:
                    return -1
                a, b = _coerce_pair(a, b)
                if a == b:
                    continue
                less = a < b
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return 0

        order = sorted(range(child.row_count), key=functools.cmp_to_key(compare))
        yield from _rebatch(child.take(order), ctx.batch_size)


class _TopEntry:
    """A TopN heap entry on the rank fast path.

    ``rank`` is an orderable tuple in *output* order (smaller = earlier
    in the result, seq-terminated so ranks never tie); ``__lt__`` inverts
    it because heapq is a min-heap and TopN wants the worst kept row at
    the root.  ``key`` retains the original sort-key values so the heap
    can be demoted to the general comparator mid-stream.
    """

    __slots__ = ("rank", "key", "seq", "values")

    def __init__(self, rank, key, seq, values):
        self.rank = rank
        self.key = key
        self.seq = seq
        self.values = values

    def __lt__(self, other) -> bool:
        return self.rank > other.rank


_NUMERIC_RANK_TYPES = frozenset((int, float, bool))


def _classify_rank_kinds(key_cols, directions, kinds) -> bool:
    """Decide whether orderable-tuple ranking stays exact for this chunk.

    Per key: int/float/bool values (native comparison equals the engine's
    ``coerce_pair`` semantics — only Decimal pairings coerce) rank in both
    directions via sign flip; one uniform non-Decimal type ranks ascending
    only (there is no generic order-inverting transform).  ``kinds`` keeps
    the per-key decision across chunks; any cross-chunk kind change, any
    Decimal, and any mix beyond the numeric tower disables the fast path.
    """
    for pos, col in enumerate(key_cols):
        types = {type(v) for v in col}
        types.discard(type(None))
        if not types:
            continue  # all-NULL chunk: (1,) parts rank fine either way
        if types <= _NUMERIC_RANK_TYPES:
            kind = "num"
        elif len(types) == 1:
            single = next(iter(types))
            if single is decimal.Decimal or not directions[pos]:
                return False
            kind = single
        else:
            return False
        if kinds[pos] is None:
            kinds[pos] = kind
        elif kinds[pos] != kind:
            return False
    return True


def _topn_typed_single(data, ascending, heap, keep, seq, value_cols):
    """One TopN chunk over a null-free numeric key taken straight from a
    typed buffer (``array('q')``/``array('d')``).

    The rank space is the same seq-terminated ``((0, ±v), seq)`` the
    generic fast path uses, so entries mix freely across chunks.  The
    win: once the heap is full, the worst kept *value* bounds admission,
    and because ``seq`` only grows a tie is always a loser — so the
    candidate filter is a single scalar compare per row and losers incur
    no tuple construction at all.  The bound is fixed at chunk entry
    (winners only ever tighten it), which admits false candidates but
    never drops a true one; each candidate re-checks against the live
    worst rank.

    Returns ``(seq, evictions)`` for the caller to fold back in.
    """
    n = len(data)
    i = 0
    while len(heap) < keep and i < n:
        v = data[i]
        rank = ((0, v if ascending else -v), seq + i)
        values = tuple(
            None if col is None else col[i] for col in value_cols
        )
        heapq.heappush(heap, _TopEntry(rank, (v,), seq + i, values))
        i += 1
    evictions = 0
    if len(heap) >= keep and i < n:
        worst_rank = heap[0].rank
        part = worst_rank[0]
        if part[0] != 0:              # worst entry is NULL: nothing loses
            wv = float("inf") if ascending else float("-inf")
        else:
            wv = part[1] if ascending else -part[1]
        if i == 0:
            candidates = (
                [j for j, v in enumerate(data) if v < wv]
                if ascending
                else [j for j, v in enumerate(data) if v > wv]
            )
        else:
            candidates = (
                [j for j in range(i, n) if data[j] < wv]
                if ascending
                else [j for j in range(i, n) if data[j] > wv]
            )
        for j in candidates:
            v = data[j]
            rank = ((0, v if ascending else -v), seq + j)
            if rank >= worst_rank:
                continue
            values = tuple(
                None if col is None else col[j] for col in value_cols
            )
            heapq.heapreplace(heap, _TopEntry(rank, (v,), seq + j, values))
            worst_rank = heap[0].rank
            evictions += 1
    return seq + n, evictions


def _topn_dict_single(vec, ascending, heap, seq, value_cols):
    """One full-heap TopN chunk over a sorted-dictionary coded key.

    Value order equals code order (the merged-fragment invariant), so the
    worst kept value maps through one bisect to a *code* threshold and the
    candidate filter is an integer compare per row against the raw code
    array — no value is decoded for a loser.  NULL codes (-1) are never
    candidates: with the heap full an incoming NULL ranks at/after every
    kept entry (NULLS LAST plus the grow-only ``seq`` tie-break), so it
    always loses.  Ranks stay in *value* space — entries mix freely with
    chunks ranked by the generic fast path.

    Only called with the heap already full.  Returns ``(seq, evictions)``.
    """
    codes = vec.codes
    dictionary = vec.dictionary
    n = len(codes)
    worst_rank = heap[0].rank
    part = worst_rank[0]
    if part[0] != 0:                  # worst entry is NULL: nothing loses
        cut = len(dictionary) if ascending else 0
    else:
        # Descending keys are numeric-only (rank = -value); ascending
        # ranks carry the value itself.
        wv = part[1] if ascending else -part[1]
        cut = (
            bisect_left(dictionary, wv)
            if ascending
            else bisect_right(dictionary, wv)
        )
    if ascending:
        candidates = [j for j, c in enumerate(codes) if -1 < c < cut]
    else:
        candidates = [j for j, c in enumerate(codes) if c >= cut]
    evictions = 0
    for j in candidates:
        v = dictionary[codes[j]]
        rank = ((0, v if ascending else -v), seq + j)
        if rank >= worst_rank:
            continue
        values = tuple(
            None if col is None else col[j] for col in value_cols
        )
        heapq.heapreplace(heap, _TopEntry(rank, (v,), seq + j, values))
        worst_rank = heap[0].rank
        evictions += 1
    return seq + n, evictions


class TopNExec(PhysicalOp):
    """Bounded-heap ``ORDER BY … LIMIT k [OFFSET o]``.

    Emitted by the physical planner for ``Limit(Sort(…))``: instead of
    materializing and fully sorting the input (O(n log n) time, O(n)
    memory), a size ``k+o`` heap keeps only the current best rows —
    O(n log k) time, O(k) memory — so paged list views (§6 / Fig. 6)
    never hold more than a page's worth of rows.

    Equivalence with the Sort+Limit pair it replaces is exact, including
    stability: ties keep the earliest-arrived row, which is what a stable
    sort followed by LIMIT returns.  Rows displaced after the heap filled
    are counted as ``heap_evictions`` (``exec.topn_heap_evictions``).

    Two internal row representations: when the key columns hold plain
    int/float/bool (either direction) or one uniform non-Decimal type
    (ascending only), each row is ranked by an *orderable tuple* — one
    C-level tuple comparison decides a loser, no Python comparator runs.
    Anything else (Decimal coercion, mixed kinds, descending strings)
    uses the general comparator with the row path's exact semantics; a
    later chunk that breaks the fast path's assumptions demotes the
    already-collected heap in place.
    """

    blocking = True

    def __init__(self, logical: ops.Limit, sort: ops.Sort, child: PhysicalOp):
        super().__init__(logical, (child,))
        self.limit = logical.limit
        self.offset = logical.offset
        self.keys = sort.keys
        #: Rows displaced from the full heap by better-ranked arrivals.
        self.heap_evictions = 0

    def name(self) -> str:
        return "TopN"

    def strategy(self) -> str:
        keys = ", ".join(
            f"#{k.cid}{'' if k.ascending else ' desc'}" for k in self.keys
        )
        offset = f" offset {self.offset}" if self.offset else ""
        return f"k={self.limit}{offset}; {keys}"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.limit <= 0:
            return
        keep = self.limit + self.offset
        directions = [k.ascending for k in self.keys]

        def output_order(a: tuple, b: tuple) -> int:
            """Negative when ``a`` precedes ``b``: sort keys with NULLS
            LAST, then arrival order (the stable-sort tie-break)."""
            for (x, y), ascending in zip(zip(a[0], b[0]), directions):
                if x is None and y is None:
                    continue
                if x is None:
                    return 1
                if y is None:
                    return -1
                x, y = _coerce_pair(x, y)
                if x == y:
                    continue
                less = x < y
                if ascending:
                    return -1 if less else 1
                return 1 if less else -1
            return -1 if a[1] < b[1] else 1  # seq values never collide

        # heapq is a min-heap: order entries worst-first so heap[0] is the
        # row to displace when something better arrives.
        worst_first = functools.cmp_to_key(lambda a, b: output_order(b, a))
        heap: list = []
        seq = 0
        evictions = 0
        out_cids = [c.cid for c in self.output]
        entry_width = 56 + 24 * (len(out_cids) + len(self.keys))
        # 'num' (int/float/bool, both directions) or a concrete type
        # (ascending only) per key; decided from the first non-null values.
        fast = True
        kinds: list = [None] * len(self.keys)
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                value_cols = [
                    chunk.column(cid) if chunk.has_column(cid) else None
                    for cid in out_cids
                ]
                if fast and len(self.keys) == 1:
                    raw0 = chunk.column(self.keys[0].cid)
                    handled = False
                    if (
                        kinds[0] in (None, "num")
                        and isinstance(raw0, (IntVector, FloatVector))
                        and not raw0.nulls
                    ):
                        # Null-free numeric key straight off the typed
                        # buffer: a loser is decided by one scalar compare
                        # against the worst kept value — no decode, no
                        # per-row rank tuple.
                        kinds[0] = "num"
                        seq, displaced = _topn_typed_single(
                            raw0.data, directions[0], heap, keep, seq,
                            value_cols,
                        )
                        evictions += displaced
                        handled = True
                    elif (
                        len(heap) >= keep
                        and isinstance(raw0, DictVector)
                        and raw0.sorted_dict
                        and raw0.dictionary
                    ):
                        first = raw0.dictionary[0]
                        kind = (
                            "num"
                            if type(first) in _NUMERIC_RANK_TYPES
                            else type(first)
                        )
                        if kinds[0] in (None, kind) and (
                            kind == "num"
                            or (directions[0] and kind is not decimal.Decimal)
                        ):
                            kinds[0] = kind
                            seq, displaced = _topn_dict_single(
                                raw0, directions[0], heap, seq, value_cols,
                            )
                            evictions += displaced
                            handled = True
                    if handled:
                        if ctx.track_mem:
                            ctx.track_memory(self, 64 + entry_width * len(heap))
                        continue
                key_cols = [
                    decode_column(chunk.column(k.cid)) for k in self.keys
                ]
                if fast:
                    fast = _classify_rank_kinds(key_cols, directions, kinds)
                    if not fast and heap:
                        # Demote: rebuild collected fast entries under the
                        # general comparator before mixing in this chunk.
                        heap = [
                            worst_first((e.key, e.seq, e.values)) for e in heap
                        ]
                        heapq.heapify(heap)
                n = chunk.row_count
                if fast:
                    # Rank the whole chunk up front (seq-terminated output
                    # order; (1,) > (0, v) encodes NULLS LAST), then reject
                    # losers with one C tuple comparison each.
                    if len(key_cols) == 1:
                        col0 = key_cols[0]
                        if directions[0]:
                            ranks = [
                                ((1,), s) if v is None else ((0, v), s)
                                for s, v in enumerate(col0, seq)
                            ]
                        else:
                            ranks = [
                                ((1,), s) if v is None else ((0, -v), s)
                                for s, v in enumerate(col0, seq)
                            ]
                    else:
                        ranks = []
                        for i in range(n):
                            parts = []
                            for col, ascending in zip(key_cols, directions):
                                v = col[i]
                                if v is None:
                                    parts.append((1,))
                                elif ascending:
                                    parts.append((0, v))
                                else:
                                    parts.append((0, -v))
                            parts.append(seq + i)
                            ranks.append(tuple(parts))
                    start = 0
                    while len(heap) < keep and start < n:
                        values = tuple(
                            None if col is None else col[start]
                            for col in value_cols
                        )
                        key = tuple(col[start] for col in key_cols)
                        heapq.heappush(
                            heap,
                            _TopEntry(ranks[start], key, seq + start, values),
                        )
                        start += 1
                    if len(heap) >= keep:
                        worst_rank = heap[0].rank
                        for i in range(start, n):
                            rank = ranks[i]
                            if rank >= worst_rank:
                                continue
                            values = tuple(
                                None if col is None else col[i]
                                for col in value_cols
                            )
                            key = tuple(col[i] for col in key_cols)
                            heapq.heapreplace(
                                heap, _TopEntry(rank, key, seq + i, values)
                            )
                            worst_rank = heap[0].rank
                            evictions += 1
                    seq += n
                else:
                    for i in range(n):
                        key = tuple(col[i] for col in key_cols)
                        if len(heap) < keep:
                            values = tuple(
                                None if col is None else col[i]
                                for col in value_cols
                            )
                            heapq.heappush(heap, worst_first((key, seq, values)))
                        else:
                            # Compare before materializing row values: losers
                            # (the common case once the heap is warm) never
                            # decode their payload columns.
                            if heap[0] < worst_first((key, seq, ())):
                                values = tuple(
                                    None if col is None else col[i]
                                    for col in value_cols
                                )
                                heapq.heapreplace(
                                    heap, worst_first((key, seq, values))
                                )
                                evictions += 1
                        seq += 1
                if ctx.track_mem:
                    ctx.track_memory(self, 64 + entry_width * len(heap))
        finally:
            stream.close()
        self.heap_evictions = evictions
        if evictions:
            if ctx.m_topn is not None:
                ctx.m_topn.inc(evictions)
            if ctx.collector is not None:
                ctx.collector.record_evictions(self, evictions)
        if fast:
            ordered = sorted(heap, key=lambda e: e.rank)
            entries = [(e.key, e.seq, e.values) for e in ordered]
        else:
            entries = [wrapped.obj for wrapped in sorted(heap, reverse=True)]
        entries = entries[self.offset:self.offset + self.limit]
        if not entries:
            return
        columns = {
            cid: [entry[2][pos] for entry in entries]
            for pos, cid in enumerate(out_cids)
        }
        yield from _rebatch(Chunk(columns, len(entries)), ctx.batch_size)


class HashAggregateExec(PhysicalOp):
    """Pipeline breaker: per-batch accumulation into hashed group states."""

    blocking = True

    def __init__(self, logical: ops.Aggregate, child: PhysicalOp):
        super().__init__(logical, (child,))

    def name(self) -> str:
        return "HashAggregate"

    def strategy(self) -> str:
        op = self.logical
        aggs = ", ".join(str(call) for _, call in op.aggs)
        return f"keys={len(op.group_cids)}; {aggs}"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        groups: dict[tuple, int] = {}
        order: list[tuple] = []
        states: list[list[dict]] = [[] for _ in op.aggs]  # per agg, per group
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                # One decode per batch: group keys become output values, so
                # (unlike join keys) they cannot stay dictionary-coded, but
                # decoding a code vector once beats per-row __getitem__
                # dictionary hops in the accumulation loop below.
                key_cols = [
                    decode_column(chunk.column(cid)) for cid in op.group_cids
                ]
                agg_inputs = [
                    None if call.arg is None
                    else decode_column(evaluate(call.arg, chunk))
                    for _, call in op.aggs
                ]
                for i in range(chunk.row_count):
                    key = tuple(col[i] for col in key_cols)
                    slot = groups.get(key)
                    if slot is None:
                        slot = len(order)
                        groups[key] = slot
                        order.append(key)
                        for state in states:
                            state.append(_new_state())
                    for agg_index, (_, call) in enumerate(op.aggs):
                        inputs = agg_inputs[agg_index]
                        value = None if inputs is None else inputs[i]
                        _accumulate(states[agg_index][slot], call, value)
                if ctx.track_mem:
                    # Per-group: key tuple + one state dict per aggregate.
                    per_group = 100 + 120 * max(1, len(op.aggs))
                    ctx.track_memory(self, 64 + per_group * len(order))
        finally:
            stream.close()

        if not op.group_cids and not order:
            # Global aggregate over empty input: one all-default group.
            order.append(())
            for state in states:
                state.append(_new_state())

        columns: dict[int, list] = {}
        for pos, cid in enumerate(op.group_cids):
            columns[cid] = maybe_typed([key[pos] for key in order])
        for agg_index, (col, call) in enumerate(op.aggs):
            columns[col.cid] = maybe_typed([
                _finalize(states[agg_index][g], call) for g in range(len(order))
            ])
        yield from _rebatch(Chunk(columns, len(order)), ctx.batch_size)


class UnionAllExec(PhysicalOp):
    """Streams each child in turn, remapping child cids to output cids."""

    def __init__(self, logical: ops.UnionAll, children, positions):
        super().__init__(logical, tuple(children))
        self.positions = tuple(positions)

    def name(self) -> str:
        return "UnionAll"

    def strategy(self) -> str:
        return f"{len(self.children)} children"

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        for child, mapping in zip(self.children, op.child_maps):
            stream = child.execute(ctx)
            try:
                for chunk in stream:
                    yield Chunk(
                        {
                            op.output[pos].cid: chunk.column(mapping[pos])
                            for pos in self.positions
                        },
                        chunk.row_count,
                    )
            finally:
                stream.close()


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


class HashJoinExec(PhysicalOp):
    """Hash join with a cost-chosen build side.

    - ``build=right``: build over the right input, stream the left — output
      batches preserve anchor (left) order, with LEFT OUTER NULL-extension
      inline, so the §4.4 top-N pushdown's order contract holds for free.
    - ``build=left``: build over the (smaller, e.g. pushed-limit) left,
      stream the right, buffer matches, and re-emit in anchor order.  When
      the declared cardinality bounds the right side to at most one match
      per key, the probe stops as soon as every build key has matched —
      the join-side analogue of LIMIT's early termination.
    - SEMI/ANTI probes build key sets from the right and stream the left;
      an uncorrelated EXISTS pulls right batches only until the first row.
    """

    blocking = True  # at least one side is always materialized

    def __init__(
        self, logical: ops.Join, left: PhysicalOp, right: PhysicalOp, *,
        equi, residual, build_side: str, left_cids, right_cids,
        early_out: bool = False,
    ):
        super().__init__(logical, (left, right))
        self.equi = tuple(equi)
        self.residual = tuple(residual)
        self.build_side = build_side
        self.left_cids = tuple(left_cids)
        self.right_cids = tuple(right_cids)
        self.early_out = early_out

    def name(self) -> str:
        join_type = self.logical.join_type
        if join_type is ops.JoinType.SEMI:
            return "HashSemiJoin"
        if join_type is ops.JoinType.ANTI:
            return "HashAntiJoin"
        if not self.equi and self.logical.condition is None:
            return "CrossJoin"
        if not self.equi:
            return "NestedLoopJoin"
        return "HashJoin"

    def strategy(self) -> str:
        parts = []
        if self.logical.join_type is ops.JoinType.LEFT_OUTER:
            parts.append("left-outer")
        if self.equi:
            parts.append(f"build={self.build_side}")
        if self.early_out:
            parts.append("early-out")
        if self.residual:
            parts.append("residual")
        if self.logical.null_aware:
            parts.append("null-aware")
        return " ".join(parts)

    def _run(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.logical.join_type in (ops.JoinType.SEMI, ops.JoinType.ANTI):
            yield from self._run_semi_anti(ctx)
        elif not self.equi:
            yield from self._run_cross(ctx)
        elif self.build_side == "right":
            yield from self._run_build_right(ctx)
        else:
            yield from self._run_build_left(ctx)

    # -- equi, build right: stream the anchor ---------------------------

    def _run_build_right(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[1], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, build.estimated_bytes())
        memos: dict = {}
        table = self._build_table(build, [re for _, re in self.equi], memos)
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if not table and not left_outer:
            return  # inner join against an empty/all-NULL build: no rows
        probe_exprs = [le for le, _ in self.equi]
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                readers = _key_readers(probe_exprs, chunk, memos)
                lidx: list[int] = []
                ridx: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(read(i) for read in readers)
                    if any(k is None for k in key):
                        continue
                    for j in table.get(key, ()):
                        lidx.append(i)
                        ridx.append(j)
                if self.residual and lidx:
                    lidx, ridx = self._apply_residual(chunk, build, lidx, ridx)
                if left_outer:
                    lidx, ridx = _null_extend(lidx, ridx, chunk.row_count)
                if lidx:
                    yield self._combine(chunk, build, lidx, ridx)
        finally:
            stream.close()

    # -- equi, build left: buffer and re-emit in anchor order -----------

    def _run_build_left(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[0], ctx)
        build_bytes = build.estimated_bytes() if ctx.track_mem else 0
        if ctx.track_mem:
            ctx.track_memory(self, build_bytes)
        memos: dict = {}
        table = self._build_table(build, [le for le, _ in self.equi], memos)
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if build.row_count == 0:
            return
        pairs: list[tuple[int, int]] = []  # (left row, buffered right pos)
        buffered: dict[int, list] = {cid: [] for cid in self.right_cids}
        buffered_rows = 0
        remaining = set(table) if (self.early_out and table) else None
        probe_exprs = [re for _, re in self.equi]
        stream = self.children[1].execute(ctx)
        try:
            for chunk in stream:
                readers = _key_readers(probe_exprs, chunk, memos)
                lidx: list[int] = []
                jidx: list[int] = []
                for j in range(chunk.row_count):
                    key = tuple(read(j) for read in readers)
                    if any(k is None for k in key):
                        continue
                    hits = table.get(key)
                    if not hits:
                        continue
                    for i in hits:
                        lidx.append(i)
                        jidx.append(j)
                    if remaining is not None:
                        remaining.discard(key)
                if self.residual and lidx:
                    lidx, jidx = self._apply_residual(build, chunk, lidx, jidx)
                chunk_cols = [
                    (cid, chunk.column(cid) if chunk.has_column(cid) else None)
                    for cid in self.right_cids
                ]
                for i, j in zip(lidx, jidx):
                    pairs.append((i, buffered_rows))
                    for cid, column in chunk_cols:
                        buffered[cid].append(None if column is None else column[j])
                    buffered_rows += 1
                if ctx.track_mem:
                    ctx.track_memory(
                        self,
                        build_bytes
                        + Chunk(buffered, buffered_rows).estimated_bytes(),
                    )
                if remaining is not None and not remaining:
                    # Declared right-unique: every build key has found its
                    # (single) match — stop pulling the probe side.
                    break
        finally:
            stream.close()
        right = Chunk(buffered, buffered_rows)
        pairs.sort()  # anchor order: (left row id, right arrival order)
        lidx = [i for i, _ in pairs]
        ridx = [p for _, p in pairs]
        if left_outer:
            lidx, ridx = _null_extend(lidx, ridx, build.row_count)
        yield from _rebatch(self._combine(build, right, lidx, ridx), ctx.batch_size)

    # -- no equi keys: cross/theta --------------------------------------

    def _run_cross(self, ctx: ExecContext) -> Iterator[Chunk]:
        build = _materialize(self.children[1], ctx)
        if ctx.track_mem:
            ctx.track_memory(self, build.estimated_bytes())
        left_outer = self.logical.join_type is ops.JoinType.LEFT_OUTER
        if build.row_count == 0 and not left_outer:
            return
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                count = build.row_count
                lidx = [i for i in range(chunk.row_count) for _ in range(count)]
                ridx = list(range(count)) * chunk.row_count
                if self.residual and lidx:
                    lidx, ridx = self._apply_residual(chunk, build, lidx, ridx)
                if left_outer:
                    lidx, ridx = _null_extend(lidx, ridx, chunk.row_count)
                if lidx:
                    yield self._combine(chunk, build, lidx, ridx)
        finally:
            stream.close()

    # -- SEMI / ANTI ----------------------------------------------------

    def _run_semi_anti(self, ctx: ExecContext) -> Iterator[Chunk]:
        op = self.logical
        is_anti = op.join_type is ops.JoinType.ANTI

        if op.condition is None:  # uncorrelated EXISTS: all-or-nothing
            has_row = False
            right_stream = self.children[1].execute(ctx)
            try:
                for chunk in right_stream:
                    if chunk.row_count:
                        has_row = True
                        break  # short-circuit: first batch answers EXISTS
            finally:
                right_stream.close()
            if has_row == is_anti:
                return  # left side never executes
            left_stream = self.children[0].execute(ctx)
            try:
                yield from left_stream
            finally:
                left_stream.close()
            return

        if not self.equi or self.residual:
            raise ExecutionError(
                "SEMI/ANTI joins support plain equi conditions only"
            )
        members: set[tuple] = set()
        right_has_null = False
        memos: dict = {}
        build_exprs = [re for _, re in self.equi]
        right_stream = self.children[1].execute(ctx)
        try:
            for chunk in right_stream:
                readers = _key_readers(build_exprs, chunk, memos)
                for j in range(chunk.row_count):
                    key = tuple(read(j) for read in readers)
                    if any(k is None for k in key):
                        right_has_null = True
                        continue
                    members.add(key)
        finally:
            right_stream.close()
        if ctx.track_mem:
            ctx.track_memory(self, 64 + 100 * len(members))

        null_aware = op.null_aware
        probe_exprs = [le for le, _ in self.equi]
        stream = self.children[0].execute(ctx)
        try:
            for chunk in stream:
                readers = _key_readers(probe_exprs, chunk, memos)
                keep: list[int] = []
                for i in range(chunk.row_count):
                    key = tuple(read(i) for read in readers)
                    if any(k is None for k in key):
                        matched = None  # UNKNOWN
                    elif key in members:
                        matched = True
                    elif null_aware and right_has_null:
                        matched = None  # could match a NULL member: UNKNOWN
                    else:
                        matched = False
                    if (matched is True) if not is_anti else (matched is False):
                        keep.append(i)
                if len(keep) == chunk.row_count:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)
        finally:
            stream.close()

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def _build_table(
        build: Chunk, key_exprs, memos: dict
    ) -> dict[tuple, list[int]]:
        if build.row_count == 0:
            return {}
        readers = _key_readers(key_exprs, build, memos)
        table: dict[tuple, list[int]] = {}
        for j in range(build.row_count):
            key = tuple(read(j) for read in readers)
            if any(k is None for k in key):
                continue
            table.setdefault(key, []).append(j)
        return table

    def _combine(self, left_chunk: Chunk, right_chunk: Chunk,
                 lidx: list[int], ridx: list[int]) -> Chunk:
        columns: dict[int, object] = {}
        for cid in self.left_cids:
            if left_chunk.has_column(cid):
                columns[cid] = take_column(left_chunk.column(cid), lidx)
        for cid in self.right_cids:
            if right_chunk.has_column(cid):
                columns[cid] = pad_take_column(right_chunk.column(cid), ridx)
            else:
                columns[cid] = [None] * len(ridx)
        return Chunk(columns, len(lidx))

    def _apply_residual(self, left_chunk: Chunk, right_chunk: Chunk,
                        lidx: list[int], ridx: list[int]):
        combined = self._residual_combine(left_chunk, right_chunk, lidx, ridx)
        keep = [True] * len(lidx)
        for conjunct in self.residual:
            values = evaluate(conjunct, combined)
            for p, value in enumerate(values):
                if value is not True:
                    keep[p] = False
        return (
            [l for l, k in zip(lidx, keep) if k],
            [r for r, k in zip(ridx, keep) if k],
        )

    def _residual_combine(self, left_chunk, right_chunk, lidx, ridx) -> Chunk:
        # Unlike _combine this keys off whatever columns the chunks carry:
        # the build-left path probes with (build, right chunk) arguments.
        columns: dict[int, object] = {}
        for cid in left_chunk.column_ids():
            columns[cid] = take_column(left_chunk.column(cid), lidx)
        for cid in right_chunk.column_ids():
            columns[cid] = pad_take_column(right_chunk.column(cid), ridx)
        return Chunk(columns, len(lidx))


def _null_extend(lidx: list[int], ridx: list[int],
                 row_count: int) -> tuple[list[int], list[int]]:
    """LEFT OUTER NULL-extension inline in anchor order.

    ``lidx`` must be ascending (probe order); unmatched anchor rows are
    merged in place with a ``-1`` right index rather than appended at the
    end, so outer-join output stays anchor-ordered batch by batch.
    """
    if len(lidx) == row_count and all(l == i for i, l in enumerate(lidx)):
        return lidx, ridx  # every row matched exactly once
    out_l: list[int] = []
    out_r: list[int] = []
    pos = 0
    total = len(lidx)
    for i in range(row_count):
        matched = False
        while pos < total and lidx[pos] == i:
            out_l.append(i)
            out_r.append(ridx[pos])
            pos += 1
            matched = True
        if not matched:
            out_l.append(i)
            out_r.append(-1)
    return out_l, out_r


# ---------------------------------------------------------------------------
# shared kernels (also used by the logical-side helpers and tests)
# ---------------------------------------------------------------------------


def _equi_pair(
    conjunct: Expr, left_cids: frozenset[int], right_cids: frozenset[int]
) -> tuple[Expr, Expr] | None:
    if not (isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2):
        return None
    a, b = conjunct.args
    a_refs = referenced_cids(a)
    b_refs = referenced_cids(b)
    if a_refs and a_refs <= left_cids and b_refs and b_refs <= right_cids:
        return (a, b)
    if a_refs and a_refs <= right_cids and b_refs and b_refs <= left_cids:
        return (b, a)
    return None


def _key_reader(col, memos: dict):
    """``row -> normalized join-key value`` for one key column.

    Dictionary-coded columns normalize each distinct *code* once; the memo
    is keyed by dictionary identity and shared across every batch of the
    same fragment, so for repeated keys the per-row work is a code lookup —
    the effective code-comparison path — and full decoding happens only on
    dictionary mismatch (different fragments) or for first-seen codes.
    """
    if isinstance(col, DictVector):
        memo = memos.get(id(col.dictionary))
        if memo is None:
            memo = memos[id(col.dictionary)] = {}
        codes = col.codes
        dictionary = col.dictionary

        def read(i: int, _codes=codes, _dict=dictionary, _memo=memo):
            code = _codes[i]
            if code < 0:
                return None
            value = _memo.get(code)
            if value is None:  # dictionaries never hold None (NULL = -1)
                value = _memo[code] = _norm_key(_dict[code])
            return value

        return read

    def read(i: int, _col=col):
        return _norm_key(_col[i])

    return read


def _key_readers(exprs, chunk: Chunk, memos: dict) -> list:
    """Per-row key readers for a batch, tallying code-level comparisons."""
    cols = [evaluate(expr, chunk) for expr in exprs]
    coded = sum(1 for col in cols if isinstance(col, DictVector))
    if coded:
        kernels.note_dict_compares(coded * chunk.row_count)
    return [_key_reader(col, memos) for col in cols]


def _norm_key(value: object) -> object:
    """Normalize join-key values so 1 == Decimal('1') hash-match."""
    import decimal

    if isinstance(value, decimal.Decimal):
        if value == value.to_integral_value():
            return int(value)
        return float(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


# -- aggregate state ---------------------------------------------------------


def _new_state() -> dict:
    return {"count": 0, "sum": None, "min": None, "max": None, "distinct": None}


def _accumulate(state: dict, call: AggCall, value: object) -> None:
    if call.func == "COUNT_STAR":
        state["count"] += 1
        return
    if value is None:
        return
    if call.distinct:
        if state["distinct"] is None:
            state["distinct"] = set()
        state["distinct"].add(value)
        return
    state["count"] += 1
    if call.func in ("SUM", "AVG"):
        state["sum"] = value if state["sum"] is None else state["sum"] + value
    if call.func == "MIN":
        state["min"] = value if state["min"] is None else min(state["min"], value)
    if call.func == "MAX":
        state["max"] = value if state["max"] is None else max(state["max"], value)


def _finalize(state: dict, call: AggCall) -> object:
    import decimal

    if call.func == "COUNT_STAR":
        return state["count"]
    if call.distinct:
        values = state["distinct"] or set()
        if call.func == "COUNT":
            return len(values)
        if not values:
            return None
        if call.func == "SUM":
            return sum(values)
        if call.func == "MIN":
            return min(values)
        if call.func == "MAX":
            return max(values)
        if call.func == "AVG":
            total = sum(values)
            if isinstance(total, decimal.Decimal):
                return total / decimal.Decimal(len(values))
            return total / len(values)
    if call.func == "COUNT":
        return state["count"]
    if call.func == "SUM":
        return state["sum"]
    if call.func == "MIN":
        return state["min"]
    if call.func == "MAX":
        return state["max"]
    if call.func == "AVG":
        if state["count"] == 0:
            return None
        total = state["sum"]
        if isinstance(total, decimal.Decimal):
            return total / decimal.Decimal(state["count"])
        return total / state["count"]
    raise ExecutionError(f"unknown aggregate {call.func!r}")

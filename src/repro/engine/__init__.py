"""Columnar execution engine.

Executes (optimized) logical plans directly: each operator materializes a
:class:`repro.engine.chunk.Chunk` (a dict of cid -> value list).  Scans read
only the columns referenced anywhere in the plan, which together with the
optimizer's projection pruning gives the late-materialization behaviour the
paper attributes to columnar engines.
"""

from .chunk import Chunk  # noqa: F401
from .executor import Executor, QueryResult  # noqa: F401

"""Operational tools accompanying the engine."""

from .cardinality_check import CardinalityReport, verify_join_cardinalities  # noqa: F401

"""Join-cardinality verification tool (paper §7.3).

Declared cardinalities (``left outer many to one join``) are *trusted, not
enforced*: "To mitigate the risk, SAP HANA offers a tool that verifies
whether the specified join cardinality in a query aligns with the actual
data."  This module is that tool: it binds a query, finds every join with a
declared cardinality, and checks the claim against the current data.

For a declared right bound of ONE / EXACT ONE over equi columns, the check
is: no two augmenter rows share the same non-NULL join-key tuple (and, for
EXACT ONE, every anchor key finds a match).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.binder import Binder
from ..algebra.ops import Join, LogicalOp
from ..algebra.properties import equi_join_cids
from ..database import Database
from ..engine.executor import Executor
from ..sql import parse_statement
from ..sql.ast import CardinalityBound, Query


@dataclass
class CardinalityViolation:
    """One declared-cardinality claim contradicted by the data."""

    join_label: str
    kind: str          # "duplicate_key" | "missing_match"
    detail: str
    sample_key: tuple = ()


@dataclass
class CardinalityReport:
    """Result of verifying one query's declared join cardinalities."""

    joins_checked: int = 0
    violations: list[CardinalityViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.joins_checked} declared join(s) verified against the data"
        lines = [f"{len(self.violations)} violation(s) in {self.joins_checked} declared join(s):"]
        for violation in self.violations:
            lines.append(f"  - [{violation.kind}] {violation.join_label}: {violation.detail}")
        return "\n".join(lines)


def verify_join_cardinalities(db: Database, sql: str) -> CardinalityReport:
    """Verify every declared join cardinality in ``sql`` against the data."""
    statement = parse_statement(sql)
    assert isinstance(statement, Query), "expected a query"
    plan = Binder(db.catalog).bind_query(statement)
    report = CardinalityReport()
    executor = Executor(db.catalog)
    txn = db.begin()
    try:
        for node in plan.walk():
            if isinstance(node, Join) and node.declared is not None:
                report.joins_checked += 1
                _check_join(node, executor, txn, report)
    finally:
        db.commit(txn)
    return report


def _check_join(join: Join, executor: Executor, txn, report: CardinalityReport) -> None:
    left_equi, right_equi = equi_join_cids(join)
    label = join.label()
    if not right_equi:
        report.violations.append(
            CardinalityViolation(
                label, "missing_match",
                "declared cardinality on a join without plain equi columns "
                "cannot be verified", (),
            )
        )
        return
    declared = join.declared
    assert declared is not None

    if declared.right in (CardinalityBound.ONE, CardinalityBound.EXACT_ONE):
        right_rows = executor.execute(join.right, txn)
        keys = _key_tuples(right_rows, join.right, right_equi)
        seen: set[tuple] = set()
        duplicate = None
        for key in keys:
            if None in key:
                continue
            if key in seen:
                duplicate = key
                break
            seen.add(key)
        if duplicate is not None:
            report.violations.append(
                CardinalityViolation(
                    label, "duplicate_key",
                    f"right side has multiple rows for key {duplicate!r} "
                    f"but was declared ... TO {declared.right.value}",
                    duplicate,
                )
            )
        if declared.right is CardinalityBound.EXACT_ONE:
            left_rows = executor.execute(join.left, txn)
            left_keys = _key_tuples(left_rows, join.left, left_equi)
            missing = next(
                (k for k in left_keys if None not in k and k not in seen), None
            )
            if missing is not None:
                report.violations.append(
                    CardinalityViolation(
                        label, "missing_match",
                        f"anchor key {missing!r} has no match but the join was "
                        "declared ... TO EXACT ONE",
                        missing,
                    )
                )


def _key_tuples(result, op: LogicalOp, cids: list[int]) -> list[tuple]:
    positions = []
    for cid in cids:
        for index, col in enumerate(op.output):
            if col.cid == cid:
                positions.append(index)
                break
    return [tuple(row[p] for p in positions) for row in result.rows]

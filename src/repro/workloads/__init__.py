"""Workloads: schemas, deterministic data generators, and the paper's
query suite.

- :mod:`repro.workloads.tpch` — the TPC-H subset used by Fig. 5 (§4.3):
  primary keys as in the benchmark, foreign keys omitted;
- :mod:`repro.workloads.s4` — S/4-style sales-order data for the §7
  experiments (precision loss, expression macros, declared cardinality);
- :mod:`repro.workloads.queries` — every query the paper evaluates
  (UAJ 1..1b, Fig. 6, Fig. 10a-c, Fig. 12a/b, Fig. 13a/b), with the
  expected per-system outcomes of Tables 1-4.
"""

from .tpch import create_tpch_schema, load_tpch  # noqa: F401
from .s4 import create_sales_schema, load_sales  # noqa: F401
from . import queries  # noqa: F401

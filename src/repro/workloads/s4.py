"""S/4-style sales data for the §7 experiments.

- ``salesorderitem``: line items with decimal prices for the §7.1
  precision-loss experiment (tax/rounding per line item vs. once per
  aggregate) and §7.2 macro examples;
- ``exchangerate``: date-dependent currency conversion, the paper's other
  §7.1 rounding scenario;
- ``businessplace``: a dimension WITHOUT declared uniqueness but with unique
  data, the §7.3 declared-cardinality scenario (apps avoid constraints and
  validate at transaction end, §4.5).
"""

from __future__ import annotations

import random
from decimal import Decimal

from ..database import Database


def create_sales_schema(db: Database) -> None:
    db.execute(
        "create table salesorderitem ("
        "so_id int not null, so_item int not null, "
        "material varchar(18), plant_id int not null, place_id int not null, "
        "price decimal(15,2), quantity int, currency varchar(3), "
        "orderdate date, primary key (so_id, so_item))"
    )
    db.execute(
        "create table exchangerate ("
        "fromcurr varchar(3) not null, ratedate date not null, "
        "rate decimal(15,6), primary key (fromcurr, ratedate))"
    )
    # Deliberately constraint-free: uniqueness of place_id holds in the
    # data but is not declared (§7.3).
    db.execute(
        "create table businessplace (place_id int, place_name varchar(40), region varchar(10))"
    )


def load_sales(db: Database, orders: int = 2000, seed: int = 11) -> int:
    """Load ``orders`` sales orders (1-4 items each); returns item count."""
    rng = random.Random(seed)
    currencies = ["USD", "EUR", "JPY", "GBP"]
    places = 50

    db.bulk_load(
        "businessplace",
        [(i, f"Place {i}", f"R{i % 7}") for i in range(places)],
    )
    rate_rows = []
    for currency in currencies:
        for day in range(1, 29):
            rate_rows.append(
                (currency, f"2025-06-{day:02d}", Decimal(rng.randint(800000, 1200000)) / 1000000)
            )
    db.bulk_load("exchangerate", rate_rows)

    item_rows = []
    for so in range(orders):
        for item in range(1, rng.randint(1, 4) + 1):
            item_rows.append(
                (
                    so,
                    item,
                    f"MAT{rng.randint(0, 500):05d}",
                    rng.randrange(20),
                    rng.randrange(places),
                    Decimal(rng.randint(100, 9999999)) / 100,
                    rng.randint(1, 50),
                    currencies[so % 4],
                    f"2025-06-{1 + so % 28:02d}",
                )
            )
    db.bulk_load("salesorderitem", item_rows)
    return len(item_rows)

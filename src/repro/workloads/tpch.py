"""TPC-H subset schema and deterministic data generator.

The paper's Fig. 5 experiment (§4.3) creates "a TPC-H schema with primary
keys" and notes that the "optional foreign-key constraints are omitted" —
deliberately, because the SAP ecosystem avoids FKs (§4.5) and the UAJ
derivations under test rely on uniqueness, not referential integrity.  We
reproduce exactly that: PKs only; ``with_foreign_keys=True`` adds them for
the AJ 1a tests.

The generator is a scaled-down, seeded analog of dbgen: value distributions
are simplified but referential relationships hold (every ``l_orderkey``
exists in orders, etc.), which the execution-correctness tests rely on.
"""

from __future__ import annotations

import random
from decimal import Decimal

from ..catalog.schema import ForeignKey
from ..database import Database

_DDL = [
    "create table region (r_regionkey int primary key, r_name varchar(25), r_comment varchar(152))",
    "create table nation (n_nationkey int primary key, n_name varchar(25), n_regionkey int not null, n_comment varchar(152))",
    "create table customer (c_custkey int primary key, c_name varchar(25), c_address varchar(40), c_nationkey int not null, c_phone varchar(15), c_acctbal decimal(15,2), c_mktsegment varchar(10))",
    "create table supplier (s_suppkey int primary key, s_name varchar(25), s_address varchar(40), s_nationkey int not null, s_acctbal decimal(15,2))",
    "create table part (p_partkey int primary key, p_name varchar(55), p_brand varchar(10), p_type varchar(25), p_size int, p_retailprice decimal(15,2))",
    "create table partsupp (ps_partkey int not null, ps_suppkey int not null, ps_availqty int, ps_supplycost decimal(15,2), primary key (ps_partkey, ps_suppkey))",
    "create table orders (o_orderkey int primary key, o_custkey int not null, o_orderstatus varchar(1), o_totalprice decimal(15,2), o_orderdate date, o_orderpriority varchar(15))",
    "create table lineitem (l_orderkey int not null, l_linenumber int not null, l_partkey int not null, l_suppkey int not null, l_quantity decimal(15,2), l_extendedprice decimal(15,2), l_discount decimal(15,2), l_tax decimal(15,2), l_returnflag varchar(1), l_shipdate date, primary key (l_orderkey, l_linenumber))",
]

_FOREIGN_KEYS = {
    "nation": [ForeignKey(("n_regionkey",), "region", ("r_regionkey",))],
    "customer": [ForeignKey(("c_nationkey",), "nation", ("n_nationkey",))],
    "supplier": [ForeignKey(("s_nationkey",), "nation", ("n_nationkey",))],
    "orders": [ForeignKey(("o_custkey",), "customer", ("c_custkey",))],
    "lineitem": [
        ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
    ],
}

TABLES = [
    "region", "nation", "customer", "supplier", "part", "partsupp",
    "orders", "lineitem",
]


def create_tpch_schema(db: Database, with_foreign_keys: bool = False) -> None:
    """Create the TPC-H subset tables (PKs always; FKs optional)."""
    for ddl in _DDL:
        db.execute(ddl)
    if with_foreign_keys:
        for table, fks in _FOREIGN_KEYS.items():
            db.catalog.table_schema(table).foreign_keys.extend(fks)


def load_tpch(db: Database, scale: float = 0.01, seed: int = 20250607) -> dict[str, int]:
    """Load deterministic data; ``scale=1.0`` would be ~150k customers.

    Returns a table -> row-count map.
    """
    rng = random.Random(seed)
    counts: dict[str, int] = {}

    regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
    db.bulk_load("region", [(i, name, f"region {name}") for i, name in enumerate(regions)])
    counts["region"] = len(regions)

    n_nations = 25
    db.bulk_load(
        "nation",
        [(i, f"NATION{i:02d}", i % 5, f"nation {i}") for i in range(n_nations)],
    )
    counts["nation"] = n_nations

    n_customers = max(int(150_000 * scale), 10)
    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
    db.bulk_load(
        "customer",
        [
            (
                i,
                f"Customer#{i:09d}",
                f"Addr {i}",
                rng.randrange(n_nations),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                Decimal(rng.randint(-99999, 999999)) / 100,
                segments[i % 5],
            )
            for i in range(n_customers)
        ],
    )
    counts["customer"] = n_customers

    n_suppliers = max(int(10_000 * scale), 5)
    db.bulk_load(
        "supplier",
        [
            (
                i,
                f"Supplier#{i:09d}",
                f"SAddr {i}",
                rng.randrange(n_nations),
                Decimal(rng.randint(-99999, 999999)) / 100,
            )
            for i in range(n_suppliers)
        ],
    )
    counts["supplier"] = n_suppliers

    n_parts = max(int(200_000 * scale), 20)
    db.bulk_load(
        "part",
        [
            (
                i,
                f"part name {i}",
                f"Brand#{i % 25}",
                f"TYPE {i % 150}",
                1 + i % 50,
                Decimal(90000 + (i % 20000)) / 100,
            )
            for i in range(n_parts)
        ],
    )
    counts["part"] = n_parts

    partsupp_rows = []
    for part in range(n_parts):
        for k in range(2):
            partsupp_rows.append(
                (
                    part,
                    (part + k * 7) % n_suppliers,
                    rng.randint(1, 9999),
                    Decimal(rng.randint(100, 100000)) / 100,
                )
            )
    db.bulk_load("partsupp", partsupp_rows)
    counts["partsupp"] = len(partsupp_rows)

    n_orders = max(int(1_500_000 * scale) // 10, 30)
    statuses = ["O", "F", "P"]
    db.bulk_load(
        "orders",
        [
            (
                i,
                rng.randrange(n_customers),
                statuses[i % 3],
                Decimal(rng.randint(1000, 50000000)) / 100,
                f"199{2 + i % 7}-{1 + i % 12:02d}-{1 + i % 28:02d}",
                f"{1 + i % 5}-PRIORITY",
            )
            for i in range(n_orders)
        ],
    )
    counts["orders"] = n_orders

    lineitem_rows = []
    flags = ["N", "R", "A"]
    for order in range(n_orders):
        for line in range(1, rng.randint(1, 5) + 1):
            part = rng.randrange(n_parts)
            lineitem_rows.append(
                (
                    order,
                    line,
                    part,
                    (part + 7) % n_suppliers,
                    Decimal(rng.randint(100, 5000)) / 100,
                    Decimal(rng.randint(90000, 9000000)) / 100,
                    Decimal(rng.randint(0, 10)) / 100,
                    Decimal(rng.randint(0, 8)) / 100,
                    flags[order % 3],
                    f"199{2 + order % 7}-{1 + line % 12:02d}-{1 + order % 28:02d}",
                )
            )
    db.bulk_load("lineitem", lineitem_rows)
    counts["lineitem"] = len(lineitem_rows)
    return counts

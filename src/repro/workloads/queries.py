"""The paper's evaluation query suite and expected per-system outcomes.

Each entry names the paper artifact it reproduces.  The expected matrices
are transcribed from Tables 1-4 (system order: HANA, PostgreSQL, System X,
System Y, System Z); benchmarks *run* the optimizer under each profile and
compare the observed plan against these entries.
"""

from __future__ import annotations

from dataclasses import dataclass

PROFILE_ORDER = ["hana", "postgres", "system_x", "system_y", "system_z"]


@dataclass(frozen=True)
class SuiteQuery:
    """One evaluated query: SQL over the TPC-H/VDM schemas + expectations."""

    name: str
    sql: str
    expected: str  # e.g. "YY-YY", aligned with PROFILE_ORDER
    paper_ref: str


# ---------------------------------------------------------------------------
# Table 1 / Fig. 5 — UAJ optimization (TPC-H schema, PKs, no FKs)
# ---------------------------------------------------------------------------

UAJ_SUITE = [
    SuiteQuery(
        "UAJ 1",
        # AJ 2a-1: join field unique via the augmenter's primary key.
        "select o.o_orderkey, o.o_totalprice from orders o "
        "left outer join customer c on o.o_custkey = c.c_custkey",
        "YY-YY",
        "Fig. 5 UAJ 1 / Table 1",
    ),
    SuiteQuery(
        "UAJ 2",
        # AJ 2a-2: join field unique as a grouping key.
        "select o.o_orderkey from orders o left outer join "
        "(select l_orderkey, sum(l_quantity) as q from lineitem group by l_orderkey) s "
        "on o.o_orderkey = s.l_orderkey",
        "YY--Y",
        "Fig. 5 UAJ 2 / Table 1",
    ),
    SuiteQuery(
        "UAJ 3",
        # AJ 2a-3: (l_orderkey, l_linenumber) PK + l_linenumber = 1 filter.
        "select o.o_orderkey from orders o left outer join "
        "(select l_orderkey, l_extendedprice from lineitem where l_linenumber = 1) f "
        "on o.o_orderkey = f.l_orderkey",
        "YY-YY",
        "Fig. 5 UAJ 3 / Table 1",
    ),
    SuiteQuery(
        "UAJ 1a",
        # UAJ 1 + a non-duplicating join inside the augmenter (table side).
        "select o.o_orderkey from orders o left outer join "
        "(select c.c_custkey, n.n_name from customer c "
        " join nation n on c.c_nationkey = n.n_nationkey) cn "
        "on o.o_custkey = cn.c_custkey",
        "Y---Y",
        "Fig. 5 UAJ 1a / Table 1",
    ),
    SuiteQuery(
        "UAJ 2a",
        # UAJ 2 + a non-duplicating join inside the augmenter (group-by side).
        "select o.o_orderkey from orders o left outer join "
        "(select s.l_orderkey, s.q, o2.o_totalprice from "
        " (select l_orderkey, sum(l_quantity) as q from lineitem group by l_orderkey) s "
        " join orders o2 on s.l_orderkey = o2.o_orderkey) x "
        "on o.o_orderkey = x.l_orderkey",
        "YY--Y",
        "Fig. 5 UAJ 2a / Table 1",
    ),
    SuiteQuery(
        "UAJ 3a",
        "select o.o_orderkey from orders o left outer join "
        "(select f.l_orderkey, o2.o_totalprice from "
        " (select l_orderkey, l_extendedprice from lineitem where l_linenumber = 1) f "
        " join orders o2 on f.l_orderkey = o2.o_orderkey) x "
        "on o.o_orderkey = x.l_orderkey",
        "Y---Y",
        "Fig. 5 UAJ 3a / Table 1",
    ),
    SuiteQuery(
        "UAJ 1b",
        # UAJ 1 + ORDER BY + LIMIT on the augmenter (both keep uniqueness).
        "select o.o_orderkey from orders o left outer join "
        "(select c_custkey, c_name from customer order by c_acctbal desc limit 100) t "
        "on o.o_custkey = t.c_custkey",
        "Y----",
        "Fig. 5 UAJ 1b / Table 1",
    ),
]

# ---------------------------------------------------------------------------
# Table 2 / Fig. 6 — limit pushdown across an augmentation join
# ---------------------------------------------------------------------------

FIG6_PAGING = SuiteQuery(
    "Fig. 6",
    "select * from orders o left outer join customer c "
    "on o.o_custkey = c.c_custkey limit 100 offset 1",
    "Y----",
    "Fig. 6 / Table 2",
)

# ---------------------------------------------------------------------------
# Table 3 / Fig. 10 — ASJ optimization (self-join on key)
# ---------------------------------------------------------------------------

ASJ_SUITE = [
    SuiteQuery(
        "Fig. 10(a)",
        # Plain self-join on key; augmenter field c_acctbal is USED.
        "select v.c_custkey, v.c_name, c2.c_acctbal from "
        "(select c_custkey, c_name from customer) v "
        "left outer join customer c2 on v.c_custkey = c2.c_custkey",
        "Y----",
        "Fig. 10(a) / Table 3",
    ),
    SuiteQuery(
        "Fig. 10(b)",
        # Anchor is a subquery (join of customer and orders).
        "select vv.c_custkey, vv.o_orderkey, c2.c_acctbal from "
        "(select c.c_custkey, o.o_orderkey from customer c "
        " join orders o on c.c_custkey = o.o_custkey) vv "
        "left outer join customer c2 on vv.c_custkey = c2.c_custkey",
        "Y----",
        "Fig. 10(b) / Table 3",
    ),
    SuiteQuery(
        "Fig. 10(c)",
        # Selection on the augmenter, subsumed by the anchor's selection.
        "select v.c_custkey, v.c_name, c2.c_acctbal from "
        "(select c_custkey, c_name from customer where c_nationkey = 3) v "
        "left outer join (select * from customer where c_nationkey = 3) c2 "
        "on v.c_custkey = c2.c_custkey",
        "Y----",
        "Fig. 10(c) / Table 3",
    ),
]

# A correctness control: the augmenter predicate is NOT subsumed by the
# anchor, so no system may remove the self-join (expected all '-').
ASJ_NEGATIVE = SuiteQuery(
    "Fig. 10(c) control",
    "select v.c_custkey, v.c_name, c2.c_acctbal from "
    "(select c_custkey, c_name from customer) v "
    "left outer join (select * from customer where c_nationkey = 3) c2 "
    "on v.c_custkey = c2.c_custkey",
    "-----",
    "§5.3 non-subsumed selection (must not be removed)",
)

# ---------------------------------------------------------------------------
# Table 4 / Figs. 11-12 — UAJ with Union All
# ---------------------------------------------------------------------------
# The VDM tables ta/td (active/draft analogs) are created by the fixtures:
#   create table ta (key int primary key, a int, ext int)
#   create table td (key int primary key, a int, ext int)

UNION_UAJ_SUITE = [
    SuiteQuery(
        "Fig. 11(a)",
        # Fig. 12a shape: disjoint subsets of one relation.
        "select o.o_orderkey from orders o left outer join "
        "(select o_orderkey, o_totalprice from orders where o_orderstatus = 'O' "
        " union all "
        " select o_orderkey, o_totalprice from orders where o_orderstatus = 'F') u "
        "on o.o_orderkey = u.o_orderkey",
        "Y----",
        "Fig. 12(a) / Table 4 row 'Fig. 11(a)'",
    ),
    SuiteQuery(
        "Fig. 11(b)",
        # Fig. 12b shape: branch-id tagged active/draft union.
        "select o.o_orderkey from orders o left outer join "
        "(select 1 as bid, key, ext from ta "
        " union all "
        " select 2 as bid, key, ext from td) u "
        "on o.o_orderkey = u.key and u.bid = 1",
        "Y----",
        "Fig. 12(b) / Table 4 row 'Fig. 11(b)'",
    ),
]

# ---------------------------------------------------------------------------
# §6.3 / Fig. 13 — ASJ with Union All (incl. the case join)
# ---------------------------------------------------------------------------

FIG13A = SuiteQuery(
    "Fig. 13(a)",
    "select u.key, u.a, t2.ext from "
    "(select key, a from ta where a < 50 "
    " union all "
    " select key, a from ta where a >= 50) u "
    "left outer join ta t2 on u.key = t2.key",
    "Y----",
    "Fig. 13(a): union in the anchor",
)

FIG13B_CASE_JOIN = SuiteQuery(
    "Fig. 13(b) case join",
    "select v.bid, v.key, v.a, u.ext from "
    "(select 1 as bid, key, a from ta union all select 2 as bid, key, a from td) v "
    "case join "
    "(select 1 as bid, key, ext from ta union all select 2 as bid, key, ext from td) u "
    "on v.bid = u.bid and v.key = u.key",
    "Y----",
    "Fig. 13(b) with declared ASJ intent (§6.3)",
)

FIG13B_PLAIN = SuiteQuery(
    "Fig. 13(b) plain",
    FIG13B_CASE_JOIN.sql.replace("case join", "left outer join"),
    "Y----",  # canonical shape: HANA's structural heuristic recognizes it
    "Fig. 13(b) without declared intent (canonical shape)",
)


def all_suites() -> dict[str, list[SuiteQuery]]:
    return {
        "table1": UAJ_SUITE,
        "table2": [FIG6_PAGING],
        "table3": ASJ_SUITE,
        "table4": UNION_UAJ_SUITE,
        "fig13": [FIG13A, FIG13B_CASE_JOIN, FIG13B_PLAIN],
    }

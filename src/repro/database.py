"""The `Database` facade: the library's main entry point.

Example::

    from repro import Database

    db = Database()
    db.execute("create table t (id int primary key, v decimal(15,2))")
    db.execute("insert into t values (1, 10.50), (2, 20.00)")
    result = db.query("select sum(v) from t")
    print(result.rows)          # [(Decimal('30.50'),)]
    print(db.explain("select id from t"))

The optimizer profile (default ``"hana"``) controls which of the paper's
rewrites run — see :mod:`repro.optimizer.profiles` for the Table 1–4
capability models.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .algebra import Binder, explain as explain_plan, plan_stats
from .algebra.binder import RelationBinding, Scope
from .algebra.ops import LogicalOp, Scan
from .catalog import Catalog
from .catalog.schema import (
    ColumnSchema,
    ForeignKey,
    TableSchema,
    UniqueConstraint,
    ViewSchema,
)
from .engine import Chunk, Executor, QueryResult
from .engine.executor import QueryStats
from .engine.eval import evaluate, evaluate_predicate
from .errors import BindError, CatalogError, ExecutionError
from .observability import (
    ExecutionCollector,
    MetricsRegistry,
    QueryTrace,
    RewriteTally,
    SlowQueryLog,
    SpanTracer,
    attach_operator_spans,
)
from .sql import ast, parse_statement
from .storage import ColumnTable, Transaction, TransactionManager, WriteAheadLog


class Database:
    """An embedded HTAP database instance."""

    def __init__(self, profile: str = "hana", wal_enabled: bool = True):
        self.metrics = MetricsRegistry()
        #: Hierarchical span tracer; enabled together with :attr:`tracing`.
        self.spans = SpanTracer()
        #: Ring-buffer slow-query log; set ``slow_queries.threshold_s`` (in
        #: seconds) to start capturing offenders.
        self.slow_queries = SlowQueryLog()
        self.wal = (
            WriteAheadLog(metrics=self.metrics, tracer=self.spans)
            if wal_enabled else None
        )
        self.txn_manager = TransactionManager(
            self.wal, metrics=self.metrics, tracer=self.spans
        )
        self.catalog = Catalog()
        self._executor = Executor(
            self.catalog, metrics=self.metrics, tracer=self.spans
        )
        self._profile_name = profile
        self._tracing = False
        self._last_trace: QueryTrace | None = None
        # Hot-path metric handles, resolved once (registry lookups are
        # lock-protected; per-query code should not pay for them).
        self._m_queries = self.metrics.counter("queries.executed")
        self._m_latency = self.metrics.histogram("queries.latency_s")
        self._m_ops_before = self.metrics.histogram("plan.operators_before")
        self._m_ops_after = self.metrics.histogram("plan.operators_after")
        self._m_opt_runs = self.metrics.counter("optimizer.runs")
        self._m_opt_iters = self.metrics.histogram("optimizer.iterations")
        self._m_nonconverged = self.metrics.counter("optimizer.nonconverged")

    # -- observability --------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """When True, every optimized query records a full
        :class:`QueryTrace` (structured rewrite events) *and* a span tree,
        retrievable via :attr:`last_trace`.  Off by default: the default
        path only keeps a counting tally and no spans."""
        return self._tracing

    @tracing.setter
    def tracing(self, value: bool) -> None:
        self._tracing = bool(value)
        self.spans.enabled = bool(value)

    @property
    def last_trace(self) -> QueryTrace | None:
        """The :class:`QueryTrace` of the most recent optimized query, when
        :attr:`tracing` was enabled for it; None otherwise."""
        return self._last_trace

    def _absorb_trace(self, tally: RewriteTally) -> None:
        """Fold one optimization's rewrite tally into the metrics registry."""
        self._m_opt_runs.inc()
        self._m_opt_iters.observe(tally.iterations_run)
        if not tally.converged:
            self._m_nonconverged.inc()
        for case, fires in tally.rewrite_counts.items():
            self.metrics.counter(f"optimizer.rewrites.{case}").inc(fires)

    # -- profiles -------------------------------------------------------------

    @property
    def profile(self) -> str:
        return self._profile_name

    def set_profile(self, name: str) -> None:
        """Select the optimizer capability profile (hana/postgres/x/y/z/none)."""
        from .optimizer.profiles import get_profile

        get_profile(name)  # validate
        self._profile_name = name

    # -- transactions -----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.txn_manager.begin()

    def commit(self, txn: Transaction) -> None:
        self.txn_manager.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)

    # -- statement routing ---------------------------------------------------------

    def execute(self, sql: str, txn: Transaction | None = None):
        """Execute one SQL statement.

        Returns a :class:`QueryResult` for queries, an affected-row count for
        DML, and None for DDL.
        """
        if not self.spans.enabled:
            return self._route(parse_statement(sql), txn, sql)
        with self.spans.span("query", sql=sql):
            with self.spans.span("parse"):
                statement = parse_statement(sql)
            return self._route(statement, txn, sql)

    def _route(self, statement, txn: Transaction | None, sql: str):
        if isinstance(statement, ast.Query):
            return self._run_query(statement, txn, sql=sql)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement, sql)
        if isinstance(statement, ast.DropStatement):
            return self._drop(statement)
        if isinstance(statement, ast.Insert):
            return self._with_txn(txn, lambda t: self._insert(statement, t))
        if isinstance(statement, ast.Update):
            return self._with_txn(txn, lambda t: self._update(statement, t))
        if isinstance(statement, ast.Delete):
            return self._with_txn(txn, lambda t: self._delete(statement, t))
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def query(self, sql: str, txn: Transaction | None = None, optimize: bool = True) -> QueryResult:
        if not self.spans.enabled:
            statement = parse_statement(sql)
            if not isinstance(statement, ast.Query):
                raise ExecutionError("query() expects a SELECT statement")
            return self._run_query(statement, txn, optimize, sql=sql)
        with self.spans.span("query", sql=sql):
            with self.spans.span("parse"):
                statement = parse_statement(sql)
            if not isinstance(statement, ast.Query):
                raise ExecutionError("query() expects a SELECT statement")
            return self._run_query(statement, txn, optimize, sql=sql)

    def _run_query(
        self,
        query: ast.Query,
        txn: Transaction | None,
        optimize: bool = True,
        sql: str | None = None,
    ) -> QueryResult:
        import time

        start = time.perf_counter()
        plan, tally, operators_before = self._plan_with_trace(query, optimize, sql)
        if not self.spans.enabled:
            result = self._execute_plan(plan, txn)
        else:
            with self.spans.span("execute") as execute_span:
                collector = ExecutionCollector()
                result = self._execute_plan(plan, txn, collector)
            attach_operator_spans(execute_span, collector)
        elapsed = time.perf_counter() - start
        operators_after = sum(1 for _ in plan.walk())
        self._m_queries.inc()
        self._m_latency.observe(elapsed)
        self._m_ops_before.observe(operators_before)
        self._m_ops_after.observe(operators_after)
        result.stats = QueryStats(
            elapsed_s=elapsed,
            operators_before=operators_before,
            operators_after=operators_after,
            rewrite_fires=dict(tally.rewrite_counts) if tally is not None else {},
        )
        slowlog = self.slow_queries
        if slowlog.threshold_s is not None and elapsed >= slowlog.threshold_s:
            slowlog.record(
                sql=sql,
                elapsed_s=elapsed,
                plan=explain_plan(plan),
                rewrite_fires=dict(tally.rewrite_counts) if tally else {},
                span_root=self.spans.root() if self.spans.enabled else None,
            )
        return result

    def _execute_plan(
        self, plan: LogicalOp, txn: Transaction | None, collector=None
    ) -> QueryResult:
        if txn is not None:
            return self._executor.execute(plan, txn, collector=collector)
        snapshot = self.begin()
        try:
            return self._executor.execute(plan, snapshot, collector=collector)
        finally:
            self.commit(snapshot)

    def _plan_with_trace(
        self, query: "str | ast.Query", optimize: bool, sql: str | None = None
    ) -> tuple[LogicalOp, RewriteTally | None, int]:
        """Bind and (optionally) optimize, recording rewrite provenance.

        Always runs the optimizer under at least a counting
        :class:`RewriteTally` (absorbed into :attr:`metrics`); under
        :attr:`tracing` a full :class:`QueryTrace` is kept on
        :attr:`last_trace`.  Returns ``(plan, tally, operators_before)``.
        """
        tracer = self.spans
        if tracer.enabled:
            with tracer.span("bind"):
                plan = self.bind(query)
        else:
            plan = self.bind(query)
        operators_before = sum(1 for _ in plan.walk())
        if not optimize:
            return plan, None, operators_before
        from .optimizer.pipeline import optimize_plan

        if self.tracing:
            if sql is None and isinstance(query, str):
                sql = query
            tally: RewriteTally = QueryTrace(sql=sql, profile=self._profile_name)
        else:
            tally = RewriteTally()
        if tracer.enabled:
            with tracer.span("optimize", profile=self._profile_name):
                plan = optimize_plan(
                    plan, self._profile_name, self, trace=tally, spans=tracer
                )
        else:
            plan = optimize_plan(plan, self._profile_name, self, trace=tally)
        self._absorb_trace(tally)
        if tally.enabled:
            self._last_trace = tally  # type: ignore[assignment]
            tally.span_root = tracer.root()  # type: ignore[attr-defined]
        return plan, tally, operators_before

    # -- planning ------------------------------------------------------------------

    def bind(self, sql_or_query: "str | ast.Query") -> LogicalOp:
        """Parse (if needed) and bind a query without optimizing it."""
        query = (
            parse_statement(sql_or_query) if isinstance(sql_or_query, str) else sql_or_query
        )
        if not isinstance(query, ast.Query):
            raise BindError("bind() expects a query")
        return Binder(self.catalog).bind_query(query)

    def plan_for(self, sql_or_query: "str | ast.Query", optimize: bool = True) -> LogicalOp:
        sql = sql_or_query if isinstance(sql_or_query, str) else None
        plan, _, _ = self._plan_with_trace(sql_or_query, optimize, sql)
        return plan

    def explain(self, sql: str, optimize: bool = True, analyze: bool = False) -> str:
        """EXPLAIN (the plan tree) or EXPLAIN ANALYZE (``analyze=True``:
        actually run the query and annotate every operator with its actual
        row count and wall time).

        Example::

            print(db.explain("select * from v limit 3", analyze=True))
            # Limit 3 (actual rows=3 time=0.051ms)
            #   Scan orders (actual rows=150 time=0.040ms)
            # execution: 3 row(s) in 0.068ms, 150 row(s) scanned
        """
        if not analyze:
            return explain_plan(self.plan_for(sql, optimize))
        from .observability.instrument import render_analyze, run_analyzed

        plan = self.plan_for(sql, optimize)
        snapshot = self.begin()
        try:
            result, collector = run_analyzed(self._executor, plan, snapshot)
        finally:
            self.commit(snapshot)
        self._m_queries.inc()
        self._m_latency.observe(collector.elapsed_s)
        if self._last_trace is not None and self.tracing:
            self._last_trace.execution = collector
        return render_analyze(plan, collector)

    def plan_statistics(self, sql: str, optimize: bool = True):
        return plan_stats(self.plan_for(sql, optimize))

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> None:
        columns = [
            ColumnSchema(c.name, c.data_type, c.nullable and not c.primary_key)
            for c in statement.columns
        ]
        constraints: list[UniqueConstraint] = []
        for c in statement.columns:
            if c.primary_key:
                constraints.append(UniqueConstraint((c.name,), is_primary=True))
            elif c.unique:
                constraints.append(UniqueConstraint((c.name,)))
        for tc in statement.constraints:
            constraints.append(
                UniqueConstraint(tc.columns, is_primary=(tc.kind == "PRIMARY KEY"))
            )
        if sum(1 for u in constraints if u.is_primary) > 1:
            raise CatalogError(f"multiple primary keys on {statement.name!r}")
        schema = TableSchema(statement.name, columns, constraints)
        table = ColumnTable(schema, self.txn_manager, self.wal)
        self.catalog.create_table(table, statement.if_not_exists)

    def create_table_from_schema(self, schema: TableSchema) -> ColumnTable:
        """Programmatic DDL used by the workload generators and the VDM."""
        table = ColumnTable(schema, self.txn_manager, self.wal)
        self.catalog.create_table(table)
        return table

    def _create_view(self, statement: ast.CreateView, sql: str) -> None:
        view = ViewSchema(
            statement.name,
            statement.query,
            statement.column_names,
            {m.name: m.expr for m in statement.macros},
            sql,
        )
        # Validate by binding now so broken views fail at CREATE time.
        bound = Binder(self.catalog).bind_query(statement.query)
        if statement.column_names and len(statement.column_names) != len(bound.output):
            raise CatalogError(
                f"view {statement.name!r} declares {len(statement.column_names)} "
                f"columns but its query produces {len(bound.output)}"
            )
        self.catalog.create_view(view, statement.or_replace)

    def _drop(self, statement: ast.DropStatement) -> None:
        if statement.kind == "TABLE":
            self.catalog.drop_table(statement.name, statement.if_exists)
        else:
            self.catalog.drop_view(statement.name, statement.if_exists)

    # -- DML ------------------------------------------------------------------------

    def _with_txn(self, txn: Transaction | None, action) -> int:
        if txn is not None:
            return action(txn)
        auto = self.begin()
        try:
            result = action(auto)
        except Exception:
            self.txn_manager.rollback(auto)
            raise
        self.commit(auto)
        return result

    def _insert(self, statement: ast.Insert, txn: Transaction) -> int:
        table = self.catalog.table(statement.table)
        schema = table.schema
        if statement.columns:
            positions = [schema.column_index(c) for c in statement.columns]
        else:
            positions = list(range(len(schema.columns)))

        def build_row(values: Sequence[object]) -> list[object]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            row: list[object] = [None] * len(schema.columns)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        count = 0
        if statement.query is not None:
            result = self._run_query(statement.query, txn)
            for row_values in result.rows:
                table.insert(txn, build_row(row_values))
                count += 1
            return count
        binder = Binder(self.catalog)
        empty_scope = Scope([])
        one_row = Chunk({}, 1)
        for value_row in statement.rows:
            values = []
            for value_ast in value_row:
                bound = binder._bind_scalar(value_ast, empty_scope, allow_agg=False)
                values.append(evaluate(bound, one_row)[0])
            table.insert(txn, build_row(values))
            count += 1
        return count

    def _update(self, statement: ast.Update, txn: Transaction) -> int:
        table = self.catalog.table(statement.table)
        scan = Scan.create(table.schema)
        scope = Scope([RelationBinding(table.schema.name, scan.output)])
        binder = Binder(self.catalog)
        row_ids = table.visible_row_ids(txn)
        names = [c.name for c in table.schema.columns]
        values = [[table.column(n).get(i) for i in row_ids] for n in names]
        chunk = Chunk({col.cid: vals for col, vals in zip(scan.output, values)}, len(row_ids))
        if statement.where is not None:
            predicate = binder._bind_scalar(statement.where, scope, allow_agg=False)
            hits = evaluate_predicate(predicate, chunk)
        else:
            hits = list(range(len(row_ids)))
        assignments = []
        for name, expr_ast in statement.assignments:
            index = table.schema.column_index(name)
            bound = binder._bind_scalar(expr_ast, scope, allow_agg=False)
            assignments.append((index, evaluate(bound, chunk)))
        count = 0
        for position in hits:
            row = [chunk.column(col.cid)[position] for col in scan.output]
            for index, new_values in assignments:
                row[index] = new_values[position]
            table.update_row(txn, row_ids[position], row)
            count += 1
        return count

    def _delete(self, statement: ast.Delete, txn: Transaction) -> int:
        table = self.catalog.table(statement.table)
        scan = Scan.create(table.schema)
        scope = Scope([RelationBinding(table.schema.name, scan.output)])
        binder = Binder(self.catalog)
        row_ids = table.visible_row_ids(txn)
        if statement.where is not None:
            names = [c.name for c in table.schema.columns]
            values = [[table.column(n).get(i) for i in row_ids] for n in names]
            chunk = Chunk(
                {col.cid: vals for col, vals in zip(scan.output, values)}, len(row_ids)
            )
            predicate = binder._bind_scalar(statement.where, scope, allow_agg=False)
            hits = evaluate_predicate(predicate, chunk)
        else:
            hits = list(range(len(row_ids)))
        for position in hits:
            table.delete_row(txn, row_ids[position])
        return len(hits)

    # -- bulk utilities ----------------------------------------------------------------

    def bulk_load(self, table_name: str, rows: Iterable[Sequence[object]], merge: bool = True) -> int:
        """Load rows outside transactions (generator fast path)."""
        return self.catalog.table(table_name).bulk_load(rows, merge)

    def merge_all(self) -> None:
        """Run a delta merge on every table."""
        for table in self.catalog.tables():
            table.merge_delta()

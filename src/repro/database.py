"""The `Database` facade: the library's main entry point.

Example::

    from repro import Database

    db = Database()
    db.execute("create table t (id int primary key, v decimal(15,2))")
    db.execute("insert into t values (1, 10.50), (2, 20.00)")
    result = db.query("select sum(v) from t")
    print(result.rows)          # [(Decimal('30.50'),)]
    print(db.explain("select id from t"))

The optimizer profile (default ``"hana"``) controls which of the paper's
rewrites run — see :mod:`repro.optimizer.profiles` for the Table 1–4
capability models.
"""

from __future__ import annotations

import itertools
import random
import time
import warnings
from typing import Callable, Iterable, Sequence

from .algebra import Binder, explain as explain_plan, plan_stats, summarize_plan
from .algebra.binder import RelationBinding, Scope
from .algebra.ops import LogicalOp, Scan
from .catalog import Catalog
from .catalog.schema import (
    ColumnSchema,
    ForeignKey,
    TableSchema,
    UniqueConstraint,
    ViewSchema,
)
from .engine import Chunk, Executor, QueryResult
from .engine.executor import DEFAULT_BATCH_SIZE, QueryStats
from .engine.eval import evaluate, evaluate_predicate
from .errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    QueryTimeoutError,
    TransactionError,
)
from .faults import FaultInjector
from .capture.recorder import WorkloadRecorder
from .observability import (
    ExecutionCollector,
    MetricsRegistry,
    QueryTrace,
    RewriteTally,
    SlowQueryLog,
    SpanTracer,
    attach_operator_spans,
)
from .observability.baselines import ShapeBaselines
from .observability.feedback import (
    MISESTIMATE_QERROR,
    plan_feedback_rows,
)
from .observability.querylog import QueryLog, QueryLogEntry
from .observability.systables import install_sys_tables
from .sql import ast, parse_statement
from .storage import (
    ColumnTable,
    DiskWriteAheadLog,
    Transaction,
    TransactionManager,
    WriteAheadLog,
)
from .storage.mvcc import NO_TID
from .storage.wal import _decode_value, _encode_value
from .storage.wal_disk import schema_from_dict, schema_to_dict


class Database:
    """An embedded HTAP database instance.

    ``wal_dir`` opts into the crash-consistent on-disk WAL
    (:class:`repro.storage.wal_disk.DiskWriteAheadLog`): committed work
    survives a crash and :meth:`Database.recover` rebuilds state from the
    directory.  ``fsync`` selects its durability policy (``always`` /
    ``commit`` / ``never``).  Without ``wal_dir`` the WAL stays in memory
    (the seed behaviour) and recovery is a test-only utility.

    ``batch_size`` sets the streaming executor's rows-per-batch knob
    (default 1024): smaller batches mean tighter memory bounds and earlier
    LIMIT short-circuits, larger batches amortize per-batch overhead.

    ``capture_dir`` opts into workload capture: every statement appends a
    durable JSONL record (SQL, shape hash, timings, result digest) to
    ``<capture_dir>/workload.jsonl`` for later ``python -m repro replay``.

    ``plan_feedback`` (default True) closes the estimate→execute→observe
    loop: every query runs under a collector, its physical operators are
    stamped with estimated rows, and per-operator est/actual/Q-error rows
    land in ``sys.plan_feedback`` (plus the ``optimizer.qerror`` histogram
    and per-kind misestimate counters).  Set it False to run queries with
    zero instrumentation beyond the base counters.

    ``memory_budget_bytes`` arms a *soft* per-query limit on the estimated
    bytes held by blocking operators (hash tables, sort buffers): the
    first overshoot warns (:class:`repro.errors.MemoryBudgetWarning`),
    bumps ``exec.memory_budget_exceeded``, and flips :meth:`health` to
    degraded — the query itself still completes.

    ``plan_cache_size`` bounds the parameterized plan cache (default 128
    entries; 0 disables it).  Repeated statement *shapes* — the same SQL
    with different literals — skip parse, bind, and the whole optimizer
    from their third execution on: the cached generic plan is re-bound
    with the new literal values.  Promotion is conservative (a shape is
    cached only when the parameter-generic optimization provably fires
    the same rewrites as the value-bound one), and entries self-invalidate
    on DDL, view deploys/drops, profile changes, and row-count shifts big
    enough to change plan choice.  ``sys.plan_cache`` and the
    ``plan_cache.*`` metrics expose its state.

    Every instance installs the read-only ``sys.*`` introspection schema
    (``sys.query_log``, ``sys.plan_feedback``, ``sys.metrics``, ...) —
    virtual tables over the engine's own instrumentation, queryable
    through ordinary SQL.
    """

    def __init__(
        self,
        profile: str = "hana",
        wal_enabled: bool = True,
        wal_dir: str | None = None,
        fsync: str = "commit",
        batch_size: int = DEFAULT_BATCH_SIZE,
        capture_dir: str | None = None,
        plan_feedback: bool = True,
        memory_budget_bytes: int | None = None,
        vectorized: bool = True,
        plan_cache_size: int = 128,
    ):
        self.metrics = MetricsRegistry()
        #: Hierarchical span tracer; enabled together with :attr:`tracing`.
        self.spans = SpanTracer()
        #: Ring-buffer slow-query log; set ``slow_queries.threshold_s`` (in
        #: seconds) to start capturing offenders.
        self.slow_queries = SlowQueryLog()
        #: Fault-injection registry — see :mod:`repro.faults`.  Arming any
        #: point flips :meth:`health` to ``degraded``.
        self.faults = FaultInjector(metrics=self.metrics)
        if wal_dir is not None:
            self.wal: WriteAheadLog | None = DiskWriteAheadLog(
                wal_dir, fsync=fsync, metrics=self.metrics,
                tracer=self.spans, faults=self.faults,
            )
        elif wal_enabled:
            self.wal = WriteAheadLog(
                metrics=self.metrics, tracer=self.spans, faults=self.faults
            )
        else:
            self.wal = None
        self.txn_manager = TransactionManager(
            self.wal, metrics=self.metrics, tracer=self.spans
        )
        self.catalog = Catalog()
        self._plan_feedback = plan_feedback
        self._executor = Executor(
            self.catalog, metrics=self.metrics, tracer=self.spans,
            faults=self.faults, batch_size=batch_size,
            plan_feedback=plan_feedback,
            memory_budget_bytes=memory_budget_bytes,
            vectorized=vectorized,
        )
        self._profile_name = profile
        self._tracing = False
        self._last_trace: QueryTrace | None = None
        # Hot-path metric handles, resolved once (registry lookups are
        # lock-protected; per-query code should not pay for them).
        self._m_queries = self.metrics.counter("queries.executed")
        self._m_latency = self.metrics.histogram("queries.latency_s")
        self._m_ops_before = self.metrics.histogram("plan.operators_before")
        self._m_ops_after = self.metrics.histogram("plan.operators_after")
        self._m_opt_runs = self.metrics.counter("optimizer.runs")
        self._m_opt_iters = self.metrics.histogram("optimizer.iterations")
        self._m_nonconverged = self.metrics.counter("optimizer.nonconverged")
        self._m_timeouts = self.metrics.counter("query.timeouts")
        self._m_conflict_retries = self.metrics.counter("txn.conflict_retries")
        self._m_qerror = self.metrics.histogram("optimizer.qerror")
        # Pre-registered so exporters surface them at zero from the start.
        self.metrics.counter("optimizer.rule_failures")
        self.metrics.counter("exec.memory_budget_exceeded")
        #: Ring buffers behind sys.query_log / sys.operator_stats /
        #: sys.plan_feedback.
        self.query_log = QueryLog()
        #: Per-shape latency baselines behind sys.query_shapes; folded in
        #: lazily from the query log at scan time.
        self.shape_baselines = ShapeBaselines(metrics=self.metrics)
        self._query_seq = itertools.count(1)
        #: CachedViewManager self-registers here (sys.cache_entries feed).
        self.cached_views = None
        #: repro.serving.SessionManager self-registers here (the
        #: sys.sessions / sys.admission feed and the health() breaker view).
        self.serving = None
        #: Workload capture (None unless capture_dir was given).
        self.capture: WorkloadRecorder | None = (
            WorkloadRecorder(capture_dir, profile=profile)
            if capture_dir is not None else None
        )
        #: Parameterized plan cache (ROADMAP item 5); ``plan_cache_size=0``
        #: disables it entirely.  Shared by every session of this instance.
        from .cache.plan_cache import PlanCache

        self.plan_cache: PlanCache | None = (
            PlanCache(plan_cache_size, metrics=self.metrics)
            if plan_cache_size > 0 else None
        )
        install_sys_tables(self)

    # -- observability --------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """When True, every optimized query records a full
        :class:`QueryTrace` (structured rewrite events) *and* a span tree,
        retrievable via :attr:`last_trace`.  Off by default: the default
        path only keeps a counting tally and no spans."""
        return self._tracing

    @tracing.setter
    def tracing(self, value: bool) -> None:
        self._tracing = bool(value)
        self.spans.enabled = bool(value)

    @property
    def last_trace(self) -> QueryTrace | None:
        """The :class:`QueryTrace` of the most recent optimized query, when
        :attr:`tracing` was enabled for it; None otherwise."""
        return self._last_trace

    def _absorb_trace(self, tally: RewriteTally) -> None:
        """Fold one optimization's rewrite tally into the metrics registry."""
        self._m_opt_runs.inc()
        self._m_opt_iters.observe(tally.iterations_run)
        if not tally.converged:
            self._m_nonconverged.inc()
        for case, fires in tally.rewrite_counts.items():
            self.metrics.counter(f"optimizer.rewrites.{case}").inc(fires)

    # -- profiles -------------------------------------------------------------

    @property
    def profile(self) -> str:
        return self._profile_name

    def set_profile(self, name: str) -> None:
        """Select the optimizer capability profile (hana/postgres/x/y/z/none)."""
        from .optimizer.profiles import get_profile

        get_profile(name)  # validate
        self._profile_name = name

    # -- transactions -----------------------------------------------------------

    def begin(self) -> Transaction:
        return self.txn_manager.begin()

    def commit(self, txn: Transaction) -> None:
        self.txn_manager.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)

    # -- statement routing ---------------------------------------------------------

    def execute(self, sql: str, txn: Transaction | None = None):
        """Execute one SQL statement.

        Returns a :class:`QueryResult` for queries, an affected-row count for
        DML, and None for DDL.
        """
        recorder = self.capture
        if recorder is None:
            return self._execute_inner(sql, txn)
        started_at = time.time()
        started = time.perf_counter()
        try:
            outcome = self._execute_inner(sql, txn)
        except BaseException as exc:
            recorder.record_error(sql, started_at, time.perf_counter() - started, exc)
            raise
        recorder.record_statement(sql, started_at, time.perf_counter() - started, outcome)
        return outcome

    def _execute_inner(self, sql: str, txn: Transaction | None):
        # SELECTs routed through execute() share the plan cache with
        # query(); the prefix gate keeps DDL/DML off the probe path.
        if (self.plan_cache is not None and not self.spans.enabled
                and sql.lstrip()[:6].upper() == "SELECT"):
            return self._query_with_plan_cache(sql, txn, None)
        if not self.spans.enabled:
            parse_started = time.perf_counter()
            statement = parse_statement(sql)
            parse_s = time.perf_counter() - parse_started
            return self._route(statement, txn, sql, parse_s)
        with self.spans.span("query", sql=sql):
            parse_started = time.perf_counter()
            with self.spans.span("parse"):
                statement = parse_statement(sql)
            parse_s = time.perf_counter() - parse_started
            return self._route(statement, txn, sql, parse_s)

    def _route(self, statement, txn: Transaction | None, sql: str,
               parse_s: float | None = None):
        if isinstance(statement, ast.Query):
            return self._run_query(statement, txn, sql=sql, parse_s=parse_s)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement, sql)
        if isinstance(statement, ast.DropStatement):
            return self._drop(statement)
        if isinstance(statement, ast.Insert):
            return self._with_txn(txn, lambda t: self._insert(statement, t))
        if isinstance(statement, ast.Update):
            return self._with_txn(txn, lambda t: self._update(statement, t))
        if isinstance(statement, ast.Delete):
            return self._with_txn(txn, lambda t: self._delete(statement, t))
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def query(
        self,
        sql: str,
        txn: Transaction | None = None,
        optimize: bool = True,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        """Run one SELECT.  ``timeout`` (seconds) arms a cooperative
        deadline checked inside every operator's per-batch loop (a long
        streaming scan is interrupted mid-operator); exceeding it raises
        :class:`repro.errors.QueryTimeoutError` and bumps
        ``query.timeouts``.

        ``deadline`` is an *absolute* ``time.monotonic()`` value for when
        the statement's time budget started before this call — the serving
        layer stamps it at submission so queue wait counts against the
        budget.  A deadline already in the past raises
        :class:`QueryTimeoutError` up front, before any planning work.
        When both are given the earlier one wins."""
        recorder = self.capture
        if recorder is None:
            return self._query_inner(sql, txn, optimize, timeout, deadline)
        started_at = time.time()
        started = time.perf_counter()
        try:
            result = self._query_inner(sql, txn, optimize, timeout, deadline)
        except BaseException as exc:
            recorder.record_error(sql, started_at, time.perf_counter() - started, exc)
            raise
        recorder.record_statement(sql, started_at, time.perf_counter() - started, result)
        return result

    def _query_inner(
        self,
        sql: str,
        txn: Transaction | None,
        optimize: bool,
        timeout: float | None,
        submitted_deadline: float | None = None,
    ) -> QueryResult:
        deadline = None if timeout is None else time.monotonic() + timeout
        if submitted_deadline is not None:
            deadline = (
                submitted_deadline if deadline is None
                else min(deadline, submitted_deadline)
            )
        if not self.spans.enabled:
            if self.plan_cache is not None and optimize:
                return self._query_with_plan_cache(sql, txn, deadline)
            parse_started = time.perf_counter()
            statement = parse_statement(sql)
            parse_s = time.perf_counter() - parse_started
            if not isinstance(statement, ast.Query):
                raise ExecutionError("query() expects a SELECT statement")
            return self._run_query(statement, txn, optimize, sql=sql,
                                   deadline=deadline, parse_s=parse_s)
        with self.spans.span("query", sql=sql):
            parse_started = time.perf_counter()
            with self.spans.span("parse"):
                statement = parse_statement(sql)
            parse_s = time.perf_counter() - parse_started
            if not isinstance(statement, ast.Query):
                raise ExecutionError("query() expects a SELECT statement")
            return self._run_query(statement, txn, optimize, sql=sql,
                                   deadline=deadline, parse_s=parse_s)

    def _run_query(
        self,
        query: ast.Query,
        txn: Transaction | None,
        optimize: bool = True,
        sql: str | None = None,
        deadline: float | None = None,
        parse_s: float | None = None,
    ) -> QueryResult:
        seq = next(self._query_seq)
        query_id = f"q{seq}"
        started_at = time.time()
        start = time.perf_counter()
        tracer = self.spans
        if tracer.enabled:
            root_span = tracer.root()
            if root_span is not None:
                # setdefault: a nested statement (INSERT ... SELECT) must
                # not overwrite the enclosing statement's id on its span.
                root_span.attributes.setdefault("query_id", query_id)
        status = "ok"
        error_text: str | None = None
        result: QueryResult | None = None
        tally: RewriteTally | None = None
        operators_before = operators_after = 0
        bind_s: float | None = None
        optimize_s: float | None = None
        execute_s: float | None = None
        try:
            if deadline is not None and time.monotonic() > deadline:
                # The budget was consumed before execution began (queue
                # wait under admission control): fail fast, before paying
                # for planning.  Logged below like any other timeout.
                self._m_timeouts.inc()
                raise QueryTimeoutError(
                    "statement deadline exceeded before execution began"
                )
            plan, tally, operators_before, bind_s, optimize_s = self._plan_with_trace(
                query, optimize, sql, query_id=query_id
            )
            execute_started = time.perf_counter()
            try:
                # Plan feedback runs every query under a collector so
                # per-operator actuals and est/actual Q-error land in the
                # query log unconditionally; span trees stay opt-in.
                collector = (
                    ExecutionCollector()
                    if (self._plan_feedback or tracer.enabled) else None
                )
                if not tracer.enabled:
                    result = self._execute_plan(
                        plan, txn, collector, deadline=deadline
                    )
                else:
                    with tracer.span("execute") as execute_span:
                        result = self._execute_plan(
                            plan, txn, collector, deadline=deadline
                        )
                    attach_operator_spans(execute_span, collector)
                if collector is not None:
                    self.query_log.record_operators(query_id, collector)
                    self._record_feedback(query_id, collector)
            except QueryTimeoutError:
                self._m_timeouts.inc()
                raise
            execute_s = time.perf_counter() - execute_started
            elapsed = time.perf_counter() - start
            operators_after = sum(1 for _ in plan.walk())
            self._m_queries.inc()
            self._m_latency.observe(elapsed)
            self._m_ops_before.observe(operators_before)
            self._m_ops_after.observe(operators_after)
            result.stats = QueryStats(
                elapsed_s=elapsed,
                operators_before=operators_before,
                operators_after=operators_after,
                rewrite_fires=dict(tally.rewrite_counts) if tally is not None else {},
                query_id=query_id,
            )
            slowlog = self.slow_queries
            if slowlog.threshold_s is not None and elapsed >= slowlog.threshold_s:
                slowlog.record(
                    sql=sql,
                    elapsed_s=elapsed,
                    plan=explain_plan(plan),
                    rewrite_fires=dict(tally.rewrite_counts) if tally else {},
                    span_root=tracer.root() if tracer.enabled else None,
                    query_id=query_id,
                    plan_summary=self._plan_summary(plan),
                )
            return result
        except QueryTimeoutError as exc:
            status, error_text = "timeout", str(exc)
            raise
        except Exception as exc:
            status, error_text = "error", str(exc)
            raise
        finally:
            # Appended on completion (never mid-flight), so a query over
            # sys.query_log does not observe itself; afterwards it appears
            # exactly once, whatever its outcome.
            self.query_log.record(QueryLogEntry(
                query_id=query_id,
                sql=sql,
                status=status,
                error=error_text,
                started_at=started_at,
                elapsed_s=time.perf_counter() - start,
                parse_s=parse_s,
                bind_s=bind_s,
                optimize_s=optimize_s,
                execute_s=execute_s,
                rows=None if result is None else len(result.rows),
                operators_before=operators_before,
                operators_after=operators_after,
                rewrite_fires=(
                    sum(tally.rewrite_counts.values()) if tally is not None else 0
                ),
                seq=seq,
            ))

    def _record_feedback(self, query_id: str, collector) -> None:
        """Persist one query's est/actual join and feed the Q-error metrics.

        Early-terminated operators are excluded from the histogram and the
        misestimate counters — their actual row counts are lower bounds by
        design, not estimation failures.  Never-executed operators are
        likewise display-only.
        """
        rows = plan_feedback_rows(query_id, collector)
        if not rows:
            return
        self.query_log.record_feedback(rows)
        for row in rows:
            if row.qerror is None or row.early_terminated or row.never_executed:
                continue
            self._m_qerror.observe(row.qerror)
            if row.qerror >= MISESTIMATE_QERROR:
                self.metrics.counter(
                    f"optimizer.misestimates.{row.kind}"
                ).inc()

    def _plan_summary(self, plan: LogicalOp) -> str | None:
        """One-line physical summary for the slow-query log; compiled on
        demand (only when the threshold fires) and never allowed to fail
        the query it describes."""
        try:
            return summarize_plan(self._executor.compile(plan))
        except Exception:
            return None

    def _execute_plan(
        self, plan: LogicalOp, txn: Transaction | None, collector=None,
        deadline: float | None = None,
    ) -> QueryResult:
        if txn is not None:
            return self._executor.execute(
                plan, txn, collector=collector, deadline=deadline
            )
        snapshot = self.begin()
        try:
            return self._executor.execute(
                plan, snapshot, collector=collector, deadline=deadline
            )
        finally:
            self.commit(snapshot)

    # -- parameterized plan cache ---------------------------------------------

    def _query_with_plan_cache(
        self, sql: str, txn: Transaction | None, deadline: float | None,
    ) -> QueryResult:
        """The plan-cache statement path: probe → hit or normal-run+promote.

        A hit skips parse, bind, and every optimizer pass: the cached
        generic plan gets this statement's literal values substituted for
        its Param slots and compiles straight to the physical tree (or
        reuses the previously compiled tree on an exact value repeat).
        Anything unusual — lexer failure, non-query statements, shapes the
        promotion gates refused — falls back to the fully normal path.
        """
        from .sql.normalize import extract_shape

        cache = self.plan_cache
        parse_started = time.perf_counter()
        try:
            shape, values, tokens = extract_shape(sql)
        except Exception:
            shape = values = tokens = None  # normal path raises properly
        if shape is not None:
            from .datatypes import type_of_literal

            shape_key = (shape, tuple(type_of_literal(v) for v in values))
            entry = cache.probe(
                shape_key, values, self._plan_cache_env(),
                self._plan_cache_stats_sig,
            )
            if entry is not None:
                parse_s = time.perf_counter() - parse_started
                return self._run_cached_hit(
                    entry, values, txn, deadline, sql, parse_s
                )
        statement = parse_statement(sql, tokens=tokens)
        parse_s = time.perf_counter() - parse_started
        if not isinstance(statement, ast.Query):
            raise ExecutionError("query() expects a SELECT statement")
        result = self._run_query(statement, txn, True, sql=sql,
                                 deadline=deadline, parse_s=parse_s)
        if shape is not None and cache.should_promote(shape_key):
            self._promote_shape(shape_key, sql, tokens, values, result.stats)
        return result

    def _plan_cache_env(self) -> tuple:
        """Environment head of the hit-time fingerprint: anything that can
        change plan choice without touching the statement text."""
        executor = self._executor
        return (
            self.catalog.version,
            self._profile_name,
            executor._vectorized,
            executor.batch_size,
        )

    def _plan_cache_stats_sig(self, tables: tuple[str, ...]) -> tuple:
        """Bucketed (log2) row counts of the entry's base tables: a stats
        refresh big enough to change plan choice changes a bucket and
        invalidates the entry."""
        sig = []
        for name in tables:
            try:
                sig.append(len(self.catalog.table(name)).bit_length())
            except Exception:
                sig.append(-1)
        return tuple(sig)

    def _run_cached_hit(
        self, entry, values: list, txn: Transaction | None,
        deadline: float | None, sql: str, parse_s: float,
    ) -> QueryResult:
        """Execute a plan-cache hit with the same bookkeeping contract as
        :meth:`_run_query` (query log, metrics, stats, slow-query log) —
        minus the planning phases it skipped."""
        seq = next(self._query_seq)
        query_id = f"q{seq}"
        started_at = time.time()
        start = time.perf_counter()
        status = "ok"
        error_text: str | None = None
        result: QueryResult | None = None
        execute_s: float | None = None
        try:
            if deadline is not None and time.monotonic() > deadline:
                self._m_timeouts.inc()
                raise QueryTimeoutError(
                    "statement deadline exceeded before execution began"
                )
            plan, physical = self._materialize_cached(entry, values)
            execute_started = time.perf_counter()
            try:
                collector = ExecutionCollector() if self._plan_feedback else None
                result = self._execute_cached_plan(
                    plan, physical, txn, collector, deadline
                )
                if collector is not None:
                    self.query_log.record_operators(query_id, collector)
                    self._record_feedback(query_id, collector)
            except QueryTimeoutError:
                self._m_timeouts.inc()
                raise
            execute_s = time.perf_counter() - execute_started
            elapsed = time.perf_counter() - start
            self._m_queries.inc()
            self._m_latency.observe(elapsed)
            self._m_ops_before.observe(entry.operators_before)
            self._m_ops_after.observe(entry.operators_after)
            result.stats = QueryStats(
                elapsed_s=elapsed,
                operators_before=entry.operators_before,
                operators_after=entry.operators_after,
                rewrite_fires=dict(entry.rewrite_fires),
                query_id=query_id,
            )
            slowlog = self.slow_queries
            if slowlog.threshold_s is not None and elapsed >= slowlog.threshold_s:
                slowlog.record(
                    sql=sql,
                    elapsed_s=elapsed,
                    plan=explain_plan(plan),
                    rewrite_fires=dict(entry.rewrite_fires),
                    span_root=None,
                    query_id=query_id,
                    plan_summary=self._plan_summary(plan),
                )
            return result
        except QueryTimeoutError as exc:
            status, error_text = "timeout", str(exc)
            raise
        except Exception as exc:
            status, error_text = "error", str(exc)
            raise
        finally:
            self.query_log.record(QueryLogEntry(
                query_id=query_id,
                sql=sql,
                status=status,
                error=error_text,
                started_at=started_at,
                elapsed_s=time.perf_counter() - start,
                parse_s=parse_s,
                bind_s=None,
                optimize_s=None,
                execute_s=execute_s,
                rows=None if result is None else len(result.rows),
                operators_before=entry.operators_before,
                operators_after=entry.operators_after,
                rewrite_fires=sum(entry.rewrite_fires.values()),
                seq=seq,
            ))

    def _materialize_cached(self, entry, values: list):
        """Generic plan + parameter values → executable (plan, physical).

        Exact value repeat: reuse the entry's compiled physical tree
        outright.  Otherwise substitute Const nodes for the free Param
        slots and compile fresh (zone-map prune bounds are recomputed
        from the new values by the physical planner)."""
        from .datatypes import type_of_literal
        from .engine.executor import _collect_used_cids

        if entry.physical is not None and entry.last_values == tuple(values):
            return entry.generic_plan, entry.physical
        if entry.free_slots:
            from .algebra.expr import Const, Param, rewrite_expr
            from .algebra.ops import rewrite_op_exprs

            consts = {
                slot: Const(values[slot], type_of_literal(values[slot]))
                for slot in entry.free_slots
            }

            def replace(node):
                if isinstance(node, Param):
                    return consts[node.slot]
                return None

            plan = rewrite_op_exprs(
                entry.generic_plan, lambda e: rewrite_expr(e, replace)
            )
        else:
            plan = entry.generic_plan
        used = _collect_used_cids(plan)
        physical = self._executor.compile(plan, used, estimate=self._plan_feedback)
        self.plan_cache.remember_compiled(entry, values, physical)
        return plan, physical

    def _execute_cached_plan(
        self, plan: LogicalOp, physical, txn: Transaction | None,
        collector=None, deadline: float | None = None,
    ) -> QueryResult:
        if txn is not None:
            return self._executor.execute_physical(
                plan, physical, txn, collector=collector, deadline=deadline
            )
        snapshot = self.begin()
        try:
            return self._executor.execute_physical(
                plan, physical, snapshot, collector=collector, deadline=deadline
            )
        finally:
            self.commit(snapshot)

    def _promote_shape(
        self, shape_key: tuple, sql: str, tokens, values: list, stats,
    ) -> None:
        """Build and store the generic plan for a shape seen twice.

        The value-bound execution that just finished is the reference:
        the generic (Param-bound) optimization must fire *exactly* the
        same rewrites, or some value-dependent rewrite (constant folding,
        conjunct dedup, Fig. 10c ASJ subsumption ...) fired on literal
        values and a generic plan would be weaker or wrong for other
        values — such shapes are negatively cached as uncacheable.  Bind
        failures under parameterization (the binder's structural matching
        is textual, and ``$n`` slots break it for duplicated literals)
        and scalar subqueries (resolved per-execution) are uncacheable
        for the same reason: correctness never depends on caching.
        """
        from .cache.plan_cache import (
            CachedPlan,
            plan_base_tables,
            plan_has_scalar_subquery,
            plan_param_slots,
        )
        from .optimizer.pipeline import optimize_plan

        cache = self.plan_cache
        env = self._plan_cache_env()  # before bind: later DDL must mismatch
        try:
            statement = parse_statement(sql, tokens=tokens, parameterize=True)
            if not isinstance(statement, ast.Query):
                cache.mark_uncacheable(shape_key)
                return
            plan = Binder(self.catalog, parameterize=True).bind_query(statement)
            operators_before = sum(1 for _ in plan.walk())
            tally = RewriteTally()
            generic = optimize_plan(plan, self._profile_name, self, trace=tally)
        except Exception:
            cache.mark_uncacheable(shape_key)
            return
        fires = dict(tally.rewrite_counts)
        expected = dict(stats.rewrite_fires) if stats is not None else {}
        if fires != expected or plan_has_scalar_subquery(generic):
            cache.mark_uncacheable(shape_key)
            return
        free = plan_param_slots(generic)
        tables = plan_base_tables(generic)
        cache.store(shape_key, CachedPlan(
            shape=shape_key[0],
            param_types=shape_key[1],
            generic_plan=generic,
            free_slots=free,
            fixed_values=tuple(
                (slot, values[slot])
                for slot in range(len(values)) if slot not in free
            ),
            fingerprint=(env, self._plan_cache_stats_sig(tables)),
            tables=tables,
            operators_before=operators_before,
            operators_after=sum(1 for _ in generic.walk()),
            rewrite_fires=fires,
        ))

    def _plan_cache_peek(self, sql: str):
        """The live cache entry this statement would hit, or None — no LRU
        touch, no counters (the EXPLAIN ``(cached)`` annotation)."""
        cache = self.plan_cache
        if cache is None:
            return None
        from .sql.normalize import extract_shape

        try:
            shape, values, _ = extract_shape(sql)
        except Exception:
            return None
        from .datatypes import type_of_literal

        shape_key = (shape, tuple(type_of_literal(v) for v in values))
        return cache.peek(shape_key, values, self._plan_cache_env(),
                          self._plan_cache_stats_sig)

    def _plan_with_trace(
        self, query: "str | ast.Query", optimize: bool, sql: str | None = None,
        query_id: str | None = None,
    ) -> tuple[LogicalOp, RewriteTally | None, int, float, float | None]:
        """Bind and (optionally) optimize, recording rewrite provenance.

        Always runs the optimizer under at least a counting
        :class:`RewriteTally` (absorbed into :attr:`metrics`); under
        :attr:`tracing` a full :class:`QueryTrace` is kept on
        :attr:`last_trace`.  Returns
        ``(plan, tally, operators_before, bind_s, optimize_s)`` — the phase
        timings feed ``sys.query_log``.
        """
        tracer = self.spans
        bind_started = time.perf_counter()
        if tracer.enabled:
            with tracer.span("bind"):
                plan = self.bind(query)
        else:
            plan = self.bind(query)
        bind_s = time.perf_counter() - bind_started
        operators_before = sum(1 for _ in plan.walk())
        if not optimize:
            return plan, None, operators_before, bind_s, None
        from .optimizer.pipeline import optimize_plan

        if self.tracing:
            if sql is None and isinstance(query, str):
                sql = query
            tally: RewriteTally = QueryTrace(sql=sql, profile=self._profile_name)
        else:
            tally = RewriteTally()
        optimize_started = time.perf_counter()
        if tracer.enabled:
            with tracer.span("optimize", profile=self._profile_name):
                plan = optimize_plan(
                    plan, self._profile_name, self, trace=tally, spans=tracer
                )
        else:
            plan = optimize_plan(plan, self._profile_name, self, trace=tally)
        optimize_s = time.perf_counter() - optimize_started
        self._absorb_trace(tally)
        if tally.enabled:
            self._last_trace = tally  # type: ignore[assignment]
            tally.span_root = tracer.root()  # type: ignore[attr-defined]
            tally.query_id = query_id  # type: ignore[attr-defined]
        return plan, tally, operators_before, bind_s, optimize_s

    # -- planning ------------------------------------------------------------------

    def bind(self, sql_or_query: "str | ast.Query") -> LogicalOp:
        """Parse (if needed) and bind a query without optimizing it."""
        query = (
            parse_statement(sql_or_query) if isinstance(sql_or_query, str) else sql_or_query
        )
        if not isinstance(query, ast.Query):
            raise BindError("bind() expects a query")
        return Binder(self.catalog).bind_query(query)

    def plan_for(self, sql_or_query: "str | ast.Query", optimize: bool = True) -> LogicalOp:
        sql = sql_or_query if isinstance(sql_or_query, str) else None
        plan, _, _, _, _ = self._plan_with_trace(sql_or_query, optimize, sql)
        return plan

    def explain(
        self, sql: str, optimize: bool = True, analyze: bool = False,
        physical: bool | None = None,
    ) -> str:
        """EXPLAIN (the plan tree) or EXPLAIN ANALYZE (``analyze=True``:
        actually run the query and annotate every physical operator with
        its actual row/batch counts and wall time).

        ``physical`` selects which tree plain EXPLAIN renders; it defaults
        to ``optimize``, so the optimized plan is shown as the physical
        operator tree that would execute (BatchScan, HashJoin with its
        build side, ...) while ``optimize=False`` shows the raw logical
        tree.  EXPLAIN ANALYZE always annotates the executed physical plan.

        Example::

            print(db.explain("select * from v limit 3", analyze=True))
            # Limit[3] (est rows=3 actual rows=3 qerror=1.00 batches=1
            #           time=0.051ms, early-terminated)
            #   BatchScan(orders)[cols=3] (est rows=1024 actual rows=1024 ...)
            # execution: 3 row(s) in 0.068ms, 1024 row(s) scanned

        Every operator carries the optimizer's estimated rows and the
        resulting Q-error (``max(est,actual)/min(est,actual)``); blocking
        operators additionally show their peak estimated memory
        (``peak≈…KB``).
        """
        if physical is None:
            physical = optimize
        if not analyze:
            plan = self.plan_for(sql, optimize)
            text = (explain_plan(self._executor.compile(plan)) if physical
                    else explain_plan(plan))
            if optimize and self._plan_cache_peek(sql) is not None:
                text += "\n(cached)"
            return text
        from .observability.instrument import render_analyze, run_analyzed

        plan = self.plan_for(sql, optimize)
        snapshot = self.begin()
        try:
            result, collector = run_analyzed(self._executor, plan, snapshot)
        finally:
            self.commit(snapshot)
        self._m_queries.inc()
        self._m_latency.observe(collector.elapsed_s)
        if self._last_trace is not None and self.tracing:
            self._last_trace.execution = collector
        return render_analyze(plan, collector)

    def plan_statistics(self, sql: str, optimize: bool = True):
        return plan_stats(self.plan_for(sql, optimize))

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> None:
        columns = [
            ColumnSchema(c.name, c.data_type, c.nullable and not c.primary_key)
            for c in statement.columns
        ]
        constraints: list[UniqueConstraint] = []
        for c in statement.columns:
            if c.primary_key:
                constraints.append(UniqueConstraint((c.name,), is_primary=True))
            elif c.unique:
                constraints.append(UniqueConstraint((c.name,)))
        for tc in statement.constraints:
            constraints.append(
                UniqueConstraint(tc.columns, is_primary=(tc.kind == "PRIMARY KEY"))
            )
        if sum(1 for u in constraints if u.is_primary) > 1:
            raise CatalogError(f"multiple primary keys on {statement.name!r}")
        schema = TableSchema(statement.name, columns, constraints)
        existed = self.catalog.has_table(schema.name)
        table = ColumnTable(schema, self.txn_manager, self.wal, faults=self.faults)
        self.catalog.create_table(table, statement.if_not_exists)
        if not existed:
            self._log_ddl_table(schema)

    def create_table_from_schema(self, schema: TableSchema) -> ColumnTable:
        """Programmatic DDL used by the workload generators and the VDM."""
        table = ColumnTable(schema, self.txn_manager, self.wal, faults=self.faults)
        self.catalog.create_table(table)
        self._log_ddl_table(schema)
        return table

    def _log_ddl_table(self, schema: TableSchema) -> None:
        if self.wal is not None and getattr(self.wal, "durable", False):
            self.wal.log_ddl(schema.name, schema_to_dict(schema))

    def _create_view(self, statement: ast.CreateView, sql: str) -> None:
        view = ViewSchema(
            statement.name,
            statement.query,
            statement.column_names,
            {m.name: m.expr for m in statement.macros},
            sql,
        )
        # Validate by binding now so broken views fail at CREATE time.
        bound = Binder(self.catalog).bind_query(statement.query)
        if statement.column_names and len(statement.column_names) != len(bound.output):
            raise CatalogError(
                f"view {statement.name!r} declares {len(statement.column_names)} "
                f"columns but its query produces {len(bound.output)}"
            )
        self.catalog.create_view(view, statement.or_replace)
        if self.wal is not None and getattr(self.wal, "durable", False):
            self.wal.log_ddl_view(view.name, sql)

    def _drop(self, statement: ast.DropStatement) -> None:
        existed = (
            self.catalog.has_table(statement.name)
            if statement.kind == "TABLE"
            else self.catalog.has_view(statement.name)
        )
        if statement.kind == "TABLE":
            self.catalog.drop_table(statement.name, statement.if_exists)
        else:
            self.catalog.drop_view(statement.name, statement.if_exists)
        if existed and self.wal is not None and getattr(self.wal, "durable", False):
            self.wal.log_drop(statement.name.lower(), statement.kind)

    # -- DML ------------------------------------------------------------------------

    def _with_txn(self, txn: Transaction | None, action) -> int:
        if txn is not None:
            return action(txn)
        auto = self.begin()
        try:
            result = action(auto)
        except Exception:
            self.txn_manager.rollback(auto)
            raise
        self.commit(auto)
        return result

    def _writable_table(self, name: str):
        """Resolve a DML target, refusing read-only (system) tables before
        any storage machinery is touched."""
        table = self.catalog.table(name)
        if getattr(table, "read_only", False):
            raise ExecutionError(
                f"{table.schema.name} is a read-only system table"
            )
        return table

    def _insert(self, statement: ast.Insert, txn: Transaction) -> int:
        table = self._writable_table(statement.table)
        schema = table.schema
        if statement.columns:
            positions = [schema.column_index(c) for c in statement.columns]
        else:
            positions = list(range(len(schema.columns)))

        def build_row(values: Sequence[object]) -> list[object]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            row: list[object] = [None] * len(schema.columns)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        count = 0
        if statement.query is not None:
            result = self._run_query(statement.query, txn)
            for row_values in result.rows:
                table.insert(txn, build_row(row_values))
                count += 1
            return count
        binder = Binder(self.catalog)
        empty_scope = Scope([])
        one_row = Chunk({}, 1)
        for value_row in statement.rows:
            values = []
            for value_ast in value_row:
                bound = binder._bind_scalar(value_ast, empty_scope, allow_agg=False)
                values.append(evaluate(bound, one_row)[0])
            table.insert(txn, build_row(values))
            count += 1
        return count

    def _update(self, statement: ast.Update, txn: Transaction) -> int:
        table = self._writable_table(statement.table)
        scan = Scan.create(table.schema)
        scope = Scope([RelationBinding(table.schema.name, scan.output)])
        binder = Binder(self.catalog)
        row_ids = table.visible_row_ids(txn)
        names = [c.name for c in table.schema.columns]
        values = [[table.column(n).get(i) for i in row_ids] for n in names]
        chunk = Chunk({col.cid: vals for col, vals in zip(scan.output, values)}, len(row_ids))
        if statement.where is not None:
            predicate = binder._bind_scalar(statement.where, scope, allow_agg=False)
            hits = evaluate_predicate(predicate, chunk)
        else:
            hits = list(range(len(row_ids)))
        assignments = []
        for name, expr_ast in statement.assignments:
            index = table.schema.column_index(name)
            bound = binder._bind_scalar(expr_ast, scope, allow_agg=False)
            assignments.append((index, evaluate(bound, chunk)))
        count = 0
        for position in hits:
            row = [chunk.column(col.cid)[position] for col in scan.output]
            for index, new_values in assignments:
                row[index] = new_values[position]
            table.update_row(txn, row_ids[position], row)
            count += 1
        return count

    def _delete(self, statement: ast.Delete, txn: Transaction) -> int:
        table = self._writable_table(statement.table)
        scan = Scan.create(table.schema)
        scope = Scope([RelationBinding(table.schema.name, scan.output)])
        binder = Binder(self.catalog)
        row_ids = table.visible_row_ids(txn)
        if statement.where is not None:
            names = [c.name for c in table.schema.columns]
            values = [[table.column(n).get(i) for i in row_ids] for n in names]
            chunk = Chunk(
                {col.cid: vals for col, vals in zip(scan.output, values)}, len(row_ids)
            )
            predicate = binder._bind_scalar(statement.where, scope, allow_agg=False)
            hits = evaluate_predicate(predicate, chunk)
        else:
            hits = list(range(len(row_ids)))
        for position in hits:
            table.delete_row(txn, row_ids[position])
        return len(hits)

    # -- bulk utilities ----------------------------------------------------------------

    def bulk_load(self, table_name: str, rows: Iterable[Sequence[object]], merge: bool = True) -> int:
        """Load rows outside transactions (generator fast path)."""
        return self.catalog.table(table_name).bulk_load(rows, merge)

    def merge_all(self) -> None:
        """Run a delta merge on every table."""
        for table in self.catalog.tables():
            table.merge_delta()

    # -- graceful degradation -----------------------------------------------------

    def run_with_retry(
        self,
        action: Callable[[Transaction], object],
        *,
        attempts: int = 5,
        base_delay_s: float = 0.005,
        max_delay_s: float = 0.25,
        retry_on: tuple[type[Exception], ...] = (TransactionError, ConstraintError),
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``action(txn)`` in a fresh transaction, retrying conflicts.

        Each failed attempt rolls back, bumps ``txn.conflict_retries``, and
        backs off exponentially with jitter (``base_delay_s * 2**attempt``,
        capped at ``max_delay_s``, scaled by a uniform 0.5–1.0 factor) so
        colliding writers decorrelate.  The last error is re-raised once
        ``attempts`` is exhausted.  Errors outside ``retry_on`` propagate
        immediately — only conflict-shaped failures are transient.
        """
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        rng = rng if rng is not None else random.Random()
        last_error: Exception | None = None
        for attempt in range(attempts):
            txn = self.begin()
            try:
                result = action(txn)
            except retry_on as exc:
                if txn.is_active:
                    self.rollback(txn)
                last_error = exc
                if attempt + 1 >= attempts:
                    break
                self._m_conflict_retries.inc()
                delay = min(max_delay_s, base_delay_s * (2 ** attempt))
                sleep(delay * rng.uniform(0.5, 1.0))
            except BaseException:
                if txn.is_active:
                    self.rollback(txn)
                raise
            else:
                if txn.is_active:
                    self.commit(txn)
                return result
        assert last_error is not None
        raise last_error

    def health(self) -> dict:
        """Liveness/degradation report served at ``/healthz``.

        ``status`` is ``"degraded"`` (never an HTTP error — the engine is
        still answering queries, possibly from fallback plans) when any
        fault point is armed or when degradation counters show the engine
        has already absorbed failures; otherwise ``"ok"``.
        """
        reasons: list[str] = []
        armed = self.faults.armed()
        if armed:
            reasons.append("faults armed: " + ", ".join(sorted(armed)))
        for name, label in (
            ("optimizer.rule_failures", "optimizer rules sandboxed"),
            ("wal.torn_tail_truncations", "WAL torn tails truncated"),
            ("wal.replay_skips", "unreplayable WAL records skipped"),
            ("exec.memory_budget_exceeded", "memory budget exceeded"),
        ):
            value = self.metrics.counter(name).value
            if value > 0:
                reasons.append(f"{label}: {value}")
        serving = self.serving
        if serving is not None:
            tripped = sorted(
                f"{state.name}={state.breaker.state}"
                for state in serving.tenants.states()
                if state.breaker.state != "closed"
            )
            if tripped:
                reasons.append("circuit breakers tripped: " + ", ".join(tripped))
            if serving.draining:
                reasons.append("serving layer draining")
        return {"status": "degraded" if reasons else "ok", "reasons": reasons}

    # -- durability ---------------------------------------------------------------

    def checkpoint(self) -> str:
        """Snapshot committed state into the WAL directory and truncate the log.

        Requires a durable WAL and **no active transactions**: an in-flight
        transaction's earlier records would be discarded by the checkpoint's
        LSN horizon, losing its writes if it committed afterwards.  Returns
        the checkpoint file path.
        """
        wal = self.wal
        if wal is None or not getattr(wal, "durable", False):
            raise TransactionError(
                "checkpoint requires a durable WAL (construct with wal_dir=...)"
            )
        if self.txn_manager.active_count != 0:
            raise TransactionError(
                f"checkpoint requires no active transactions "
                f"({self.txn_manager.active_count} in flight)"
            )
        snapshot = self.begin()
        try:
            tables = []
            for table in self.catalog.tables():
                rows = [
                    [row_id, [_encode_value(v) for v in values]]
                    for row_id, values in table.scan_rows(snapshot)
                ]
                tables.append(
                    {
                        "schema": schema_to_dict(table.schema),
                        "rows": rows,
                        "next_row_id": len(table.created_tids),
                    }
                )
            views = [
                {"name": view.name, "sql": view.sql}
                for view in self.catalog.views()
                if view.sql
            ]
        finally:
            self.commit(snapshot)
        return wal.write_checkpoint({"tables": tables, "views": views})

    @classmethod
    def recover(
        cls,
        wal_dir: str,
        profile: str = "hana",
        fsync: str = "commit",
        checkpoint_after: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> "Database":
        """Rebuild a database from a WAL directory after a crash.

        Restores the newest valid checkpoint, then replays committed
        post-checkpoint records grouped per original transaction (a failure
        mid-replay rolls the half-replayed transaction back, so partial
        transactions are never visible).  Unless ``checkpoint_after=False``,
        recovery finishes by writing a fresh checkpoint — replay compacts
        row ids, so the old log's id space must not leak past recovery.
        """
        db = cls(profile=profile, wal_dir=wal_dir, fsync=fsync, batch_size=batch_size)
        db._replay_from_disk()
        if checkpoint_after:
            db.checkpoint()
        return db

    def _replay_from_disk(self) -> None:
        wal = self.wal
        assert isinstance(wal, DiskWriteAheadLog)
        # row_maps: per table, original (logged) row id -> replayed row id.
        # Seeded by the checkpoint restore, extended by replayed inserts.
        row_maps: dict[str, dict[int, int]] = {}
        replayed = 0
        skipped = 0
        with wal.suppressed():
            state = wal.checkpoint_state
            if state is not None:
                for tdata in state.get("tables", []):
                    schema = schema_from_dict(tdata["schema"])
                    table = ColumnTable(
                        schema, self.txn_manager, wal, faults=self.faults
                    )
                    self.catalog.create_table(table)
                    mapping = row_maps.setdefault(schema.name, {})
                    for row_id, values in tdata.get("rows", []):
                        decoded = [_decode_value(v) for v in values]
                        mapping[row_id] = table._append_row(
                            decoded, NO_TID, validate_unique=True
                        )
                    if mapping:
                        table.merge_delta()
                for vdata in state.get("views", []):
                    self.execute(vdata["sql"])
            records = wal.records()
            committed = {r.tid for r in records if r.kind == "commit"}
            pending: dict[int, list] = {}
            for record in records:
                kind = record.kind
                if kind == "ddl":
                    self.create_table_from_schema(schema_from_dict(record.payload))
                    row_maps[record.table] = {}
                elif kind == "ddl_view":
                    self.execute(record.payload)
                elif kind == "ddl_drop":
                    if record.payload == "TABLE":
                        self.catalog.drop_table(record.table, if_exists=True)
                        row_maps.pop(record.table, None)
                    else:
                        self.catalog.drop_view(record.table, if_exists=True)
                elif kind in ("insert", "delete"):
                    if record.tid == NO_TID:
                        # Bootstrap rows (bulk_load) are visible to every
                        # snapshot and carry no commit record.
                        try:
                            table = self.catalog.table(record.table)
                            new_id = table._append_row(
                                list(record.payload), NO_TID, validate_unique=True
                            )
                        except (CatalogError, ConstraintError) as exc:
                            skipped += self._skip_unreplayable(record.lsn, exc)
                            continue
                        row_maps.setdefault(record.table, {})[record.row_id] = new_id
                        replayed += 1
                    elif record.tid in committed:
                        pending.setdefault(record.tid, []).append(record)
                elif kind == "commit":
                    ops = pending.pop(record.tid, None)
                    if ops:
                        try:
                            replayed += self._replay_txn(record.tid, ops, row_maps)
                        except (CatalogError, ConstraintError, TransactionError) as exc:
                            skipped += self._skip_unreplayable(record.lsn, exc, len(ops))
        self.metrics.counter("wal.replays").inc()
        self.metrics.counter("wal.replayed_rows").inc(replayed)
        if skipped:
            self.metrics.counter("wal.replay_skips").inc(skipped)

    def _skip_unreplayable(self, lsn: int, exc: Exception, count: int = 1) -> int:
        """Degrade, don't die: a log whose context is gone (e.g. the only
        checkpoint corrupted away the covering DDL) still recovers what it
        can.  Atomicity holds — whole transactions are skipped, never
        prefixes — and the loss is loud: a warning now, ``wal.replay_skips``
        in the registry, and a degraded :meth:`health` until restart."""
        warnings.warn(
            f"recovery: skipping unreplayable record(s) at lsn {lsn} "
            f"({type(exc).__name__}: {exc})",
            stacklevel=3,
        )
        return count

    def _replay_txn(self, tid: int, ops: list, row_maps: dict) -> int:
        """Replay one committed transaction atomically.

        The ``wal.replay`` fault point fires *before* the replay
        transaction begins, and any replay error rolls it back — either
        way, no half-replayed transaction is ever left visible.
        """
        self.faults.fire("wal.replay", tid=tid)
        txn = self.begin()
        applied = 0
        try:
            for record in ops:
                table = self.catalog.table(record.table)
                mapping = row_maps.setdefault(record.table, {})
                if record.kind == "insert":
                    mapping[record.row_id] = table.insert(txn, record.payload)
                else:
                    mapped = mapping.get(record.payload)
                    if mapped is None:
                        raise TransactionError(
                            f"recovery: delete of unknown row {record.payload} "
                            f"in {record.table!r}"
                        )
                    table.delete_row(txn, mapped)
                applied += 1
        except Exception:
            self.rollback(txn)
            raise
        self.commit(txn)
        return applied

    def close(self) -> None:
        """Release the on-disk WAL's file handle and the capture file
        (no-ops otherwise).  An attached serving layer is drained first so
        no in-flight statement sees the WAL handle vanish under it."""
        serving = self.serving
        if serving is not None and not serving.closed:
            serving.shutdown()
        wal = self.wal
        if wal is not None and hasattr(wal, "close"):
            wal.close()
        if self.capture is not None:
            self.capture.close()

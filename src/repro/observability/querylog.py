"""The engine-wide query log: the ring buffer behind ``sys.query_log``.

Every statement that reaches :meth:`Database._run_query` appends one
:class:`QueryLogEntry` on completion — success, error, or timeout — with
the per-phase timing breakdown (parse/bind/optimize/execute), the row
count, and the rewrite-fire total.  A second ring keeps per-operator
execution stats (:class:`OperatorStatRow`) for queries that ran under span
tracing, keyed by the same ``query_id`` so ``sys.query_log`` and
``sys.operator_stats`` join in SQL.

Entries are appended *after* the query finishes, so a query over
``sys.query_log`` never observes itself mid-flight; once it completes it
appears exactly once (the invariant the fuzz corpus pins down).

Both buffers are bounded deques — a long-lived process cannot leak memory
into its own diagnostics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..sql.normalize import shape_hash

DEFAULT_QUERY_CAPACITY = 256
DEFAULT_OPERATOR_CAPACITY = 1024


@dataclass
class QueryLogEntry:
    """One completed statement."""

    query_id: str
    sql: str | None
    status: str                     # "ok" | "error" | "timeout"
    error: str | None
    started_at: float               # unix timestamp
    elapsed_s: float
    parse_s: float | None
    bind_s: float | None
    optimize_s: float | None
    execute_s: float | None
    rows: int | None
    operators_before: int
    operators_after: int
    rewrite_fires: int
    _shape: str | None = None

    @property
    def shape(self) -> str | None:
        """Lazy shape hash — computed on first read (scan time), never on
        the query hot path."""
        if self._shape is None and self.sql is not None:
            self._shape = shape_hash(self.sql)
        return self._shape


@dataclass
class OperatorStatRow:
    """Per-operator actuals for one traced query."""

    query_id: str
    operator: str
    rows_out: int
    batches: int
    elapsed_s: float
    is_scan: bool
    early_terminated: bool


class QueryLog:
    """Bounded ring buffers of query and operator entries."""

    def __init__(
        self,
        capacity: int = DEFAULT_QUERY_CAPACITY,
        operator_capacity: int = DEFAULT_OPERATOR_CAPACITY,
    ):
        self._entries: deque[QueryLogEntry] = deque(maxlen=capacity)
        self._operators: deque[OperatorStatRow] = deque(maxlen=operator_capacity)

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def configure(
        self, capacity: int | None = None, operator_capacity: int | None = None
    ) -> None:
        """Resize the retention rings (existing entries are kept, oldest
        first to go)."""
        if capacity is not None and capacity != self._entries.maxlen:
            self._entries = deque(self._entries, maxlen=capacity)
        if operator_capacity is not None and operator_capacity != self._operators.maxlen:
            self._operators = deque(self._operators, maxlen=operator_capacity)

    def record(self, entry: QueryLogEntry) -> None:
        self._entries.append(entry)

    def record_operators(self, query_id: str, collector) -> None:
        """Flatten an ExecutionCollector's per-operator stats into the ring.

        ``collector.root`` is the executed physical tree; operators are
        appended in depth-first plan order.
        """
        root = getattr(collector, "root", None)
        if root is None:
            return
        for op in root.walk():
            stats = collector.stats_for(op)
            if stats is None:
                continue
            self._operators.append(
                OperatorStatRow(
                    query_id=query_id,
                    operator=stats.label,
                    rows_out=stats.rows_out,
                    batches=stats.chunks,
                    elapsed_s=stats.elapsed_s,
                    is_scan=stats.is_scan,
                    early_terminated=stats.early_terminated,
                )
            )

    def entries(self) -> list[QueryLogEntry]:
        return list(self._entries)

    def operator_rows(self) -> list[OperatorStatRow]:
        return list(self._operators)

    def last(self) -> QueryLogEntry | None:
        return self._entries[-1] if self._entries else None

    def clear(self) -> None:
        self._entries.clear()
        self._operators.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self._entries)

"""The engine-wide query log: the ring buffer behind ``sys.query_log``.

Every statement that reaches :meth:`Database._run_query` appends one
:class:`QueryLogEntry` on completion — success, error, or timeout — with
the per-phase timing breakdown (parse/bind/optimize/execute), the row
count, and the rewrite-fire total.  A second ring keeps per-operator
execution stats (:class:`OperatorStatRow`) for every completed query —
plan feedback made span tracing unnecessary for operator actuals — keyed
by the same ``query_id`` so ``sys.query_log`` and ``sys.operator_stats``
join in SQL.  A third ring holds per-operator est/actual/Q-error records
(:class:`repro.observability.feedback.PlanFeedbackRow`) behind
``sys.plan_feedback``.

Entries are appended *after* the query finishes, so a query over
``sys.query_log`` never observes itself mid-flight; once it completes it
appears exactly once (the invariant the fuzz corpus pins down).
Per-query operator and feedback groups are appended atomically (one
``extend`` under the lock), so a concurrent scan sees either all of a
query's rows or none of them — never a torn group.

All buffers are bounded deques — a long-lived process cannot leak memory
into its own diagnostics — and every access goes through one lock, so
threaded writers never corrupt a concurrent snapshot.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..sql.normalize import shape_hash
from .feedback import PlanFeedbackRow

DEFAULT_QUERY_CAPACITY = 256
DEFAULT_OPERATOR_CAPACITY = 1024
DEFAULT_FEEDBACK_CAPACITY = 2048


@dataclass
class QueryLogEntry:
    """One completed statement."""

    query_id: str
    sql: str | None
    status: str                     # "ok" | "error" | "timeout"
    error: str | None
    started_at: float               # unix timestamp
    elapsed_s: float
    parse_s: float | None
    bind_s: float | None
    optimize_s: float | None
    execute_s: float | None
    rows: int | None
    operators_before: int
    operators_after: int
    rewrite_fires: int
    #: Monotonic statement sequence number — lets incremental consumers
    #: (the shape-baseline tracker) resume where they left off without
    #: rescanning the whole ring.
    seq: int = 0
    _shape: str | None = None

    @property
    def shape(self) -> str | None:
        """Lazy shape hash — computed on first read (scan time), never on
        the query hot path."""
        if self._shape is None and self.sql is not None:
            self._shape = shape_hash(self.sql)
        return self._shape


@dataclass
class OperatorStatRow:
    """Per-operator actuals for one completed query."""

    query_id: str
    operator: str
    rows_out: int
    batches: int
    elapsed_s: float
    is_scan: bool
    early_terminated: bool
    #: Vectorized-kernel accounting (all zero when the scalar path ran).
    kernel_calls: int = 0
    kernel_s: float = 0.0
    rows_selected: int = 0
    dict_compares: int = 0
    #: Bounded-heap TopN displacements (non-zero only for TopN operators).
    heap_evictions: int = 0


class QueryLog:
    """Bounded, lock-guarded ring buffers of query/operator/feedback rows."""

    def __init__(
        self,
        capacity: int = DEFAULT_QUERY_CAPACITY,
        operator_capacity: int = DEFAULT_OPERATOR_CAPACITY,
        feedback_capacity: int = DEFAULT_FEEDBACK_CAPACITY,
    ):
        self._lock = threading.Lock()
        self._entries: deque[QueryLogEntry] = deque(maxlen=capacity)
        self._operators: deque[OperatorStatRow] = deque(maxlen=operator_capacity)
        self._feedback: deque[PlanFeedbackRow] = deque(maxlen=feedback_capacity)

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def configure(
        self, capacity: int | None = None, operator_capacity: int | None = None,
        feedback_capacity: int | None = None,
    ) -> None:
        """Resize the retention rings (existing entries are kept, oldest
        first to go)."""
        with self._lock:
            if capacity is not None and capacity != self._entries.maxlen:
                self._entries = deque(self._entries, maxlen=capacity)
            if (
                operator_capacity is not None
                and operator_capacity != self._operators.maxlen
            ):
                self._operators = deque(
                    self._operators, maxlen=operator_capacity
                )
            if (
                feedback_capacity is not None
                and feedback_capacity != self._feedback.maxlen
            ):
                self._feedback = deque(self._feedback, maxlen=feedback_capacity)

    def record(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self._entries.append(entry)

    def record_operators(self, query_id: str, collector) -> None:
        """Flatten an ExecutionCollector's per-operator stats into the ring.

        ``collector.root`` is the executed physical tree; operators are
        appended in depth-first plan order, atomically per query.
        """
        root = getattr(collector, "root", None)
        if root is None:
            return
        rows = []
        for op in root.walk():
            stats = collector.stats_for(op)
            if stats is None:
                continue
            rows.append(
                OperatorStatRow(
                    query_id=query_id,
                    operator=stats.label,
                    rows_out=stats.rows_out,
                    batches=stats.chunks,
                    elapsed_s=stats.elapsed_s,
                    is_scan=stats.is_scan,
                    early_terminated=stats.early_terminated,
                    kernel_calls=stats.kernel_calls,
                    kernel_s=stats.kernel_s,
                    rows_selected=stats.rows_selected,
                    dict_compares=stats.dict_compares,
                    heap_evictions=stats.heap_evictions,
                )
            )
        if rows:
            with self._lock:
                self._operators.extend(rows)

    def record_feedback(self, rows: list[PlanFeedbackRow]) -> None:
        """Append one query's plan-feedback rows (atomically)."""
        if rows:
            with self._lock:
                self._feedback.extend(rows)

    def entries(self) -> list[QueryLogEntry]:
        with self._lock:
            return list(self._entries)

    def operator_rows(self) -> list[OperatorStatRow]:
        with self._lock:
            return list(self._operators)

    def feedback_rows(self) -> list[PlanFeedbackRow]:
        with self._lock:
            return list(self._feedback)

    def last(self) -> QueryLogEntry | None:
        with self._lock:
            return self._entries[-1] if self._entries else None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._operators.clear()
            self._feedback.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self.entries())

"""Executor instrumentation: per-operator runtime statistics.

An :class:`ExecutionCollector` is handed to
:meth:`repro.engine.executor.Executor.execute`; the physical operators then
record, for every batch they stream, the rows produced, the batch count,
and the per-batch wall time.  ``Database.explain(sql, analyze=True)`` runs
a query under a collector and annotates the physical plan tree with the
actual counts — the classic EXPLAIN ANALYZE surface.

Operators that open but get closed by a downstream consumer before their
stream is exhausted (a satisfied LIMIT, an answered EXISTS, an early-out
join probe) are flagged ``early-terminated``; operators that never open at
all (e.g. the probe side of an EXISTS that was answered by the other side)
are annotated ``(never executed)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..algebra import ops


@dataclass
class OperatorStats:
    """Runtime statistics for one plan operator."""

    label: str
    rows_out: int = 0
    chunks: int = 0       # batches produced
    elapsed_s: float = 0.0  # inclusive of children
    is_scan: bool = False
    early_terminated: bool = False
    #: Peak estimated bytes held (blocking operators only; 0 for streamers).
    peak_bytes: int = 0
    #: Vectorized-kernel accounting (0 when the scalar path ran).
    kernel_calls: int = 0
    rows_selected: int = 0
    dict_compares: int = 0
    kernel_s: float = 0.0
    #: Bounded-heap TopN rows displaced after the heap filled.
    heap_evictions: int = 0


@dataclass
class ExecutionCollector:
    """Accumulates per-operator stats during one (or more) executions.

    Keyed by operator object identity: plans are trees of distinct nodes,
    so ``id(op)`` is a stable key for the lifetime of the plan.
    """

    _stats: dict[int, OperatorStats] = field(default_factory=dict)
    root: object = None       # the plan tree actually executed
    elapsed_s: float = 0.0    # total execution wall time
    result_rows: int = 0

    def _entry(self, op) -> OperatorStats:
        stats = self._stats.get(id(op))
        if stats is None:
            # Physical operators carry a duck-typed ``is_scan_op`` marker;
            # logical Scan is still recognized for direct (test) callers.
            is_scan = isinstance(op, ops.Scan) or getattr(op, "is_scan_op", False)
            stats = OperatorStats(op.label(), is_scan=is_scan)
            self._stats[id(op)] = stats
        return stats

    def open_op(self, op) -> None:
        """Register an operator whose stream opened (it may produce 0 rows)."""
        self._entry(op)

    def record(self, op, rows: int, elapsed_s: float) -> None:
        stats = self._entry(op)
        stats.rows_out += rows
        stats.chunks += 1
        stats.elapsed_s += elapsed_s

    def mark_early(self, op) -> None:
        """Flag that a consumer closed this operator's stream early."""
        self._entry(op).early_terminated = True

    def record_memory(self, op, nbytes: int) -> None:
        """Record a blocking operator's current estimated state size."""
        stats = self._entry(op)
        if nbytes > stats.peak_bytes:
            stats.peak_bytes = nbytes

    def record_kernels(
        self, op, calls: int, rows_selected: int, dict_compares: int,
        elapsed_s: float,
    ) -> None:
        """Fold one execution's kernel tally for this operator in."""
        stats = self._entry(op)
        stats.kernel_calls += calls
        stats.rows_selected += rows_selected
        stats.dict_compares += dict_compares
        stats.kernel_s += elapsed_s

    def record_evictions(self, op, evictions: int) -> None:
        """Record a TopN operator's heap-eviction count."""
        self._entry(op).heap_evictions += evictions

    def stats_for(self, op) -> OperatorStats | None:
        return self._stats.get(id(op))

    def rows_scanned(self) -> int:
        """Total rows produced by scan operators (post-MVCC visibility)."""
        return sum(s.rows_out for s in self._stats.values() if s.is_scan)

    def operator_count(self) -> int:
        return len(self._stats)

    def annotation(self, op) -> str:
        """The EXPLAIN ANALYZE suffix for one plan node.

        Includes the optimizer's estimated rows and the resulting Q-error
        when the plan was compiled with estimate stamping (the default);
        falls back to the actual-only form for unstamped plans.
        """
        est = getattr(op, "est_rows", None)
        stats = self._stats.get(id(op))
        if stats is None:
            if est is not None:
                return f"(est rows={est:.0f}, never executed)"
            return "(never executed)"
        early = ", early-terminated" if stats.early_terminated else ""
        peak = ""
        if stats.peak_bytes:
            peak = f", peak≈{stats.peak_bytes / 1024:.1f}KB"
        if stats.kernel_calls:
            peak += f", kernels={stats.kernel_calls}"
        if stats.heap_evictions:
            peak += f", evictions={stats.heap_evictions}"
        if est is not None:
            from .feedback import qerror

            q = qerror(est, stats.rows_out)
            return (
                f"(est rows={est:.0f} actual rows={stats.rows_out} "
                f"qerror={q:.2f} batches={stats.chunks} "
                f"time={stats.elapsed_s * 1e3:.3f}ms{early}{peak})"
            )
        return (
            f"(actual rows={stats.rows_out} batches={stats.chunks} "
            f"time={stats.elapsed_s * 1e3:.3f}ms{early}{peak})"
        )


def run_analyzed(executor, plan, txn):
    """Execute ``plan`` under a fresh collector; returns (result, collector)."""
    collector = ExecutionCollector()
    start = time.perf_counter()
    result = executor.execute(plan, txn, collector=collector)
    collector.elapsed_s = time.perf_counter() - start
    collector.result_rows = len(result.rows)
    return result, collector


def render_analyze(plan, collector) -> str:
    """EXPLAIN ANALYZE text: the annotated plan tree plus a summary."""
    from ..algebra.printer import explain

    tree = explain(
        collector.root if collector.root is not None else plan,
        annotate=collector.annotation,
    )
    summary = (
        f"execution: {collector.result_rows} row(s) in "
        f"{collector.elapsed_s * 1e3:.3f}ms, "
        f"{collector.rows_scanned()} row(s) scanned"
    )
    return f"{tree}\n{summary}"
